"""E13 -- profiling-accuracy ablation (Section 5 caveat).

EchelonFlow "relies on accurate profiling of the computation time to
construct the arrangement function". We corrupt the profiled distances of
the Fig.-2 pipeline and of FSDP's Eq.-7 arrangement with (a) random error
and (b) systematic bias, keeping the *true* computation unchanged, and
measure how the scheduling benefit degrades.

Measured shape (two regimes):

* **Single job / uncontended**: completely insensitive. The EDF stage
  order survives any monotone perturbation of the distances, and the
  work-conserving backfill erases pacing errors whenever nobody else
  wants the capacity.
* **Cross-job contention**: robust to random error and to
  *under*-estimation (eager deadlines just make the job greedier, and
  EDF order still protects it), but *over*-estimation degrades the
  mis-profiled job gracefully -- lazy deadlines pace its stages down and
  competing jobs absorb the ceded bandwidth.
"""

import random

import pytest

from repro.analysis import comp_finish_time, format_table
from repro.core.units import gbps, megabytes
from repro.profiling import biased_arrangement, perturb_arrangement
from repro.scheduling import EchelonMaddScheduler, FairSharingScheduler
from repro.simulator import Engine
from repro.topology import big_switch, two_hosts
from repro.workloads import build_fsdp, build_pipeline_segment, uniform_model

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)


def _run_fig2_with_arrangement(transform):
    job = build_pipeline_segment(
        "fig2", "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [2.0] * 3
    )
    ef = job.echelonflows[0]
    ef.arrangement = transform(ef.arrangement)
    engine = Engine(two_hosts(1.0), EchelonMaddScheduler())
    job.submit_to(engine)
    return comp_finish_time(engine.run())


def _run_fsdp_with_arrangement(transform):
    job = build_fsdp("fsdp", MODEL, ["h0", "h1", "h2", "h3"])
    for ef in job.echelonflows:
        if ef.ef_id.endswith("/ag"):
            ef.arrangement = transform(ef.arrangement)
    engine = Engine(big_switch(4, gbps(10)), EchelonMaddScheduler())
    job.submit_to(engine)
    return comp_finish_time(engine.run())


def test_noise_sweep_runs(benchmark):
    rng = random.Random(1)
    value = benchmark(
        _run_fig2_with_arrangement,
        lambda a: perturb_arrangement(a, 0.2, 3, rng),
    )
    assert value > 0


def test_random_noise_degrades_gracefully(benchmark, report):
    def sweep():
        rows = []
        for error in (0.0, 0.05, 0.1, 0.25, 0.5):
            rng = random.Random(99)
            fig2 = _run_fig2_with_arrangement(
                lambda a: perturb_arrangement(a, error, 3, rng)
            )
            fsdp = _run_fsdp_with_arrangement(
                lambda a: perturb_arrangement(a, error, 16, rng)
            )
            rows.append([f"{error:.0%}", fig2, fsdp])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E13_profiling_noise",
        format_table(
            ["profiling error", "Fig.2 comp finish", "FSDP comp finish"],
            rows,
            title="Ablation: random profiling error on arrangement distances",
        ),
    )
    exact_fig2 = rows[0][1]
    exact_fsdp = rows[0][2]
    # Up to 25% random error costs at most 15% of the schedule quality.
    for label, fig2, fsdp in rows[:4]:
        assert fig2 <= exact_fig2 * 1.15, label
        assert fsdp <= exact_fsdp * 1.15, label


def test_systematic_bias(benchmark, report):
    # Fair-sharing reference for "how bad can it get".
    def fair_reference():
        job = build_pipeline_segment(
            "fig2", "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [2.0] * 3
        )
        engine = Engine(two_hosts(1.0), FairSharingScheduler())
        job.submit_to(engine)
        return comp_finish_time(engine.run())

    def sweep():
        rows = []
        for scale in (0.25, 0.5, 0.75, 1.0, 1.5, 2.0):
            fig2 = _run_fig2_with_arrangement(
                lambda a: biased_arrangement(a, scale, 3)
            )
            rows.append([f"{scale:.2f}x", fig2])
        return rows, fair_reference()

    rows, fair = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E13b_profiling_bias",
        format_table(
            ["distance scale", "Fig.2 comp finish"],
            rows,
            title=f"Ablation: systematic profiling bias (fair sharing = {fair:.3g})",
        ),
    )
    by_scale = {label: value for label, value in rows}
    assert by_scale["1.00x"] == pytest.approx(8.0)
    # Even badly mis-profiled arrangements never do worse than unscheduled
    # fair sharing on this workload.
    for _label, value in rows:
        assert value <= fair + 1e-9


def test_bias_under_cross_job_contention(benchmark, report):
    """The regime where profiling accuracy matters: competing tenants."""
    from repro.analysis import job_completion_time
    from repro.topology import leaf_spine
    from repro.workloads import build_dp_allreduce, build_pp_gpipe

    contention_model = uniform_model(
        "u8",
        8,
        param_bytes_per_layer=megabytes(30),
        activation_bytes=megabytes(15),
        forward_time=0.004,
    )

    def run_with_bias(scale):
        topo = leaf_spine(
            n_leaves=4, hosts_per_leaf=4, host_bandwidth=gbps(10),
            oversubscription=2.0,
        )
        # Most-behind-first ordering: the policy whose priorities bias
        # can actually distort (the default hybrid ranks by job).
        engine = Engine(topo, EchelonMaddScheduler(ordering="tardiness"))
        jobs = [
            build_pp_gpipe(
                "pp", contention_model, ["h0", "h4", "h8", "h12"],
                num_micro_batches=4,
            ),
            build_fsdp("fsdp", contention_model, ["h1", "h5", "h9", "h13"]),
            build_dp_allreduce(
                "dp", contention_model, ["h2", "h6", "h10", "h14"],
                bucket_bytes=megabytes(60),
            ),
        ]
        for job in jobs:
            for ef in job.echelonflows:
                ef.arrangement = biased_arrangement(
                    ef.arrangement, scale, ef.index_count
                )
            job.submit_to(engine)
        trace = engine.run()
        return {job.job_id: job_completion_time(trace, job.job_id) for job in jobs}

    def sweep():
        return [
            [f"{scale:.2f}x", *run_with_bias(scale).values()]
            for scale in (0.25, 0.5, 1.0, 2.0, 4.0)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E13c_bias_contention",
        format_table(
            ["distance scale", "pp JCT", "fsdp JCT", "dp JCT"],
            rows,
            title="Ablation: profiling bias under cross-job contention",
        ),
    )
    exact = {row[0]: row[1:] for row in rows}["1.00x"]
    for label, *jcts in rows:
        for measured, reference in zip(jcts, exact):
            # Graceful: a 16x spread of profiling bias degrades no job's
            # completion by more than 25% (improvements are fine -- loose
            # deadlines can shift work off a contended link).
            assert measured <= 1.25 * reference, label
    # Mild under-estimation is essentially free (within 2%).
    under = {row[0]: row[1:] for row in rows}["0.50x"]
    for measured, reference in zip(under, exact):
        assert abs(measured - reference) <= 0.02 * reference
