"""E19 -- what the EchelonFlow *structure* buys over raw deadlines.

The scheduler uses two pieces of application knowledge: arrangement
deadlines AND group structure (stage-level MADD pacing, group-level
ranking). `EdfFlowScheduler` keeps only the deadlines. This ablation
measures the gap:

* synthetic pacing case: a coflow bottlenecked on one port paces its
  side-port flow, freeing the port for an urgent competitor -- per-flow
  EDF hogs it instead;
* full workloads: without cross-group contention the two coincide
  (structure is free), quantified on the single-job battery.
"""

import pytest

from repro.analysis import comp_finish_time, format_table
from repro.core.arrangement import CoflowArrangement
from repro.core.echelonflow import EchelonFlow
from repro.core.flow import Flow
from repro.core.units import gbps, megabytes
from repro.scheduling import EchelonMaddScheduler, EdfFlowScheduler
from repro.simulator import Engine, TaskDag
from repro.topology import big_switch, linear_chain
from repro.workloads import (
    build_fsdp,
    build_pp_gpipe,
    uniform_model,
)

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)


def _pacing_case(scheduler_cls):
    engine = Engine(big_switch(4, 1.0), scheduler_cls())
    ef = EchelonFlow("A", CoflowArrangement(), job_id="A")
    big = Flow("h0", "h1", 10.0, group_id="A", job_id="A")
    small = Flow("h2", "h3", 2.0, group_id="A", job_id="A")
    ef.add_flow(big)
    ef.add_flow(small)
    dag_a = TaskDag("A")
    dag_a.add_comm("x", [big, small])
    engine.submit(dag_a, echelonflows=(ef,))
    ef_b = EchelonFlow("B", CoflowArrangement(), job_id="B")
    b_flow = Flow("h2", "h3", 2.0, group_id="B", job_id="B")
    ef_b.add_flow(b_flow)
    dag_b = TaskDag("B")
    dag_b.add_comm("y", [b_flow])
    engine.submit(dag_b, at_time=0.1, echelonflows=(ef_b,))
    trace = engine.run()
    by_group = {}
    for record in trace.flow_records:
        by_group[record.flow.group_id] = max(
            by_group.get(record.flow.group_id, 0.0), record.finish
        )
    return by_group["A"], by_group["B"]


def test_pacing_case_echelon(benchmark):
    a, b = benchmark(_pacing_case, EchelonMaddScheduler)
    assert a > b


def test_structure_ablation(benchmark, report):
    def sweep():
        rows = []
        ech_a, ech_b = _pacing_case(EchelonMaddScheduler)
        edf_a, edf_b = _pacing_case(EdfFlowScheduler)
        rows.append(["pacing case: coflow A CCT", ech_a, edf_a])
        rows.append(["pacing case: competitor B CCT", ech_b, edf_b])
        for label, build, topo in (
            (
                "FSDP comp finish",
                lambda: build_fsdp("j", MODEL, ["h0", "h1", "h2", "h3"]),
                lambda: big_switch(4, gbps(10)),
            ),
            (
                "PP comp finish",
                lambda: build_pp_gpipe(
                    "j", MODEL, ["h0", "h1", "h2", "h3"], num_micro_batches=4
                ),
                lambda: linear_chain(4, gbps(10)),
            ),
        ):
            values = []
            for scheduler_cls in (EchelonMaddScheduler, EdfFlowScheduler):
                job = build()
                engine = Engine(topo(), scheduler_cls())
                job.submit_to(engine)
                values.append(comp_finish_time(engine.run()))
            rows.append([label, values[0], values[1]])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E19_structure_ablation",
        format_table(
            ["case", "echelon (full structure)", "per-flow EDF (deadlines only)"],
            rows,
            title="Ablation: group structure vs raw arrangement deadlines",
        ),
    )
    by_case = {row[0]: (row[1], row[2]) for row in rows}
    # Pacing frees the side port: B much sooner, A unharmed.
    a_ech, a_edf = by_case["pacing case: coflow A CCT"]
    b_ech, b_edf = by_case["pacing case: competitor B CCT"]
    assert a_ech == pytest.approx(a_edf, rel=1e-6)
    assert b_ech < b_edf - 0.5
    # Single-job workloads: structure costs nothing.
    for label in ("FSDP comp finish", "PP comp finish"):
        ech, edf = by_case[label]
        assert ech <= edf * 1.001
