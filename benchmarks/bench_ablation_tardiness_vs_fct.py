"""E14 -- Def. 3.2's rationale: tardiness vs flow completion time.

"Tardiness regulates flows regarding their ideal finish times, rather than
their flow start times. This definition allows computation units to
realign with the arrangement ... If optimizing with flow completion time,
after flows delay, later EchelonFlows cannot recover the arrangement."

Design: two pipeline jobs share a consumer's ingress port. Job A's later
releases are delayed by an upstream hiccup; job B is on time. Both run
under the *same* scheduler, differing only in the deadline anchor:

* ``arrangement`` (Eq. 1): A's delayed flows carry ideal finish times
  pinned to A's reference time -- they are *behind the formation* and
  outrank B's comfortably-ahead flows, so A realigns.
* ``flow_start`` (classic FCT): A's delayed flows look freshly started
  and earn no urgency; the delay is simply inherited.

The measured quantity is the paper's own objective: each EchelonFlow's
tardiness (Eq. 2). The arrangement anchor recovers A to B's tardiness
level inside the recovery window; beyond it (delay larger than the slack
physics offers) both anchors coincide -- an honest boundary.
"""

import pytest

from repro.analysis import format_table
from repro.scheduling import EchelonMaddScheduler
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import build_pipeline_segment

MICRO_BATCHES = 4
DISTANCE = 2.0


def _run(anchor, delay):
    topology = big_switch(3, 1.0)
    engine = Engine(
        topology,
        # The recovery-semantics ordering: the most-behind group catches up
        # first. This is the policy whose behaviour the anchor changes;
        # the default hybrid ordering ranks at job level and would mask
        # the per-flow anchor difference under test.
        EchelonMaddScheduler(anchor=anchor, ordering="tardiness"),
    )
    job_a = build_pipeline_segment(
        "A",
        "h0",
        "h1",
        [0.0] + [k + delay for k in range(1, MICRO_BATCHES)],
        [1.0] * MICRO_BATCHES,
        [DISTANCE] * MICRO_BATCHES,
        distance=DISTANCE,
    )
    job_b = build_pipeline_segment(
        "B",
        "h2",
        "h1",
        [float(k) for k in range(MICRO_BATCHES)],
        [1.0] * MICRO_BATCHES,
        [DISTANCE] * MICRO_BATCHES,
        distance=DISTANCE,
    )
    job_a.submit_to(engine)
    job_b.submit_to(engine)
    trace = engine.run()

    def ef_tardiness(job):
        ef = job.echelonflows[0]
        return max(
            record.finish - ef.ideal_finish_time(record.flow.index_in_group)
            for record in trace.flows_of_group(ef.ef_id)
        )

    return ef_tardiness(job_a), ef_tardiness(job_b)


def test_anchor_run(benchmark):
    tardy_a, tardy_b = benchmark(_run, "arrangement", 2.0)
    assert tardy_a >= 0 and tardy_b >= 0


def test_tardiness_anchor_realigns_fct_does_not(benchmark, report):
    def sweep():
        rows = []
        for delay in (0.0, 1.0, 2.0, 3.0, 4.0):
            arr_a, arr_b = _run("arrangement", delay)
            fct_a, fct_b = _run("flow_start", delay)
            rows.append([delay, arr_a, fct_a, arr_b, fct_b])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E14_tardiness_vs_fct",
        format_table(
            [
                "upstream delay on A",
                "A tardiness (arrangement)",
                "A tardiness (FCT anchor)",
                "B tardiness (arrangement)",
                "B tardiness (FCT anchor)",
            ],
            rows,
            title="Def. 3.2: arrangement anchoring realigns the disturbed job",
        ),
    )
    for delay, arr_a, fct_a, arr_b, fct_b in rows:
        # The arrangement anchor never leaves A worse off, and helping A
        # never comes at B's expense beyond its own tardiness level.
        assert arr_a <= fct_a + 1e-9, f"delay={delay}"
        assert arr_b <= fct_b + 1e-9, f"delay={delay}"
    # Strict realignment win inside the recovery window.
    strict = [row for row in rows if 0.0 < row[0] <= 3.0]
    assert any(arr_a < fct_a - 1e-9 for _d, arr_a, fct_a, _ab, _fb in strict)
