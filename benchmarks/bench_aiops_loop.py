#!/usr/bin/env python
"""E26 -- the online AIOps watch loop, scored against the chaos suite.

The watch loop (:mod:`repro.obs.watch`) consumes the live obs event feed
and must (a) detect injected faults quickly, (b) localize the root cause
top-1, (c) stay silent on clean runs, and (d) add negligible overhead to
the simulation it watches. This benchmark grades all four against the
generated paradigm x fault-kind scenario grid and guards the result with
a checked-in baseline.

Runs both ways:

* under pytest-benchmark (the ``test_*`` functions; writes
  ``benchmarks/results/E26_aiops_loop.txt``), and
* standalone::

      PYTHONPATH=src python benchmarks/bench_aiops_loop.py          # full grid
      PYTHONPATH=src python benchmarks/bench_aiops_loop.py --smoke  # CI guard

``--smoke`` replays the pp/dp/ls smoke subset -- fully deterministic, no
wall-clock -- and checks per-scenario detection, top-1 localization, and
detection-latency fractions against
``benchmarks/results/bench_aiops_loop_baseline.json``. Exit code 1 on
regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.obs.watch import (
    SMOKE_KINDS,
    SMOKE_PARADIGMS,
    aiops_score,
    render_score,
)

RESULTS_DIR = ROOT / "benchmarks" / "results"
BASELINE_PATH = RESULTS_DIR / "bench_aiops_loop_baseline.json"

#: Quality bars the full grid must clear (the ISSUE acceptance bar is
#: top-1 >= 0.8 on single-fault link_down/degrade and zero clean FPs;
#: the grid currently scores well above both).
MIN_DETECTION_RATE = 0.9
MIN_TOP1_LINK_FAULTS = 0.8
#: --smoke: allowed absolute drift of a detection-latency fraction from
#: the checked-in baseline. Latencies are deterministic, so drift means
#: a detector threshold or a scenario changed behaviour; the tolerance
#: leaves room for intentional tuning without letting slow detection
#: slip by unnoticed.
SMOKE_LATENCY_TOLERANCE = 0.05


def run_grid(smoke: bool = False) -> dict:
    """One full scoring pass (bare hot path: no sanitizer, no pairing)."""
    return aiops_score(mitigate=False, smoke=smoke, sanitizer=False)


def check_report(report: dict) -> list:
    """The quality invariants every scoring pass must satisfy."""
    problems = []
    summary = report["summary"]
    fp = summary["false_positive"]
    if fp["false_positives"]:
        problems.append(
            f"{fp['false_positives']} false positives across "
            f"{fp['clean_runs']} clean runs (must be 0)"
        )
    detection = summary["detection"]
    if detection["rate"] < MIN_DETECTION_RATE:
        problems.append(
            f"detection rate {detection['rate']:.2f} below "
            f"{MIN_DETECTION_RATE}"
        )
    link_rows = [
        row
        for row in report["rows"]
        if row["fault_kind"] in ("link_down", "degrade")
    ]
    top1 = sum(1 for row in link_rows if row.get("top1"))
    if link_rows and top1 / len(link_rows) < MIN_TOP1_LINK_FAULTS:
        problems.append(
            f"top-1 localization {top1}/{len(link_rows)} on "
            f"link_down/degrade below {MIN_TOP1_LINK_FAULTS:.0%}"
        )
    return problems


def _smoke_facts(report: dict) -> dict:
    """The per-scenario facts the baseline pins down."""
    facts = {}
    for row in report["rows"]:
        if row["fault_kind"] == "clean":
            facts[row["scenario"]] = {
                "false_positives": row["false_positives"]
            }
        else:
            facts[row["scenario"]] = {
                "detected": bool(row.get("detected")),
                "top1": bool(row.get("top1")),
                "latency_frac": round(
                    row.get("detection_latency_frac") or 0.0, 6
                ),
            }
    return facts


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------


def test_aiops_smoke_grid(benchmark):
    report = benchmark.pedantic(run_grid, args=(True,), rounds=1, iterations=1)
    problems = check_report(report)
    assert not problems, "\n".join(problems)


def test_aiops_full_grid(benchmark, report):
    scored = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    report("E26_aiops_loop", render_score(scored))
    problems = check_report(scored)
    assert not problems, "\n".join(problems)


# ----------------------------------------------------------------------
# standalone main (--smoke is the CI guard)
# ----------------------------------------------------------------------


def smoke() -> int:
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except FileNotFoundError:
        print(
            f"[bench_aiops_loop] missing baseline {BASELINE_PATH}",
            file=sys.stderr,
        )
        return 1
    report = run_grid(smoke=True)
    problems = check_report(report)
    facts = _smoke_facts(report)
    for name, fact in sorted(facts.items()):
        want = baseline["scenarios"].get(name)
        if want is None:
            problems.append(f"baseline lacks scenario {name!r}")
            continue
        if "false_positives" in fact:
            marker = "ok" if not fact["false_positives"] else "REGRESSION"
            print(
                f"[bench_aiops_loop] {name}: "
                f"{fact['false_positives']} false positives {marker}"
            )
            continue
        drift = abs(fact["latency_frac"] - want["latency_frac"])
        ok = (
            fact["detected"] == want["detected"]
            and fact["top1"] == want["top1"]
            and drift <= SMOKE_LATENCY_TOLERANCE
        )
        print(
            f"[bench_aiops_loop] {name}: detected={fact['detected']} "
            f"top1={fact['top1']} latency_frac={fact['latency_frac']:.4f} "
            f"(baseline {want['latency_frac']:.4f}) "
            f"{'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            problems.append(
                f"{name}: detected={fact['detected']}/top1={fact['top1']} "
                f"latency_frac={fact['latency_frac']:.4f} vs baseline "
                f"detected={want['detected']}/top1={want['top1']} "
                f"latency_frac={want['latency_frac']:.4f}"
            )
    if problems:
        print(
            "[bench_aiops_loop] smoke FAILED:\n  " + "\n  ".join(problems),
            file=sys.stderr,
        )
        return 1
    print("[bench_aiops_loop] smoke passed")
    return 0


def regen_baseline(path: Path) -> int:
    path.parent.mkdir(parents=True, exist_ok=True)
    report = run_grid(smoke=True)
    path.write_text(
        json.dumps(
            {
                "benchmark": "bench_aiops_loop",
                "scenario": {
                    "paradigms": list(SMOKE_PARADIGMS),
                    "fault_kinds": list(SMOKE_KINDS),
                    "scheduler": report["scheduler"],
                },
                "scenarios": _smoke_facts(report),
            },
            indent=2,
        )
        + "\n"
    )
    print(f"[bench_aiops_loop] baseline written to {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="deterministic regression guard against the checked-in baseline",
    )
    parser.add_argument(
        "--regen-baseline",
        action="store_true",
        help=f"rewrite {BASELINE_PATH.name} from the current code",
    )
    args = parser.parse_args(argv)
    if args.regen_baseline:
        return regen_baseline(BASELINE_PATH)
    if args.smoke:
        return smoke()
    report = run_grid()
    print(render_score(report))
    problems = check_report(report)
    if problems:
        print(
            "[bench_aiops_loop] invariants FAILED:\n  "
            + "\n  ".join(problems),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
