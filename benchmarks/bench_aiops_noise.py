#!/usr/bin/env python
"""E27 -- watch-loop quality under degraded telemetry + multi-fault grid.

Extends E26 along the two axes ISSUE 8 added: a seeded
:class:`~repro.obs.watch.TelemetryChannel` between the engine's event
feed and the watch loop (sampling, i.i.d. and bursty loss, delay/jitter,
duplication), and concurrent/correlated fault scenarios graded as ranked
*fault sets* (per-fault precision/recall + localization latency).

Quality bars enforced on every pass:

* noise off -- the PR 6 contract is untouched: every fault detected,
  100 % top-1, zero clean-run false positives;
* ``sample=4,drop=0.1`` (1-in-4 sampling + 10 % loss) -- detection
  recall >= 0.9 and clean-run false positives stay 0;
* multi-fault grid (noise off) -- per-fault precision and recall
  >= 0.8, and every hot-neighbour scenario blames the tenant job, not
  a link.

Runs both ways:

* under pytest-benchmark (the ``test_*`` functions; writes
  ``benchmarks/results/E27_aiops_noise.txt``), and
* standalone::

      PYTHONPATH=src python benchmarks/bench_aiops_noise.py          # full sweep
      PYTHONPATH=src python benchmarks/bench_aiops_noise.py --smoke  # CI guard

``--smoke`` runs the smoke subsets (single-fault pp/dp/ls at every noise
level, multi-fault pp/ls at noise off) and pins per-scenario facts
against ``benchmarks/results/bench_aiops_noise_baseline.json``. All
channels are seeded, so the whole sweep is deterministic; exit code 1 on
regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.obs.watch import (
    MULTI_FAULT_KINDS,
    MULTI_PARADIGMS,
    MULTI_SMOKE_PARADIGMS,
    aiops_score,
)

RESULTS_DIR = ROOT / "benchmarks" / "results"
BASELINE_PATH = RESULTS_DIR / "bench_aiops_noise_baseline.json"

#: The noise sweep, mildest first. ``medium`` is the ISSUE acceptance
#: level (1-in-4 sampling + 10 % i.i.d. loss); ``heavy`` adds burst
#: loss, delay/jitter reordering, and duplication on top.
NOISE_LEVELS = (
    ("off", None),
    ("light", "sample=2,drop=0.02"),
    ("medium", "sample=4,drop=0.1"),
    ("heavy", "sample=4,drop=0.1,burst=0.02x5,delay=0.001,dup=0.01"),
)
SEED = 0

MIN_RECALL_MEDIUM = 0.9
MIN_FAULT_SET_PRECISION = 0.8
MIN_FAULT_SET_RECALL = 0.8
#: The ISSUE 10 bar for the multi-fault grid *under noise*: per-fault
#: precision at the light and medium telemetry-noise levels. The
#: checked-in baseline JSON carries these thresholds too ("thresholds"
#: key), and the CI aiops job enforces them via ``--smoke``.
MULTI_NOISE_LEVELS = (
    ("light", "sample=2,drop=0.02"),
    ("medium", "sample=4,drop=0.1"),
)
MIN_FAULT_SET_PRECISION_NOISY = 0.75
#: Allowed drift of a pinned detection-latency fraction (see E26).
SMOKE_LATENCY_TOLERANCE = 0.05


def run_single(noise, smoke: bool = False) -> dict:
    """Single-fault grid under one noise level (bare hot path)."""
    return aiops_score(
        mitigate=False, smoke=smoke, sanitizer=False, noise=noise, seed=SEED
    )


def run_multi(noise=None, smoke: bool = False) -> dict:
    """Multi-fault grid (fault sets) under one noise level."""
    return aiops_score(
        paradigms=MULTI_SMOKE_PARADIGMS if smoke else MULTI_PARADIGMS,
        kinds=MULTI_FAULT_KINDS,
        mitigate=False,
        sanitizer=False,
        noise=noise,
        seed=SEED,
    )


def run_sweep(smoke: bool = False) -> dict:
    """The full E27 pass: one single-fault grid per noise level plus the
    noise-off multi-fault grid."""
    return {
        "single": {
            name: run_single(spec, smoke=smoke)
            for name, spec in NOISE_LEVELS
        },
        "multi": run_multi(smoke=smoke),
        "multi_noise": {
            name: run_multi(spec, smoke=smoke)
            for name, spec in MULTI_NOISE_LEVELS
        },
    }


def check_sweep(sweep: dict) -> list:
    """The quality invariants every E27 pass must satisfy."""
    problems = []
    for name, _ in NOISE_LEVELS:
        summary = sweep["single"][name]["summary"]
        fp = summary["false_positive"]["false_positives"]
        if name in ("off", "medium") and fp:
            problems.append(
                f"{name}: {fp} clean-run false positives (must be 0)"
            )
        rate = summary["detection"]["rate"]
        if name == "off" and rate < 1.0:
            problems.append(
                f"off: detection rate {rate:.3f} below 1.0 "
                "(noise-free grid must stay perfect)"
            )
        if name == "off" and summary["localization"]["top1_accuracy"] < 1.0:
            problems.append(
                f"off: top-1 accuracy "
                f"{summary['localization']['top1_accuracy']:.3f} below 1.0"
            )
        if name == "medium" and rate < MIN_RECALL_MEDIUM:
            problems.append(
                f"medium: detection recall {rate:.3f} below "
                f"{MIN_RECALL_MEDIUM} at 1-in-4 sampling + 10% loss"
            )
    sets = sweep["multi"]["summary"]["fault_sets"]
    if sets["precision"] < MIN_FAULT_SET_PRECISION:
        problems.append(
            f"multi: fault-set precision {sets['precision']:.3f} below "
            f"{MIN_FAULT_SET_PRECISION}"
        )
    if sets["recall"] < MIN_FAULT_SET_RECALL:
        problems.append(
            f"multi: fault-set recall {sets['recall']:.3f} below "
            f"{MIN_FAULT_SET_RECALL}"
        )
    for row in sweep["multi"]["rows"]:
        if row["fault_kind"] != "hot_neighbor":
            continue
        claimed = (row.get("fault_sets") or {}).get("claimed") or []
        if not claimed or not all(c.startswith("job:") for c in claimed):
            problems.append(
                f"{row['scenario']}: hot neighbour blamed on {claimed or 'nothing'} "
                "(must be the tenant job, never a link)"
            )
    for name, _ in MULTI_NOISE_LEVELS:
        noisy = sweep["multi_noise"][name]["summary"]["fault_sets"]
        if noisy["precision"] < MIN_FAULT_SET_PRECISION_NOISY:
            problems.append(
                f"multi@{name} noise: fault-set precision "
                f"{noisy['precision']:.3f} below "
                f"{MIN_FAULT_SET_PRECISION_NOISY}"
            )
    return problems


def render_sweep(sweep: dict) -> str:
    """The E27 table: one line per noise level plus the fault-set grid."""
    lines = []
    header = (
        f"{'noise':<8}{'detected':>10}{'top1':>7}{'top3':>7}{'FP':>4}"
        f"{'mean latency':>14}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, spec in NOISE_LEVELS:
        summary = sweep["single"][name]["summary"]
        det = summary["detection"]
        loc = summary["localization"]
        latency = (
            f"{det['mean_latency_frac']:.1%} jct"
            if det["detected"]
            else "-"
        )
        lines.append(
            f"{name:<8}{det['detected']:>6}/{det['faulty_runs']:<3}"
            f"{loc['top1_accuracy']:>7.0%}{loc['top3_accuracy']:>7.0%}"
            f"{summary['false_positive']['false_positives']:>4}"
            f"{latency:>14}"
        )
        lines.append(f"         spec: {spec or 'off'}")
    lines.append("")
    lines.append("multi-fault grid (noise off), claimed fault sets:")
    for row in sweep["multi"]["rows"]:
        sets = row.get("fault_sets")
        if not sets:
            continue
        precision = (
            f"{sets['precision']:.0%}" if sets["precision"] is not None else "-"
        )
        lines.append(
            f"  {row['scenario']:<20} P {precision:>5} R {sets['recall']:.0%}"
            f"  claimed: {', '.join(sets['claimed']) or '-'}"
        )
    agg = sweep["multi"]["summary"]["fault_sets"]
    lines.append(
        f"  aggregate: precision {agg['precision']:.1%} "
        f"({agg['matched_claims']}/{agg['claims']} claims), "
        f"recall {agg['recall']:.1%} ({agg['matched']}/{agg['faults']} faults)"
    )
    return "\n".join(lines)


def _sweep_facts(sweep: dict) -> dict:
    """The per-scenario facts the baseline pins down."""
    facts: dict = {"single": {}, "multi": {}}
    for name, _ in NOISE_LEVELS:
        level = facts["single"][name] = {}
        for row in sweep["single"][name]["rows"]:
            if row["fault_kind"] == "clean":
                level[row["scenario"]] = {
                    "false_positives": row["false_positives"]
                }
            else:
                level[row["scenario"]] = {
                    "detected": bool(row.get("detected")),
                    "top1": bool(row.get("top1")),
                    "latency_frac": round(
                        row.get("detection_latency_frac") or 0.0, 6
                    ),
                }
    for row in sweep["multi"]["rows"]:
        sets = row.get("fault_sets")
        if sets:
            facts["multi"][row["scenario"]] = {
                "claimed": list(sets["claimed"]),
                "recall": round(sets["recall"], 6),
            }
    facts["multi_noise"] = {
        name: {
            "precision": round(
                sweep["multi_noise"][name]["summary"]["fault_sets"][
                    "precision"
                ],
                6,
            ),
            "recall": round(
                sweep["multi_noise"][name]["summary"]["fault_sets"]["recall"],
                6,
            ),
        }
        for name, _ in MULTI_NOISE_LEVELS
    }
    return facts


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------


def test_aiops_noise_smoke(benchmark):
    sweep = benchmark.pedantic(run_sweep, args=(True,), rounds=1, iterations=1)
    problems = check_sweep(sweep)
    assert not problems, "\n".join(problems)


def test_aiops_noise_full(benchmark, report):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("E27_aiops_noise", render_sweep(sweep))
    problems = check_sweep(sweep)
    assert not problems, "\n".join(problems)


# ----------------------------------------------------------------------
# standalone main (--smoke is the CI guard)
# ----------------------------------------------------------------------


def _check_level(name: str, got: dict, want: dict, problems: list) -> None:
    for scenario, fact in sorted(got.items()):
        pinned = want.get(scenario)
        if pinned is None:
            problems.append(f"baseline lacks {name}/{scenario}")
            continue
        if "false_positives" in fact:
            ok = fact["false_positives"] == pinned["false_positives"]
            print(
                f"[bench_aiops_noise] {name}/{scenario}: "
                f"{fact['false_positives']} false positives "
                f"{'ok' if ok else 'REGRESSION'}"
            )
            if not ok:
                problems.append(
                    f"{name}/{scenario}: {fact['false_positives']} false "
                    f"positives vs baseline {pinned['false_positives']}"
                )
            continue
        drift = abs(fact["latency_frac"] - pinned["latency_frac"])
        ok = (
            fact["detected"] == pinned["detected"]
            and fact["top1"] == pinned["top1"]
            and drift <= SMOKE_LATENCY_TOLERANCE
        )
        print(
            f"[bench_aiops_noise] {name}/{scenario}: "
            f"detected={fact['detected']} top1={fact['top1']} "
            f"latency_frac={fact['latency_frac']:.4f} "
            f"(baseline {pinned['latency_frac']:.4f}) "
            f"{'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            problems.append(
                f"{name}/{scenario}: detected={fact['detected']}/"
                f"top1={fact['top1']}/latency_frac={fact['latency_frac']:.4f}"
                f" vs baseline detected={pinned['detected']}/"
                f"top1={pinned['top1']}/"
                f"latency_frac={pinned['latency_frac']:.4f}"
            )


def smoke() -> int:
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except FileNotFoundError:
        print(
            f"[bench_aiops_noise] missing baseline {BASELINE_PATH}",
            file=sys.stderr,
        )
        return 1
    sweep = run_sweep(smoke=True)
    problems = check_sweep(sweep)
    facts = _sweep_facts(sweep)
    for name, _ in NOISE_LEVELS:
        _check_level(
            name,
            facts["single"][name],
            baseline["single"].get(name, {}),
            problems,
        )
    for scenario, fact in sorted(facts["multi"].items()):
        pinned = baseline["multi"].get(scenario)
        if pinned is None:
            problems.append(f"baseline lacks multi/{scenario}")
            continue
        ok = (
            fact["claimed"] == pinned["claimed"]
            and fact["recall"] >= pinned["recall"]
        )
        print(
            f"[bench_aiops_noise] multi/{scenario}: "
            f"claimed={','.join(fact['claimed']) or '-'} "
            f"recall={fact['recall']:.2f} {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            problems.append(
                f"multi/{scenario}: claimed={fact['claimed']} "
                f"recall={fact['recall']:.2f} vs baseline "
                f"claimed={pinned['claimed']} recall={pinned['recall']:.2f}"
            )
    # The noisy multi-fault bars come from the baseline JSON so CI and
    # the checked-in thresholds cannot drift apart.
    noisy_bars = baseline.get("thresholds", {}).get(
        "multi_noise_precision", {}
    )
    for name, _ in MULTI_NOISE_LEVELS:
        fact = facts["multi_noise"][name]
        bar = noisy_bars.get(name, MIN_FAULT_SET_PRECISION_NOISY)
        ok = fact["precision"] >= bar
        print(
            f"[bench_aiops_noise] multi@{name}: "
            f"precision={fact['precision']:.3f} (bar {bar:g}) "
            f"recall={fact['recall']:.3f} {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            problems.append(
                f"multi@{name}: precision {fact['precision']:.3f} below "
                f"the baseline bar {bar:g}"
            )
    if problems:
        print(
            "[bench_aiops_noise] smoke FAILED:\n  " + "\n  ".join(problems),
            file=sys.stderr,
        )
        return 1
    print("[bench_aiops_noise] smoke passed")
    return 0


def regen_baseline(path: Path) -> int:
    path.parent.mkdir(parents=True, exist_ok=True)
    sweep = run_sweep(smoke=True)
    facts = _sweep_facts(sweep)
    path.write_text(
        json.dumps(
            {
                "benchmark": "bench_aiops_noise",
                "scenario": {
                    "noise_levels": {
                        name: spec or "off" for name, spec in NOISE_LEVELS
                    },
                    "seed": SEED,
                    "multi_paradigms": list(MULTI_SMOKE_PARADIGMS),
                    "multi_fault_kinds": list(MULTI_FAULT_KINDS),
                },
                "thresholds": {
                    "multi_noise_precision": {
                        name: MIN_FAULT_SET_PRECISION_NOISY
                        for name, _ in MULTI_NOISE_LEVELS
                    }
                },
                "single": facts["single"],
                "multi": facts["multi"],
                "multi_noise": facts["multi_noise"],
            },
            indent=2,
        )
        + "\n"
    )
    print(f"[bench_aiops_noise] baseline written to {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="deterministic regression guard against the checked-in baseline",
    )
    parser.add_argument(
        "--regen-baseline",
        action="store_true",
        help=f"rewrite {BASELINE_PATH.name} from the current code",
    )
    args = parser.parse_args(argv)
    if args.regen_baseline:
        return regen_baseline(BASELINE_PATH)
    if args.smoke:
        return smoke()
    sweep = run_sweep()
    print(render_sweep(sweep))
    problems = check_sweep(sweep)
    if problems:
        print(
            "[bench_aiops_noise] invariants FAILED:\n  "
            + "\n  ".join(problems),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
