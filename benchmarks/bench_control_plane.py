#!/usr/bin/env python
"""E28 -- control-plane chaos suite: crash, partition, and lossy-RPC runs.

Drives the fault-tolerant runtime (:mod:`repro.system.runtime`) through
every control-plane failure scenario and grades the outcome. The quality
bars enforced on every pass mirror the ISSUE 10 acceptance criteria:

* **completion** -- every job completes in every scenario (quarantine
  and degraded-mode scheduling never stall a flow);
* **bounded inflation** -- per-scenario JCT inflation stays at or below
  ``INFLATION_BOUND`` (1.5x) over the fault-free baseline;
* **bit-identity** -- the identity-channel baseline produces a trace
  digest equal to the direct in-process path, byte for byte;
* **determinism** -- every scenario digests identically when re-run
  with the same ``(spec, seed)``.

Runs both ways:

* under pytest-benchmark (the ``test_*`` functions; writes
  ``benchmarks/results/E28_control_plane.txt``), and
* standalone::

      PYTHONPATH=src python benchmarks/bench_control_plane.py          # full suite
      PYTHONPATH=src python benchmarks/bench_control_plane.py --smoke  # CI guard

``--smoke`` runs the reduced scenario set and pins per-scenario facts
(mode, completion, inflation) against
``benchmarks/results/bench_control_plane_baseline.json``; exit code 1 on
any regression. Everything is seeded, so the whole suite is
deterministic.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.system.runtime import format_chaos_table, run_chaos_suite

RESULTS_DIR = ROOT / "benchmarks" / "results"
BASELINE_PATH = RESULTS_DIR / "bench_control_plane_baseline.json"

SEED = 0
#: The ISSUE 10 acceptance bound: per-job JCT inflation over the
#: fault-free baseline, per scenario.
INFLATION_BOUND = 1.5
#: Allowed drift of a pinned inflation factor before it counts as a
#: regression (the suite is deterministic; drift means code changed).
INFLATION_TOLERANCE = 0.05


def run_suite(smoke: bool = False) -> dict:
    return run_chaos_suite(
        smoke=smoke, seed=SEED, inflation_bound=INFLATION_BOUND,
        sanitizer=False,
    )


def check_suite(report: dict) -> list:
    """The invariants every pass must satisfy (suite-internal checks
    re-stated here so a bench failure names the broken bar)."""
    problems = []
    for row in report["scenarios"]:
        name = row["scenario"]
        if not row["all_jobs_completed"]:
            problems.append(
                f"{name}: only {row['completed']} jobs completed"
            )
        if not row["inflation_ok"]:
            problems.append(
                f"{name}: JCT inflation {row['max_inflation']:.3f}x "
                f"exceeds the {INFLATION_BOUND:g}x bound"
            )
        if not row["deterministic"]:
            problems.append(f"{name}: two runs of one (spec, seed) diverged")
        if not row.get("bit_identical", True):
            problems.append(
                f"{name}: identity-channel digest differs from the "
                "direct in-process path"
            )
    return problems


def _suite_facts(report: dict) -> dict:
    """The per-scenario facts the baseline pins down."""
    return {
        row["scenario"]: {
            "mode": row["mode"],
            "completed": row["completed"],
            "max_inflation": row["max_inflation"],
        }
        for row in report["scenarios"]
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------


def test_control_plane_smoke(benchmark):
    report = benchmark.pedantic(
        run_suite, args=(True,), rounds=1, iterations=1
    )
    problems = check_suite(report)
    assert not problems, "\n".join(problems)
    assert report["ok"]


def test_control_plane_full(benchmark, report):
    suite = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    report("E28_control_plane", format_chaos_table(suite))
    problems = check_suite(suite)
    assert not problems, "\n".join(problems)
    assert suite["ok"]


# ----------------------------------------------------------------------
# standalone main (--smoke is the CI guard)
# ----------------------------------------------------------------------


def smoke() -> int:
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except FileNotFoundError:
        print(
            f"[bench_control_plane] missing baseline {BASELINE_PATH}",
            file=sys.stderr,
        )
        return 1
    suite = run_suite(smoke=True)
    problems = check_suite(suite)
    facts = _suite_facts(suite)
    for name, fact in sorted(facts.items()):
        pinned = baseline["scenarios"].get(name)
        if pinned is None:
            problems.append(f"baseline lacks scenario {name}")
            continue
        drift = abs(fact["max_inflation"] - pinned["max_inflation"])
        ok = (
            fact["mode"] == pinned["mode"]
            and fact["completed"] == pinned["completed"]
            and drift <= INFLATION_TOLERANCE
        )
        print(
            f"[bench_control_plane] {name}: mode={fact['mode']} "
            f"jobs={fact['completed']} "
            f"inflation={fact['max_inflation']:.3f}x "
            f"(baseline {pinned['max_inflation']:.3f}x) "
            f"{'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            problems.append(
                f"{name}: mode={fact['mode']}/completed={fact['completed']}/"
                f"inflation={fact['max_inflation']:.3f} vs baseline "
                f"mode={pinned['mode']}/completed={pinned['completed']}/"
                f"inflation={pinned['max_inflation']:.3f}"
            )
    if problems:
        print(
            "[bench_control_plane] FAILED:\n  " + "\n  ".join(problems),
            file=sys.stderr,
        )
        return 1
    print("[bench_control_plane] smoke ok")
    return 0


def regen_baseline(path: Path) -> int:
    suite = run_suite(smoke=True)
    problems = check_suite(suite)
    if problems:
        print(
            "[bench_control_plane] refusing to pin a failing suite:\n  "
            + "\n  ".join(problems),
            file=sys.stderr,
        )
        return 1
    path.write_text(
        json.dumps(
            {
                "benchmark": "bench_control_plane",
                "seed": SEED,
                "inflation_bound": INFLATION_BOUND,
                "scenarios": _suite_facts(suite),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"[bench_control_plane] baseline written to {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="deterministic regression guard against the checked-in baseline",
    )
    parser.add_argument(
        "--regen-baseline",
        action="store_true",
        help=f"rewrite {BASELINE_PATH.name} from the current code",
    )
    args = parser.parse_args(argv)
    if args.regen_baseline:
        return regen_baseline(BASELINE_PATH)
    if args.smoke:
        return smoke()
    suite = run_suite()
    print(format_chaos_table(suite))
    problems = check_suite(suite)
    if problems:
        print(
            "[bench_control_plane] invariants FAILED:\n  "
            + "\n  ".join(problems),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
