"""E15 -- dynamic multi-tenant cluster (extended).

The paper motivates EchelonFlow with "a shared, highly dynamic network
with competing training jobs". This bench runs a Poisson stream of mixed
jobs (DP / PP / FSDP) through admission control, first-fit placement with
queueing, and host release -- then compares coordinator algorithms on mean
job completion (including queueing) and on the tail.
"""

import pytest

from repro.analysis import format_table, percentile
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    SincroniaScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import (
    ClusterManager,
    JobTemplate,
    build_dp_allreduce,
    build_fsdp,
    build_pp_gpipe,
    poisson_arrivals,
    uniform_model,
)
from repro.workloads.placement import ClusterPlacer

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(25),
    activation_bytes=megabytes(10),
    forward_time=0.003,
)

TEMPLATES = [
    JobTemplate(
        "dp",
        lambda jid, ws: build_dp_allreduce(
            jid, MODEL, ws, bucket_bytes=megabytes(50)
        ),
        worker_count=4,
        weight=2.0,
    ),
    JobTemplate(
        "pp",
        lambda jid, ws: build_pp_gpipe(jid, MODEL, ws, num_micro_batches=4),
        worker_count=4,
        weight=1.0,
    ),
    JobTemplate(
        "fsdp",
        lambda jid, ws: build_fsdp(jid, MODEL, ws),
        worker_count=4,
        weight=1.0,
    ),
]

N_JOBS = 24
ARRIVAL_RATE = 15.0  # jobs/s over a 12-host cluster: sustained contention
N_HOSTS = 12
SEED = 2022


def _run(scheduler):
    topo = big_switch(N_HOSTS, gbps(10))
    engine = Engine(topo, scheduler)
    manager = ClusterManager(engine, ClusterPlacer(topo))
    manager.schedule(poisson_arrivals(TEMPLATES, ARRIVAL_RATE, N_JOBS, seed=SEED))
    engine.run()
    jcts = [r.completion_time for r in manager.completed_records()]
    return {
        "completed": len(jcts),
        "mean_jct": sum(jcts) / len(jcts),
        "p95_jct": percentile(jcts, 95),
        "mean_queue": manager.mean_queueing_delay(),
    }


def test_dynamic_cluster_echelon(benchmark):
    stats = benchmark(_run, EchelonMaddScheduler())
    assert stats["completed"] == N_JOBS


def test_dynamic_cluster_comparison(benchmark, report):
    schedulers = [
        ("fair", FairSharingScheduler),
        ("coflow", CoflowMaddScheduler),
        ("sincronia", SincroniaScheduler),
        ("echelon", EchelonMaddScheduler),
    ]

    def sweep():
        return {name: _run(cls()) for name, cls in schedulers}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name, s["completed"], s["mean_jct"], s["p95_jct"], s["mean_queue"]]
        for name, s in results.items()
    ]
    report(
        "E15_dynamic_cluster",
        format_table(
            ["scheduler", "completed", "mean JCT", "p95 JCT", "mean queueing"],
            rows,
            title=(
                f"Dynamic cluster: {N_JOBS} Poisson arrivals "
                f"(DP:PP:FSDP = 2:1:1) on {N_HOSTS} hosts"
            ),
        ),
    )
    for name, stats in results.items():
        assert stats["completed"] == N_JOBS, name
    # Echelon should beat unscheduled fair sharing on both mean and tail.
    assert results["echelon"]["mean_jct"] <= results["fair"]["mean_jct"] + 1e-9
    assert results["echelon"]["p95_jct"] <= results["fair"]["p95_jct"] * 1.05
