"""E23 -- tenant fairness: slowdown vs isolated runs, Jain's index.

A scheduler that wins on aggregate numbers by starving one tenant is not
cluster-ready. For the mixed three-job workload of E12 we compute each
job's *slowdown* (shared completion / isolated completion on the same
hardware) and Jain's fairness index over the slowdowns.

This experiment is what drove the default inter-EchelonFlow ordering to
the two-level hybrid: globally most-behind-first convoys the small PP
tenant behind the bulk FSDP job (slowdown 12x, Jain 0.52), while the
job-level ranking keeps every tenant within ~1.7x at equal-or-better
aggregate numbers.
"""

import pytest

from repro.analysis import format_table, slowdowns
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    SincroniaScheduler,
)
from repro.topology import leaf_spine
from repro.workloads import (
    build_dp_allreduce,
    build_fsdp,
    build_pp_gpipe,
    uniform_model,
)

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(30),
    activation_bytes=megabytes(15),
    forward_time=0.004,
)


def _builders():
    return {
        "pp": lambda: build_pp_gpipe(
            "pp", MODEL, ["h0", "h4", "h8", "h12"], num_micro_batches=4
        ),
        "fsdp": lambda: build_fsdp("fsdp", MODEL, ["h1", "h5", "h9", "h13"]),
        "dp": lambda: build_dp_allreduce(
            "dp", MODEL, ["h2", "h6", "h10", "h14"], bucket_bytes=megabytes(60)
        ),
    }


def _topology():
    return leaf_spine(
        n_leaves=4, hosts_per_leaf=4, host_bandwidth=gbps(10), oversubscription=2.0
    )


def test_fairness_echelon(benchmark):
    ratios, jain = benchmark(slowdowns, _builders(), _topology, EchelonMaddScheduler)
    assert 0 < jain <= 1.0


def test_fairness_comparison(benchmark, report):
    def sweep():
        rows = []
        for name, make in (
            ("fair", FairSharingScheduler),
            ("coflow", CoflowMaddScheduler),
            ("sincronia", SincroniaScheduler),
            ("echelon (hybrid, default)", EchelonMaddScheduler),
            (
                "echelon (most-behind-first)",
                lambda: EchelonMaddScheduler(ordering="tardiness"),
            ),
        ):
            ratios, jain = slowdowns(_builders(), _topology, make)
            rows.append([name, ratios["pp"], ratios["fsdp"], ratios["dp"], jain])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E23_fairness",
        format_table(
            ["scheduler", "pp slowdown", "fsdp slowdown", "dp slowdown", "Jain index"],
            rows,
            title="Tenant slowdowns vs isolated runs (2:1 leaf-spine)",
        ),
    )
    by_name = {row[0]: row for row in rows}
    default = by_name["echelon (hybrid, default)"]
    protective = by_name["echelon (most-behind-first)"]
    # The default keeps every tenant within a modest slowdown ...
    assert max(default[1:4]) <= 2.0
    # ... and its fairness index beats the most-behind-first policy's by a
    # wide margin (the convoy effect this bench documents).
    assert default[4] >= 0.9
    assert protective[4] < default[4]
    # It is also no less fair than the Coflow baselines.
    assert default[4] >= by_name["coflow"][4] - 0.05
