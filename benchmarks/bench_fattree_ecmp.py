"""E17 -- multi-path fabrics: fat-tree + ECMP (extended).

The paper's big-switch examples hide path diversity. Here jobs run on a
4-ary fat tree where cross-pod transfers have several equal-cost paths:
ECMP hashing spreads flows, shortest-path routing piles them onto one
core. The bench measures (a) how much path diversity buys each scheduler
and (b) coordinator invocation cost as concurrent jobs scale -- the §5
scalability concern.
"""

import time

import pytest

from repro.analysis import format_table, job_completion_time
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import EcmpRouter, ShortestPathRouter, fat_tree
from repro.workloads import build_dp_allreduce, uniform_model

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(30),
    activation_bytes=megabytes(10),
    forward_time=0.004,
)


def _cross_pod_workers(hosts, count, stride=4):
    """Pick workers across pods so rings cross the core."""
    return [hosts[(i * stride) % len(hosts)] for i in range(count)]


def _run(n_jobs, router_cls, scheduler):
    topo = fat_tree(4, gbps(10))
    hosts = topo.hosts
    engine = Engine(topo, scheduler, router=router_cls(topo))
    jobs = []
    for j in range(n_jobs):
        workers = [hosts[(j + i * 4) % len(hosts)] for i in range(4)]
        job = build_dp_allreduce(
            f"dp{j}", MODEL, workers, bucket_bytes=megabytes(60)
        )
        job.submit_to(engine)
        jobs.append(job)
    start = time.perf_counter()
    trace = engine.run()
    wall = time.perf_counter() - start
    jcts = [job_completion_time(trace, job.job_id) for job in jobs]
    return sum(jcts) / len(jcts), max(jcts), wall


def test_fattree_echelon_ecmp(benchmark):
    mean_jct, _max_jct, _wall = benchmark(_run, 4, EcmpRouter, EchelonMaddScheduler())
    assert mean_jct > 0


def test_ecmp_vs_single_path(benchmark, report):
    def sweep():
        rows = []
        for router_name, router_cls in (
            ("shortest-path", ShortestPathRouter),
            ("ecmp", EcmpRouter),
        ):
            for sched_name, make in (
                ("fair", FairSharingScheduler),
                ("coflow", CoflowMaddScheduler),
                ("echelon", EchelonMaddScheduler),
                ("echelon-sebf", lambda: EchelonMaddScheduler(ordering="sebf")),
            ):
                mean_jct, max_jct, _ = _run(6, router_cls, make())
                rows.append([router_name, sched_name, mean_jct, max_jct])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    note = (
        "Finding: on symmetric, fully Coflow-compliant DP tenants, Varys is\n"
        "the natural specialist; the echelon scheduler with SEBF ordering\n"
        "reproduces it (Property 2 at fleet scale) and the default two-level\n"
        "ordering tracks it within 5% on mean and max while beating it\n"
        "outright under single-path routing. EchelonFlow's headline gains\n"
        "live where arrangements are staggered (PP/FSDP, E2/E5) or tenants\n"
        "are heterogeneous (E12/E15/E23)."
    )
    report(
        "E17_fattree_ecmp",
        format_table(
            ["routing", "scheduler", "mean JCT", "max JCT"],
            rows,
            title="6 cross-pod DP jobs on a 4-ary fat tree",
        )
        + "\n\n"
        + note,
    )
    mean_by = {(r[0], r[1]): r[2] for r in rows}
    max_by = {(r[0], r[1]): r[3] for r in rows}
    # Path diversity is the first-order lever for everyone.
    assert mean_by[("ecmp", "fair")] <= mean_by[("shortest-path", "fair")] * 1.02
    assert mean_by[("ecmp", "echelon")] <= mean_by[("shortest-path", "echelon")] * 1.02
    # Matched orderings: echelon-SEBF tracks Varys on this fully-compliant
    # workload (Property 2 at fleet scale).
    assert mean_by[("ecmp", "echelon-sebf")] <= mean_by[("ecmp", "coflow")] * 1.02
    # The default two-level ordering beats fair sharing on the mean and
    # stays within 5% of Varys on both mean and max for this fully
    # Coflow-compliant fleet (where Varys is the natural specialist).
    assert mean_by[("ecmp", "echelon")] <= mean_by[("ecmp", "fair")]
    assert mean_by[("ecmp", "echelon")] <= mean_by[("ecmp", "coflow")] * 1.05
    assert max_by[("ecmp", "echelon")] <= max_by[("ecmp", "coflow")] * 1.05


def test_scalability_with_job_count(benchmark, report):
    def sweep():
        rows = []
        for n_jobs in (2, 4, 8):
            mean_jct, max_jct, wall = _run(n_jobs, EcmpRouter, EchelonMaddScheduler())
            rows.append([n_jobs, mean_jct, max_jct, wall])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E17b_scalability",
        format_table(
            ["concurrent jobs", "mean JCT", "max JCT", "sim wall time (s)"],
            rows,
            title="Coordinator scalability on the fat tree (echelon + ECMP)",
        ),
    )
    walls = [row[3] for row in rows]
    # Cost grows, but sub-quadratically in job count on this range.
    assert walls[-1] <= walls[0] * (8 / 2) ** 2
