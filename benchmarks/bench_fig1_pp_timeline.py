"""E3 -- Fig. 1a: the GPipe computation timeline and its bubbles.

Reproduces the 4-worker x 4-micro-batch pipeline timeline (forward 1..4,
then backward 4..1 with the end-of-iteration barrier) and checks the grey
idle areas against GPipe's analytic bubble fraction (p-1)/(m+p-1) on the
forward phase under a fast network.
"""

import pytest

from repro.analysis import (
    format_table,
    gpu_idleness,
    pipeline_bubble_fraction,
    render_device_timeline,
)
from repro.scheduling import EchelonMaddScheduler
from repro.simulator import Engine
from repro.topology import linear_chain
from repro.workloads import build_pp_gpipe, uniform_model

STAGES = 4
MICRO_BATCHES = 4
MODEL = uniform_model(
    "u8", 8, param_bytes_per_layer=1e4, activation_bytes=1e3, forward_time=1.0,
    backward_time=1.0,
)


def _run(bandwidth=1e9):
    job = build_pp_gpipe(
        "fig1", MODEL, [f"h{i}" for i in range(STAGES)], MICRO_BATCHES
    )
    engine = Engine(linear_chain(STAGES, bandwidth), EchelonMaddScheduler())
    job.submit_to(engine)
    return engine.run()


def test_fig1_simulation(benchmark):
    trace = benchmark(_run)
    assert trace.end_time > 0


def test_fig1_timeline_and_bubbles(benchmark, report):
    trace = benchmark.pedantic(_run, rounds=1, iterations=1)

    # Makespan of a synchronous pipeline with negligible comm:
    # (m + p - 1) * (T_f + T_b) per iteration for equal fwd/bwd times.
    per_mb_fwd = MODEL.total_forward_time / STAGES / MICRO_BATCHES
    per_mb_bwd = MODEL.total_backward_time / STAGES / MICRO_BATCHES
    ideal = (MICRO_BATCHES + STAGES - 1) * (per_mb_fwd + per_mb_bwd)
    assert trace.end_time == pytest.approx(ideal, rel=0.01)

    # Idle fraction over the whole iteration equals the bubble fraction.
    analytic = pipeline_bubble_fraction(STAGES, MICRO_BATCHES)
    idleness = gpu_idleness(trace, horizon=trace.end_time)
    measured = 1.0 - idleness.total_busy / (STAGES * trace.end_time)
    assert measured == pytest.approx(analytic, rel=0.02)

    art = render_device_timeline(trace, width=64)
    table = format_table(
        ["quantity", "analytic", "measured"],
        [
            ["bubble fraction", analytic, measured],
            ["iteration makespan", ideal, trace.end_time],
        ],
        title="Fig. 1a: GPipe 4x4 timeline",
    )
    report("E3_fig1_pp_timeline", table + "\n\n" + art)


def test_fig1_bubble_scaling(benchmark, report):
    """Bubble fraction across micro-batch counts tracks (p-1)/(m+p-1)."""

    def sweep():
        rows = []
        for micro_batches in (2, 4, 8, 16):
            job = build_pp_gpipe(
                "j", MODEL, [f"h{i}" for i in range(STAGES)], micro_batches
            )
            engine = Engine(linear_chain(STAGES, 1e9), EchelonMaddScheduler())
            job.submit_to(engine)
            trace = engine.run()
            idleness = gpu_idleness(trace, horizon=trace.end_time)
            measured = 1.0 - idleness.total_busy / (STAGES * trace.end_time)
            rows.append(
                [
                    micro_batches,
                    pipeline_bubble_fraction(STAGES, micro_batches),
                    measured,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for micro_batches, analytic, measured in rows:
        assert measured == pytest.approx(analytic, rel=0.05)
    report(
        "E3b_fig1_bubble_scaling",
        format_table(
            ["micro-batches", "analytic bubble", "measured idle"],
            rows,
            title="GPipe bubble fraction vs micro-batch count (p=4)",
        ),
    )
