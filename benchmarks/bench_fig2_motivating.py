"""E1 -- Fig. 2: the motivating example.

Three micro-batch forward transfers of 2B bytes over a B-bandwidth link,
released at t = 0, 1, 2; the consumer computes each micro-batch for 2 time
units in order. The paper reports computation finish times for (a) fair
sharing, (b) Coflow scheduling, and (c) EchelonFlow scheduling, with
EchelonFlow optimal at 8 and Coflow *worse than fair sharing*.

Our reproduction: echelon = 8 exactly; fair = 9.5; coflow = 12 (online
SEBF+MADD). The paper's figure-extraction ambiguity is documented in
DESIGN.md; the ordering echelon < fair < coflow is the claim under test.
"""

import pytest

from repro.analysis import comp_finish_time, format_table
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    PipelineStageSpec,
    ShortestFlowFirstScheduler,
    single_link_pipeline_optimum,
)
from repro.simulator import Engine
from repro.topology import two_hosts
from repro.workloads import build_pipeline_segment

RELEASES = [0.0, 1.0, 2.0]
SIZES = [2.0, 2.0, 2.0]
COMPUTES = [2.0, 2.0, 2.0]

SCHEDULERS = [
    ("fair", FairSharingScheduler),
    ("sjf", ShortestFlowFirstScheduler),
    ("coflow", CoflowMaddScheduler),
    ("echelon", EchelonMaddScheduler),
]


def _run_once(scheduler_cls):
    job = build_pipeline_segment("fig2", "h0", "h1", RELEASES, SIZES, COMPUTES)
    engine = Engine(two_hosts(1.0), scheduler_cls())
    job.submit_to(engine)
    trace = engine.run()
    return comp_finish_time(trace)


@pytest.mark.parametrize("name,scheduler_cls", SCHEDULERS)
def test_fig2_scheduler(benchmark, name, scheduler_cls):
    result = benchmark(_run_once, scheduler_cls)
    assert result > 0


def test_fig2_table(benchmark, report):
    stages = [
        PipelineStageSpec(release_time=r, flow_size=s, compute_time=c)
        for r, s, c in zip(RELEASES, SIZES, COMPUTES)
    ]
    optimum, _, _ = single_link_pipeline_optimum(stages, 1.0)

    def sweep():
        return {name: _run_once(cls) for name, cls in SCHEDULERS}

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, _cls in SCHEDULERS:
        value = measured[name]
        rows.append([name, value, value / optimum])
    rows.append(["oracle-optimum", optimum, 1.0])
    report(
        "E1_fig2_motivating",
        format_table(
            ["scheduler", "comp finish time", "vs optimum"],
            rows,
            title="Fig. 2 motivating example (paper: echelon=8, coflow worst)",
        ),
    )
    # The paper's claims:
    assert measured["echelon"] == pytest.approx(8.0)  # exact paper value
    assert measured["echelon"] == pytest.approx(optimum)  # optimal (2c)
    assert measured["echelon"] < measured["fair"]  # 2c beats 2a
    assert measured["fair"] < measured["coflow"]  # 2b worse than 2a
