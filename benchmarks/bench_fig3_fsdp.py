"""E5 -- Fig. 3 / Eq. 7: FSDP under the EchelonFlow abstraction.

The all-gather Coflows of one iteration form an EchelonFlow whose ideal
finish times ramp by T_fwd / T_bwd (Eq. 7). We reproduce:

* scheduler comparison -- echelon < fair < coflow on iteration time
  ("staggered Coflow finish time", Table 1 row 5);
* the Eq.-7 constant-distance arrangement vs the exact profiled table
  (they coincide for homogeneous transformer stacks);
* a prefetch-depth sweep: deeper prefetch widens the concurrent-allgather
  window, which grows Coflow's penalty but not EchelonFlow's.
"""

import pytest

from repro.analysis import comp_finish_time, format_table
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    ShortestFlowFirstScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import build_fsdp, uniform_model

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)
HOSTS = ["h0", "h1", "h2", "h3"]


def _run(scheduler, prefetch_limit=2, exact_arrangement=False):
    job = build_fsdp(
        "fsdp",
        MODEL,
        HOSTS,
        prefetch_limit=prefetch_limit,
        exact_arrangement=exact_arrangement,
    )
    engine = Engine(big_switch(4, gbps(10)), scheduler)
    job.submit_to(engine)
    return comp_finish_time(engine.run())


def test_fsdp_echelon(benchmark):
    assert benchmark(_run, EchelonMaddScheduler()) > 0


def test_fig3_scheduler_comparison(benchmark, report):
    def sweep():
        return {
            "fair": _run(FairSharingScheduler()),
            "sjf": _run(ShortestFlowFirstScheduler()),
            "coflow": _run(CoflowMaddScheduler()),
            "echelon (Eq.7)": _run(EchelonMaddScheduler()),
            "echelon (exact table)": _run(
                EchelonMaddScheduler(), exact_arrangement=True
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E5_fig3_fsdp",
        format_table(
            ["scheduler", "comp finish time", "vs echelon"],
            [
                [name, value, value / results["echelon (Eq.7)"]]
                for name, value in results.items()
            ],
            title="Fig. 3 / Eq. 7: FSDP iteration under each scheduler",
        ),
    )
    assert results["echelon (Eq.7)"] < results["fair"]
    assert results["fair"] < results["coflow"]
    # Homogeneous layers: Eq. 7's constant distances equal the exact table.
    assert results["echelon (exact table)"] == pytest.approx(
        results["echelon (Eq.7)"], rel=0.02
    )


def test_fig3_prefetch_sweep(benchmark, report):
    def sweep():
        rows = []
        for prefetch in (1, 2, 4):
            coflow = _run(CoflowMaddScheduler(), prefetch_limit=prefetch)
            echelon = _run(EchelonMaddScheduler(), prefetch_limit=prefetch)
            rows.append([prefetch, coflow, echelon, coflow / echelon])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E5b_fsdp_prefetch",
        format_table(
            ["prefetch depth", "coflow", "echelon", "coflow/echelon"],
            rows,
            title="FSDP: prefetch depth vs Coflow penalty",
        ),
    )
    # Echelon never loses to Coflow at any prefetch depth.
    for _prefetch, coflow, echelon, _ratio in rows:
        assert echelon <= coflow + 1e-9
