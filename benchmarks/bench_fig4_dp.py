"""E6 -- Fig. 4 / Eq. 5: Data Parallelism is Coflow-compliant.

Both DP architectures (ring all-reduce and parameter server) group their
gradient-synchronization flows into Coflows whose completion gates the next
step, so EchelonFlow scheduling must match Coflow scheduling exactly
(Property 2 at paradigm level). A bucket-size sweep additionally shows the
communication/computation overlap that bucketing buys -- the reason DP jobs
still care about cross-job scheduling.
"""

import pytest

from repro.analysis import comp_finish_time, format_table, job_completion_time
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import build_dp_allreduce, build_dp_ps, uniform_model

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)
WORKERS = ["h0", "h1", "h2", "h3"]


def _run_allreduce(scheduler, bucket_bytes=megabytes(80)):
    job = build_dp_allreduce("dp", MODEL, WORKERS, bucket_bytes=bucket_bytes)
    engine = Engine(big_switch(4, gbps(10)), scheduler)
    job.submit_to(engine)
    return comp_finish_time(engine.run())


def _run_ps(scheduler, bucket_bytes=megabytes(80)):
    job = build_dp_ps("dp", MODEL, WORKERS, "h4", bucket_bytes=bucket_bytes)
    engine = Engine(big_switch(5, gbps(10)), scheduler)
    job.submit_to(engine)
    return comp_finish_time(engine.run())


def test_dp_allreduce_echelon(benchmark):
    assert benchmark(_run_allreduce, EchelonMaddScheduler()) > 0


def test_dp_ps_echelon(benchmark):
    assert benchmark(_run_ps, EchelonMaddScheduler()) > 0


def test_fig4_compliance(benchmark, report):
    def sweep():
        rows = []
        for label, runner in (("DP-AllReduce", _run_allreduce), ("DP-PS", _run_ps)):
            fair = runner(FairSharingScheduler())
            coflow = runner(CoflowMaddScheduler())
            echelon = runner(EchelonMaddScheduler())
            rows.append([label, fair, coflow, echelon])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for _label, _fair, coflow, echelon in rows:
        assert echelon == pytest.approx(coflow, rel=1e-9)
    report(
        "E6_fig4_dp",
        format_table(
            ["architecture", "fair", "coflow", "echelon"],
            rows,
            title="Fig. 4 / Eq. 5: DP gradient sync is Coflow-compliant",
        ),
    )


def test_fig4_bucket_size_sweep(benchmark, report):
    """Bucketing overlap: measured on full job completion (the trailing
    gradient synchronization is the whole point of bucketing)."""

    def run_bucket(bucket_mb):
        job = build_dp_allreduce(
            "dp", MODEL, WORKERS, bucket_bytes=megabytes(bucket_mb)
        )
        engine = Engine(big_switch(4, gbps(10)), EchelonMaddScheduler())
        job.submit_to(engine)
        trace = engine.run()
        return job_completion_time(trace, "dp")

    def sweep():
        return [[bucket_mb, run_bucket(bucket_mb)] for bucket_mb in (40, 80, 160, 320)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E6b_dp_bucket_sweep",
        format_table(
            ["bucket (MB)", "job completion time"],
            rows,
            title="DP-AllReduce: gradient bucketing overlap",
        ),
    )
    # Smaller buckets start synchronizing earlier (more overlap with the
    # remaining backward computation): the whole-model single bucket is
    # the slowest configuration.
    times = [value for _mb, value in rows]
    assert times[0] < times[-1]
