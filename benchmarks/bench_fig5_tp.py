"""E7 -- Fig. 5 / Eq. 5: Tensor Parallelism is Coflow-compliant.

Megatron-style TP all-reduces activations after every layer's forward and
gradients after every layer's backward; each all-reduce barriers the next
layer, so its flows form a Coflow. EchelonFlow must match Coflow exactly;
a worker-count sweep shows the communication share growing with the TP
degree (the reason TP stays inside fast domains in practice).
"""

import pytest

from repro.analysis import comp_finish_time, format_table
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import build_tp_megatron, uniform_model

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)


def _run(scheduler, n_workers=4):
    workers = [f"h{i}" for i in range(n_workers)]
    job = build_tp_megatron("tp", MODEL, workers)
    engine = Engine(big_switch(n_workers, gbps(10)), scheduler)
    job.submit_to(engine)
    return comp_finish_time(engine.run())


def test_tp_echelon(benchmark):
    assert benchmark(_run, EchelonMaddScheduler()) > 0


def test_fig5_compliance(benchmark, report):
    def sweep():
        return {
            "fair": _run(FairSharingScheduler()),
            "coflow": _run(CoflowMaddScheduler()),
            "echelon": _run(EchelonMaddScheduler()),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert results["echelon"] == pytest.approx(results["coflow"], rel=1e-9)
    report(
        "E7_fig5_tp",
        format_table(
            ["scheduler", "comp finish time"],
            [[k, v] for k, v in results.items()],
            title="Fig. 5 / Eq. 5: TP per-layer all-reduces are Coflows",
        ),
    )


def test_fig5_worker_scaling(benchmark, report):
    def sweep():
        rows = []
        for n_workers in (2, 4, 8):
            value = _run(EchelonMaddScheduler(), n_workers=n_workers)
            compute_share = (
                (MODEL.total_forward_time + MODEL.total_backward_time) / n_workers
            ) / value
            rows.append([n_workers, value, compute_share])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E7b_tp_scaling",
        format_table(
            ["TP degree", "comp finish time", "compute share"],
            rows,
            title="TP: communication dominates as the degree grows",
        ),
    )
    shares = [share for _n, _v, share in rows]
    assert shares == sorted(shares, reverse=True)
