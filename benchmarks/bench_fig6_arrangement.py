"""E4 -- Fig. 6b: reference time, ideal finish times, and recalibration.

Two consecutive EchelonFlows H and H' between PP workers. In H' the later
flows start late (upstream delay), but their ideal finish times are still
derived from H''s own reference time -- giving them "opportunities to
transmit faster and catch up with the computation arrangement". We verify:

* ideal finish times follow d_j = r + j*T for each EchelonFlow's own r;
* a late flow's ideal finish time can precede its start time;
* under echelon scheduling the late flows actually catch up (tardiness
  shrinks back toward the head flow's).
"""

import pytest

from repro.analysis import format_table
from repro.scheduling import EchelonMaddScheduler
from repro.simulator import Engine
from repro.topology import two_hosts
from repro.workloads import build_pipeline_segment

DISTANCE = 2.0


def _run_two_echelonflows(delay):
    """H with releases 0,1,2; H' with its later releases delayed."""
    engine = Engine(two_hosts(2.0), EchelonMaddScheduler())
    job_h = build_pipeline_segment(
        "H", "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [DISTANCE] * 3
    )
    job_h.submit_to(engine, at_time=0.0)
    # H' starts after H's window; its flows f'1, f'2 release late.
    job_hp = build_pipeline_segment(
        "Hp",
        "h0",
        "h1",
        [0.0, 1.0 + delay, 2.0 + delay],
        [2.0] * 3,
        [DISTANCE] * 3,
    )
    job_hp.submit_to(engine, at_time=20.0)
    trace = engine.run()
    return trace, job_h, job_hp


def test_fig6_simulation(benchmark):
    trace, _h, _hp = benchmark(_run_two_echelonflows, 1.5)
    assert trace.end_time > 20.0


def test_fig6_recalibration(benchmark, report):
    delay = 1.5
    trace, job_h, job_hp = benchmark.pedantic(
        _run_two_echelonflows, args=(delay,), rounds=1, iterations=1
    )
    ef_h = job_h.echelonflows[0]
    ef_hp = job_hp.echelonflows[0]

    # Each EchelonFlow recalibrates on its own reference time.
    assert ef_h.reference_time == pytest.approx(0.0)
    assert ef_hp.reference_time == pytest.approx(20.0)

    rows = []
    late_ideal_precedes_start = False
    for ef, label in ((ef_h, "H"), (ef_hp, "H'")):
        for record in sorted(
            trace.flows_of_group(ef.ef_id), key=lambda r: r.flow.index_in_group
        ):
            j = record.flow.index_in_group
            ideal = ef.ideal_finish_time(j)
            assert ideal == pytest.approx(ef.reference_time + j * DISTANCE)
            if ideal < record.start:
                late_ideal_precedes_start = True
            rows.append(
                [
                    f"{label} f{j}",
                    record.start,
                    ideal,
                    record.finish,
                    record.finish - ideal,
                ]
            )
    # Fig. 6b's d'_1/d'_2 situation: ideal finish earlier than the start.
    assert late_ideal_precedes_start

    # Catch-up: H''s final tardiness stays bounded by the head's transfer
    # time plus the release delay that physics cannot hide (the link can
    # only absorb it while it would otherwise idle).
    hp_tardies = [
        r.finish - ef_hp.ideal_finish_time(r.flow.index_in_group)
        for r in trace.flows_of_group(ef_hp.ef_id)
    ]
    head_tardiness = hp_tardies[0]
    assert max(hp_tardies) <= head_tardiness + delay + 1e-9

    report(
        "E4_fig6_arrangement",
        format_table(
            ["flow", "start", "ideal finish d_j", "actual finish", "tardiness"],
            rows,
            title=f"Fig. 6b: two EchelonFlows, upstream delay {delay} on H'",
        ),
    )
