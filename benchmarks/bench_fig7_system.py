"""E11 -- Fig. 7 / Section 5: the EchelonFlow scheduling system.

Runs training jobs through the full control plane -- framework adapters
reporting EchelonFlows to per-job Agents, the cluster Coordinator computing
allocations, and WFQ priority-queue enforcement at the backends -- and
quantifies two things the sketch leaves open:

* **control-plane traffic**: requests registered and coordinator
  invocations per job (the algorithm "reruns per EchelonFlow
  arrival/departure");
* **enforcement fidelity**: how much the 8-queue quantization of Section 5
  costs versus ideal coordinator rates.
"""

import pytest

from repro.analysis import comp_finish_time, format_table
from repro.core.units import gbps, megabytes
from repro.system import run_cluster
from repro.topology import big_switch
from repro.workloads import build_dp_allreduce, build_fsdp, uniform_model

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)


def _jobs():
    return [
        (build_fsdp("fsdp-job", MODEL, ["h0", "h1", "h2", "h3"]), 0.0),
        (
            build_dp_allreduce(
                "dp-job", MODEL, ["h4", "h5", "h6", "h7"], bucket_bytes=megabytes(80)
            ),
            0.01,
        ),
    ]


def _run(enforce_with_queues, num_queues=8):
    return run_cluster(
        big_switch(8, gbps(10)),
        _jobs(),
        enforce_with_queues=enforce_with_queues,
        num_queues=num_queues,
    )


def test_system_stack(benchmark):
    run = benchmark(_run, False)
    assert run.trace.end_time > 0


def test_fig7_control_plane_and_enforcement(benchmark, report):
    def sweep():
        ideal = _run(False)
        rows = [["ideal rates (no quantization)", comp_finish_time(ideal.trace)]]
        for num_queues in (2, 4, 8, 16):
            enforced = _run(True, num_queues=num_queues)
            rows.append(
                [f"WFQ enforcement, {num_queues} queues",
                 comp_finish_time(enforced.trace)]
            )
        return ideal, rows

    ideal, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    coordinator = ideal.coordinator
    n_requests = len(coordinator.request_log)
    n_invocations = coordinator.invocations
    assert n_requests == sum(len(job.echelonflows) for job, _t in _jobs())
    assert n_invocations > 0

    ideal_finish = rows[0][1]
    eight_queue_finish = dict((label, v) for label, v in rows)[
        "WFQ enforcement, 8 queues"
    ]
    # Section 5's 8-queue enforcement should stay within 25% of ideal.
    assert eight_queue_finish <= 1.25 * ideal_finish
    # More queues -> closer to ideal.
    assert rows[-1][1] <= rows[1][1] + 1e-9

    control = format_table(
        ["control-plane quantity", "count"],
        [
            ["EchelonFlow requests registered", n_requests],
            ["coordinator invocations", n_invocations],
            ["bandwidth allocations issued", len(coordinator.allocation_log)],
        ],
        title="Fig. 7: control-plane traffic for a 2-job cluster",
    )
    enforcement = format_table(
        ["configuration", "comp finish time"],
        rows,
        title="Section 5: WFQ priority-queue enforcement fidelity",
    )
    report("E11_fig7_system", control + "\n\n" + enforcement)
