"""E16 -- GPU-shared training (Section 5 future work, extended).

"As performance isolation in GPU sharing advances, EchelonFlow may apply
to GPU-shared training in the future." We model MIG-style static
partitioning: two DP jobs co-resident on the same hosts, each on its own
isolated slice, sharing only the network. The bench measures whether
EchelonFlow scheduling keeps paying off when the *network* is the only
shared resource, and how much co-residency itself costs versus dedicated
hosts.
"""

import pytest

from repro.analysis import format_table, job_completion_time
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import build_dp_allreduce, build_fsdp, uniform_model

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(30),
    activation_bytes=megabytes(10),
    forward_time=0.004,
)
HOSTS = ["h0", "h1", "h2", "h3"]


def _run_shared(scheduler):
    """Two jobs on MIG halves of the same 4 hosts."""
    engine = Engine(big_switch(4, gbps(10)), scheduler, device_slots=2)
    job_a = build_fsdp("fsdp", MODEL, HOSTS)
    job_b = build_dp_allreduce("dp", MODEL, HOSTS, bucket_bytes=megabytes(60))
    job_a.submit_to(engine)
    job_b.submit_to(engine)
    trace = engine.run()
    return {
        "fsdp": job_completion_time(trace, "fsdp"),
        "dp": job_completion_time(trace, "dp"),
    }


def _run_dedicated(scheduler):
    """Same two jobs on disjoint host sets (8 hosts, same NIC speed)."""
    engine = Engine(big_switch(8, gbps(10)), scheduler)
    job_a = build_fsdp("fsdp", MODEL, ["h0", "h1", "h2", "h3"])
    job_b = build_dp_allreduce(
        "dp", MODEL, ["h4", "h5", "h6", "h7"], bucket_bytes=megabytes(60)
    )
    job_a.submit_to(engine)
    job_b.submit_to(engine)
    trace = engine.run()
    return {
        "fsdp": job_completion_time(trace, "fsdp"),
        "dp": job_completion_time(trace, "dp"),
    }


def test_shared_gpu_echelon(benchmark):
    jcts = benchmark(_run_shared, EchelonMaddScheduler())
    assert jcts["fsdp"] > 0 and jcts["dp"] > 0


def test_gpu_sharing_comparison(benchmark, report):
    def sweep():
        rows = []
        for name, cls in (
            ("fair", FairSharingScheduler),
            ("coflow", CoflowMaddScheduler),
            ("echelon", EchelonMaddScheduler),
        ):
            shared = _run_shared(cls())
            dedicated = _run_dedicated(cls())
            rows.append(
                [
                    name,
                    shared["fsdp"],
                    shared["dp"],
                    dedicated["fsdp"],
                    dedicated["dp"],
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E16_gpu_sharing",
        format_table(
            [
                "scheduler",
                "shared fsdp JCT",
                "shared dp JCT",
                "dedicated fsdp JCT",
                "dedicated dp JCT",
            ],
            rows,
            title="MIG-shared hosts (2 slices) vs dedicated hosts",
        ),
    )
    by_name = {row[0]: row for row in rows}
    # EchelonFlow still helps with shared GPUs: the FSDP job (the
    # arrangement-sensitive one) beats both baselines.
    assert by_name["echelon"][1] < by_name["fair"][1]
    assert by_name["echelon"][1] < by_name["coflow"][1]
    # Sharing the NIC costs the FSDP job versus dedicated hosts.
    assert by_name["echelon"][1] >= by_name["echelon"][3] - 1e-9
