"""E18 -- 3D hybrid parallelism: the MT-NLG-style workload (extended).

The paper's introduction motivates EchelonFlow with models like MT-NLG
530B, trained with TP x PP x DP simultaneously. One such job emits *both*
arrangement families at once -- Eq.-5 Coflows (TP activation syncs, DP
gradient syncs) and Eq.-6 staggered EchelonFlows (PP boundaries) -- which
is precisely the case where an abstraction keyed to a single flavour
falls short. The bench also stresses the ordering design choice: ranking
by *projected* tardiness lets the bulk DP all-reduce starve the staggered
gradient flows (measured 40% worse), while the default current-tardiness
ranking handles the mix.
"""

import pytest

from repro.analysis import format_table
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    SincroniaScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch, leaf_spine
from repro.workloads import build_hybrid_3d, grid_from_hosts, uniform_model

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)
HOSTS8 = [f"h{i}" for i in range(8)]


def _run(scheduler, topology=None):
    grid = grid_from_hosts(HOSTS8, dp=2, pp=2, tp=2)
    job = build_hybrid_3d("mtnlg", MODEL, grid, num_micro_batches=4)
    engine = Engine(topology or big_switch(8, gbps(10)), scheduler)
    job.submit_to(engine)
    return engine.run().end_time


def test_hybrid3d_echelon(benchmark):
    assert benchmark(_run, EchelonMaddScheduler()) > 0


def test_hybrid3d_scheduler_comparison(benchmark, report):
    def sweep():
        return {
            "fair": _run(FairSharingScheduler()),
            "coflow": _run(CoflowMaddScheduler()),
            "sincronia": _run(SincroniaScheduler()),
            "echelon": _run(EchelonMaddScheduler()),
            "echelon (projected ordering)": _run(
                EchelonMaddScheduler(ordering="projected")
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E18_hybrid3d",
        format_table(
            ["scheduler", "iteration time"],
            [[name, value] for name, value in results.items()],
            title="TP(2) x PP(2) x DP(2) hybrid job (mixed arrangement families)",
        ),
    )
    # The default handles the mixed-arrangement job at least as well as
    # every baseline ...
    assert results["echelon"] <= min(
        results["fair"], results["coflow"], results["sincronia"]
    ) * 1.001
    # ... while the projected-ordering variant demonstrably mis-ranks the
    # bulk DP all-reduce over the staggered PP flows.
    assert results["echelon (projected ordering)"] > results["echelon"] * 1.1


def test_hybrid3d_oversubscribed(benchmark, report):
    """Same job on a 2:1 oversubscribed leaf-spine: cross-leaf DP rings
    and PP boundaries now contend in the core."""

    def topo():
        return leaf_spine(
            n_leaves=2, hosts_per_leaf=4, host_bandwidth=gbps(10),
            oversubscription=2.0,
        )

    def sweep():
        return {
            "fair": _run(FairSharingScheduler(), topo()),
            "coflow": _run(CoflowMaddScheduler(), topo()),
            "echelon": _run(EchelonMaddScheduler(), topo()),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E18b_hybrid3d_oversubscribed",
        format_table(
            ["scheduler", "iteration time"],
            [[name, value] for name, value in results.items()],
            title="Hybrid 3D job on a 2:1 oversubscribed leaf-spine",
        ),
    )
    # Single-job on a congested core: the schedulers converge (within 1%);
    # nothing beats echelon materially.
    assert results["echelon"] <= min(results.values()) * 1.01
