#!/usr/bin/env python
"""E25 -- link failure and degradation: chaos-layer pass-through.

A mid-run capacity fault is the harshest version of the Fig. 6b
recalibration story: the arrangement keeps claiming nominal bandwidth
while a link on the pipeline's backbone drops to ``factor`` x capacity.
We sweep failure time x degradation factor on the PP workload and
compare schedulers on completion and on how much of the bandwidth loss
each passes through to the job (completion ratio vs. the ``1/factor``
worst case where the whole run is bottlenecked on the degraded link).

Runs both ways:

* under pytest-benchmark (the ``test_*`` functions; writes
  ``benchmarks/results/E25_link_failure.txt``), and
* standalone::

      PYTHONPATH=src python benchmarks/bench_link_failure.py          # sweep
      PYTHONPATH=src python benchmarks/bench_link_failure.py --smoke  # CI guard

``--smoke`` replays two sweep cells and checks the *simulated*
degraded/nominal completion ratios -- fully deterministic, no wall-clock
-- against the checked-in baseline
(``benchmarks/results/bench_link_failure_baseline.json``), plus the
schedule-quality invariants (echelon <= fair, pass-through <= 1/factor).
Exit code 1 on regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import comp_finish_time, format_table
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import linear_chain
from repro.workloads import build_pp_gpipe, uniform_model

RESULTS_DIR = ROOT / "benchmarks" / "results"
BASELINE_PATH = RESULTS_DIR / "bench_link_failure_baseline.json"

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)
HOSTS = ["h0", "h1", "h2", "h3"]
BANDWIDTH = gbps(3)  # the contended regime where scheduling matters
#: The degraded link: the pipeline's middle segment, crossed by both
#: activations and gradients.
FAULT_LINK = "h1-h2"
FAILURE_TIMES = (0.05, 0.2, 0.4)
FACTORS = (0.75, 0.5, 0.25)
#: Pass-through guard: completion ratio must stay under the bottleneck
#: worst case 1/factor (plus float slack).
PASS_THROUGH_SLACK = 0.05
#: --smoke: allowed relative drift of a degraded/nominal completion
#: ratio from the checked-in baseline. Simulated ratios are
#: deterministic, so drift means the chaos layer or a scheduler changed
#: behaviour; the tolerance leaves room for intentional algorithm tuning
#: without letting pass-through regressions slip by.
SMOKE_TOLERANCE = 0.10

_SCHEDULERS = {
    "fair": FairSharingScheduler,
    "coflow": CoflowMaddScheduler,
    "echelon": EchelonMaddScheduler,
}


def _run(scheduler_name: str, at_time=None, factor: float = 1.0) -> float:
    """Completion time of the PP job, optionally under a degradation."""
    faults = None
    if at_time is not None and factor < 1.0:
        faults = f"degrade:{FAULT_LINK}@{at_time},factor={factor}"
    engine = Engine(
        linear_chain(4, BANDWIDTH),
        _SCHEDULERS[scheduler_name](),
        # Bare hot path: no sanitizer rides along, REPRO_CHECK or not.
        sanitizer=False,
        faults=faults,
    )
    build_pp_gpipe("pp", MODEL, HOSTS, num_micro_batches=8).submit_to(engine)
    return comp_finish_time(engine.run())


def sweep_rows():
    rows = []
    nominal = {name: _run(name) for name in _SCHEDULERS}
    for at_time in FAILURE_TIMES:
        for factor in FACTORS:
            measured = {
                name: _run(name, at_time, factor) for name in _SCHEDULERS
            }
            rows.append(
                [
                    at_time,
                    factor,
                    measured["fair"],
                    measured["coflow"],
                    measured["echelon"],
                    round(measured["echelon"] / nominal["echelon"], 3),
                ]
            )
    return nominal, rows


def check_rows(nominal, rows) -> list:
    """The schedule-quality invariants every sweep cell must satisfy."""
    problems = []
    for at_time, factor, fair, coflow, echelon, _ratio in rows:
        cell = f"t={at_time} factor={factor}"
        if echelon > fair + 1e-9 or echelon > coflow + 1e-9:
            problems.append(
                f"{cell}: echelon ({echelon:.4f}) lost to fair/coflow "
                f"({fair:.4f}/{coflow:.4f})"
            )
        for name, value in (("fair", fair), ("coflow", coflow),
                            ("echelon", echelon)):
            bound = 1.0 / factor + PASS_THROUGH_SLACK
            if value / nominal[name] > bound:
                problems.append(
                    f"{cell}: {name} pass-through "
                    f"{value / nominal[name]:.3f} exceeds 1/factor bound "
                    f"{bound:.3f}"
                )
            if value + 1e-9 < nominal[name]:
                problems.append(
                    f"{cell}: {name} finished faster degraded "
                    f"({value:.4f}) than nominal ({nominal[name]:.4f})"
                )
    return problems


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------


def test_link_failure_echelon(benchmark):
    assert benchmark(_run, "echelon", 0.05, 0.5) > 0


def test_link_failure_sweep(benchmark, report):
    def run_sweep():
        return sweep_rows()

    nominal, rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E25_link_failure",
        format_table(
            ["failure time", "factor", "fair", "coflow", "echelon",
             "echelon slowdown"],
            rows,
            title=(
                f"PP with {FAULT_LINK} degraded mid-run "
                f"(nominal: fair {nominal['fair']:.4f}, coflow "
                f"{nominal['coflow']:.4f}, echelon {nominal['echelon']:.4f})"
            ),
        ),
    )
    problems = check_rows(nominal, rows)
    assert not problems, "\n".join(problems)


# ----------------------------------------------------------------------
# standalone main (--smoke is the CI guard)
# ----------------------------------------------------------------------

SMOKE_CELLS = ((0.05, 0.5), (0.05, 0.25))
SMOKE_SCHEDULERS = ("fair", "echelon")


def _smoke_ratios() -> dict:
    ratios = {}
    for name in SMOKE_SCHEDULERS:
        nominal = _run(name)
        for at_time, factor in SMOKE_CELLS:
            degraded = _run(name, at_time, factor)
            ratios[f"{name}@t{at_time}xf{factor}"] = round(
                degraded / nominal, 6
            )
    return ratios


def smoke() -> int:
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except FileNotFoundError:
        print(
            f"[bench_link_failure] missing baseline {BASELINE_PATH}",
            file=sys.stderr,
        )
        return 1
    nominal, rows = sweep_rows()
    problems = check_rows(nominal, rows)
    ratios = _smoke_ratios()
    for key, ratio in sorted(ratios.items()):
        want = baseline["ratios"].get(key)
        if want is None:
            problems.append(f"baseline lacks ratio {key!r}")
            continue
        drift = abs(ratio - want) / want
        marker = "ok" if drift <= SMOKE_TOLERANCE else "REGRESSION"
        print(
            f"[bench_link_failure] {key}: ratio {ratio:.4f} "
            f"baseline {want:.4f} drift {drift:.1%} {marker}"
        )
        if drift > SMOKE_TOLERANCE:
            problems.append(
                f"{key}: pass-through ratio {ratio:.4f} drifted "
                f"{drift:.1%} from baseline {want:.4f} "
                f"(allowed {SMOKE_TOLERANCE:.0%})"
            )
    if problems:
        print(
            "[bench_link_failure] smoke FAILED:\n  " + "\n  ".join(problems),
            file=sys.stderr,
        )
        return 1
    print("[bench_link_failure] smoke passed")
    return 0


def regen_baseline(path: Path) -> int:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "benchmark": "bench_link_failure",
                "scenario": {
                    "topology": "linear_chain(4)",
                    "bandwidth": BANDWIDTH,
                    "fault_link": FAULT_LINK,
                    "cells": [list(c) for c in SMOKE_CELLS],
                },
                "ratios": _smoke_ratios(),
            },
            indent=2,
        )
        + "\n"
    )
    print(f"[bench_link_failure] baseline written to {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="deterministic regression guard against the checked-in baseline",
    )
    parser.add_argument(
        "--regen-baseline",
        action="store_true",
        help=f"rewrite {BASELINE_PATH.name} from the current code",
    )
    args = parser.parse_args(argv)
    if args.regen_baseline:
        return regen_baseline(BASELINE_PATH)
    if args.smoke:
        return smoke()
    nominal, rows = sweep_rows()
    print(
        format_table(
            ["failure time", "factor", "fair", "coflow", "echelon",
             "echelon slowdown"],
            rows,
            title=(
                f"PP with {FAULT_LINK} degraded mid-run "
                f"(nominal: fair {nominal['fair']:.4f}, coflow "
                f"{nominal['coflow']:.4f}, echelon {nominal['echelon']:.4f})"
            ),
        )
    )
    problems = check_rows(nominal, rows)
    if problems:
        print(
            "[bench_link_failure] invariants FAILED:\n  "
            + "\n  ".join(problems),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
