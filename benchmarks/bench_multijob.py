"""E12 -- Eq. 4: multi-job scheduling on a shared fabric.

The global objective is the sum of EchelonFlow tardiness across jobs.
Mixed paradigms (PP + FSDP + DP) share an oversubscribed leaf-spine fabric;
we report per-scheduler sum-tardiness and average job completion time, and
ablate the inter-EchelonFlow ordering policy (design choice #2 in
DESIGN.md) plus the work-conserving backfill (design choice #4).
"""

import pytest

from repro.analysis import format_table, job_completion_time, tardiness_report
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    ShortestFlowFirstScheduler,
)
from repro.simulator import Engine
from repro.topology import leaf_spine
from repro.workloads import (
    build_dp_allreduce,
    build_fsdp,
    build_pp_gpipe,
    uniform_model,
)

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(30),
    activation_bytes=megabytes(15),
    forward_time=0.004,
)


def _topology():
    # 4 leaves x 4 hosts, 2:1 oversubscribed core: cross-leaf contention.
    return leaf_spine(
        n_leaves=4, hosts_per_leaf=4, host_bandwidth=gbps(10), oversubscription=2.0
    )


def _jobs():
    # Placements deliberately cross leaves so jobs contend in the core.
    return [
        build_pp_gpipe(
            "pp", MODEL, ["h0", "h4", "h8", "h12"], num_micro_batches=4
        ),
        build_fsdp("fsdp", MODEL, ["h1", "h5", "h9", "h13"]),
        build_dp_allreduce(
            "dp", MODEL, ["h2", "h6", "h10", "h14"], bucket_bytes=megabytes(60)
        ),
    ]


def _run(scheduler):
    engine = Engine(_topology(), scheduler)
    jobs = _jobs()
    for job in jobs:
        job.submit_to(engine)
    trace = engine.run()
    efs = [ef for job in jobs for ef in job.echelonflows]
    tardiness = tardiness_report(trace, efs)
    jcts = [job_completion_time(trace, job.job_id) for job in jobs]
    return tardiness.total, sum(jcts) / len(jcts), max(jcts)


def test_multijob_echelon(benchmark):
    total, _mean_jct, _max_jct = benchmark(_run, EchelonMaddScheduler())
    assert total == total  # finite


def test_multijob_scheduler_comparison(benchmark, report):
    schedulers = [
        ("fair", FairSharingScheduler()),
        ("sjf", ShortestFlowFirstScheduler()),
        ("coflow", CoflowMaddScheduler()),
        ("echelon", EchelonMaddScheduler()),
        ("echelon-protective", EchelonMaddScheduler(ordering="tardiness")),
    ]

    def sweep():
        return {name: _run(sched) for name, sched in schedulers}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name, total, mean_jct, max_jct]
        for name, (total, mean_jct, max_jct) in results.items()
    ]
    note = (
        "Notes: (1) sum tardiness counts every EchelonFlow against deadlines\n"
        "that are structurally tight (d_0 = r leaves no time for the head\n"
        "flow's own transfer), so SJF-flavoured baselines can undercut the\n"
        "adapted-MADD heuristic on the raw sum. (2) The two echelon rows span\n"
        "the efficiency/protection tradeoff: the default two-level hybrid\n"
        "ordering minimizes mean JCT and tenant slowdowns (see E23), while\n"
        "the most-behind-first variant maximally protects the slowest\n"
        "tenant at a convoy cost to small ones. See EXPERIMENTS.md / E12."
    )
    report(
        "E12_multijob",
        format_table(
            ["scheduler", "sum tardiness (Eq. 4)", "mean JCT", "max JCT"],
            rows,
            title="Multi-job cluster: 3 mixed-paradigm jobs, 2:1 oversubscribed",
        )
        + "\n\n"
        + note,
    )
    mean_jcts = {name: m for name, (_t, m, _x) in results.items()}
    max_jcts = {name: x for name, (_t, _m, x) in results.items()}
    # The default delivers the best mean job completion ...
    assert mean_jcts["echelon"] <= min(mean_jcts.values()) * 1.02
    # ... and the protective variant the best max JCT -- no baseline
    # dominates the echelon family on either axis.
    assert max_jcts["echelon-protective"] <= min(max_jcts.values()) * 1.02


def test_multijob_obs_metrics(results_dir):
    """Emit the obs-layer metrics report for the echelon run: invocation
    counts by trigger cause, per-link utilization on the oversubscribed
    core, and per-EchelonFlow tardiness -- diffable across PRs."""
    import json

    from repro.obs import Instrumentation, ProfiledScheduler, build_metrics_report

    obs = Instrumentation()
    scheduler = ProfiledScheduler(EchelonMaddScheduler(), registry=obs.registry)
    engine = Engine(_topology(), scheduler, instrumentation=obs)
    jobs = _jobs()
    for job in jobs:
        job.submit_to(engine)
    trace = engine.run()
    metrics = build_metrics_report(trace, instrumentation=obs, profiler=scheduler)
    path = results_dir / "E12_multijob_metrics.json"
    path.write_text(json.dumps(metrics, indent=2, sort_keys=True, default=str) + "\n")
    assert metrics["scheduler"]["invocations"] > 0
    assert metrics["scheduler"]["by_cause"]
    assert metrics["links"]
    assert metrics["echelonflows"]


def test_multijob_ordering_ablation(benchmark, report):
    def sweep():
        rows = []
        for ordering in (
            "tardiness",
            "projected",
            "hybrid",
            "tardiness-asc",
            "sebf",
            "fifo",
        ):
            total, mean_jct, max_jct = _run(EchelonMaddScheduler(ordering=ordering))
            rows.append([ordering, total, mean_jct, max_jct])
        for backfill in (True, False):
            total, mean_jct, max_jct = _run(EchelonMaddScheduler(backfill=backfill))
            rows.append([f"backfill={backfill}", total, mean_jct, max_jct])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E12b_ordering_ablation",
        format_table(
            ["policy", "sum tardiness", "mean JCT", "max JCT"],
            rows,
            title="Ablation: inter-EchelonFlow ordering and backfill",
        ),
    )
    mean_jct_by_policy = {row[0]: row[2] for row in rows}
    total_by_policy = {row[0]: row[1] for row in rows}
    # The default two-level policy beats both single-direction extremes on
    # job completion and beats global most-behind-first on the Eq.-4 sum.
    assert mean_jct_by_policy["hybrid"] <= mean_jct_by_policy["tardiness"] + 1e-6
    assert total_by_policy["hybrid"] <= total_by_policy["tardiness"] + 1e-6
    # Work conservation should never hurt mean completion.
    assert mean_jct_by_policy["backfill=True"] <= (
        mean_jct_by_policy["backfill=False"] + 1e-6
    )
