"""E24 -- interleaved virtual stages: the PP variant sweep (extended).

The paper notes later PP implementations reorder computation to shave the
bubble; Megatron-LM's interleaved schedule splits each worker's stage
into ``v`` virtual chunks. This bench sweeps ``v`` on both a fast and a
contended network: interleaving buys bubble on fast networks but
multiplies boundary traffic, so under contention the tradeoff *reverses*
-- deeper interleaving loses once the network is the bottleneck, at every
scheduler. Choosing the interleaving depth is a network decision.
"""

import pytest

from repro.analysis import comp_finish_time, format_table, gpu_idleness
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import build_pp_interleaved, uniform_model

MODEL = uniform_model(
    "u16",
    16,
    param_bytes_per_layer=megabytes(20),
    activation_bytes=megabytes(20),
    forward_time=0.002,
)
HOSTS = ["h0", "h1", "h2", "h3"]
MICRO_BATCHES = 8


def _run(virtual_stages, bandwidth, scheduler):
    job = build_pp_interleaved(
        "pp", MODEL, HOSTS, MICRO_BATCHES, virtual_stages=virtual_stages
    )
    engine = Engine(big_switch(4, bandwidth), scheduler)
    job.submit_to(engine)
    trace = engine.run()
    report = gpu_idleness(trace, horizon=trace.end_time)
    idle = 1.0 - report.total_busy / (len(HOSTS) * trace.end_time)
    return comp_finish_time(trace), idle


def test_interleaved_echelon(benchmark):
    finish, _idle = benchmark(_run, 2, gbps(3), EchelonMaddScheduler())
    assert finish > 0


def test_virtual_stage_sweep(benchmark, report):
    def sweep():
        rows = []
        for v in (1, 2, 4):
            fast, fast_idle = _run(v, gbps(10000), FairSharingScheduler())
            fair, _ = _run(v, gbps(3), FairSharingScheduler())
            coflow, _ = _run(v, gbps(3), CoflowMaddScheduler())
            echelon, _ = _run(v, gbps(3), EchelonMaddScheduler())
            rows.append([v, fast, fast_idle, fair, coflow, echelon])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E24_pp_interleaved",
        format_table(
            [
                "virtual stages",
                "fast-net iter time",
                "fast-net idle share",
                "3Gbps fair",
                "3Gbps coflow",
                "3Gbps echelon",
            ],
            rows,
            title="Interleaved PP: bubble vs boundary-traffic tradeoff",
        ),
    )
    # Fast network: interleaving monotonically shrinks bubble & makespan.
    fast_times = [row[1] for row in rows]
    idles = [row[2] for row in rows]
    assert fast_times == sorted(fast_times, reverse=True)
    assert idles == sorted(idles, reverse=True)
    # Contended network: at every interleaving depth echelon is the best
    # scheduler and coflow the worst ...
    for _v, _fast, _idle, fair, coflow, echelon in rows:
        assert echelon < fair < coflow
    # ... but the tradeoff flips direction: the v-fold boundary traffic
    # outweighs the bubble savings once the network is the bottleneck, so
    # deeper interleaving *hurts* at 3 Gbps. Picking v is a network
    # question, not just a compute one -- which is the point.
    echelon_times = [row[5] for row in rows]
    assert echelon_times == sorted(echelon_times)