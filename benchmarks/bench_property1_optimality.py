"""E8 -- Property 1: EchelonFlow scheduling minimizes completion times.

Exact optimality is certified where an oracle exists (the single-link
pipeline of Fig. 2); for full paradigms we certify near-optimality against
the paradigm-agnostic lower bounds (device work, critical path, link work).
The interesting number is the ratio measured/bound: 1.0 means provably
optimal, and anything close means little is left on the table.
"""

import random

import pytest

from repro.analysis import comp_finish_time, format_table
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    EchelonMaddScheduler,
    PipelineStageSpec,
    makespan_lower_bounds,
    single_link_pipeline_optimum,
)
from repro.simulator import Engine
from repro.topology import big_switch, linear_chain, two_hosts
from repro.workloads import (
    build_dp_allreduce,
    build_fsdp,
    build_pp_gpipe,
    build_pipeline_segment,
    build_tp_megatron,
    uniform_model,
)

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)
HOSTS = ["h0", "h1", "h2", "h3"]


def test_pipeline_segments_match_oracle(benchmark, report):
    """Random single-link pipelines: echelon == optimum on every one."""
    rng = random.Random(2022)

    def sweep():
        rows = []
        for trial in range(12):
            count = rng.randint(2, 6)
            releases, t = [], 0.0
            for _ in range(count):
                releases.append(t)
                t += rng.uniform(0.0, 2.0)
            size = rng.uniform(0.5, 4.0)
            compute = rng.uniform(0.5, 3.0)
            sizes = [size] * count
            computes = [compute] * count
            stages = [
                PipelineStageSpec(r, s, c)
                for r, s, c in zip(releases, sizes, computes)
            ]
            optimum, _, _ = single_link_pipeline_optimum(stages, 1.0)
            job = build_pipeline_segment(
                f"seg{trial}", "h0", "h1", releases, sizes, computes
            )
            engine = Engine(two_hosts(1.0), EchelonMaddScheduler())
            job.submit_to(engine)
            measured = comp_finish_time(engine.run())
            rows.append([trial, count, optimum, measured, measured / optimum])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for _trial, _count, optimum, measured, _ratio in rows:
        assert measured == pytest.approx(optimum, rel=1e-6)
    report(
        "E8_property1_segments",
        format_table(
            ["trial", "micro-batches", "oracle optimum", "echelon", "ratio"],
            rows,
            title="Property 1: echelon == oracle on single-link pipelines",
        ),
    )


def test_paradigms_near_lower_bounds(benchmark, report):
    cases = {
        "DP-AllReduce": (
            lambda: build_dp_allreduce("j", MODEL, HOSTS, bucket_bytes=megabytes(80)),
            lambda: big_switch(4, gbps(10)),
        ),
        "PP-GPipe": (
            lambda: build_pp_gpipe("j", MODEL, HOSTS, num_micro_batches=8),
            lambda: linear_chain(4, gbps(10)),
        ),
        "TP": (
            lambda: build_tp_megatron("j", MODEL, HOSTS),
            lambda: big_switch(4, gbps(10)),
        ),
        "FSDP": (
            lambda: build_fsdp("j", MODEL, HOSTS),
            lambda: big_switch(4, gbps(10)),
        ),
    }

    def sweep():
        rows = []
        for label, (build_job, build_topo) in cases.items():
            job = build_job()
            topo = build_topo()
            bounds = makespan_lower_bounds(job.dag, topo)
            engine = Engine(topo, EchelonMaddScheduler())
            job.submit_to(engine)
            trace = engine.run()
            measured = trace.end_time
            rows.append(
                [
                    label,
                    bounds.device_work,
                    bounds.critical_path,
                    bounds.link_work,
                    measured,
                    measured / bounds.best,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for label, _dw, _cp, _lw, measured, ratio in rows:
        assert ratio >= 1.0 - 1e-9, label
        assert ratio <= 2.0, f"{label} leaves too much on the table ({ratio:.2f}x)"
    report(
        "E8b_property1_bounds",
        format_table(
            [
                "paradigm",
                "device-work LB",
                "critical-path LB",
                "link-work LB",
                "echelon makespan",
                "vs best LB",
            ],
            rows,
            title="Property 1: echelon vs makespan lower bounds",
        ),
    )
