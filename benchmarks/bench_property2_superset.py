"""E9 -- Property 2: EchelonFlow is a superset of Coflow.

Three levels of evidence:

1. **Allocation identity**: on an Eq.-5 (Coflow) arrangement the echelon
   scheduler computes byte-for-byte the MADD rates Varys would.
2. **CCT identity**: single Coflows complete at exactly ``Gamma`` under
   both schedulers, across random instances.
3. **Workload identity**: whole Coflow-compliant paradigms (DP) finish at
   identical times under both schedulers.
"""

import random

import pytest

from repro.analysis import format_table
from repro.core.coflow import bottleneck_duration
from repro.core.echelonflow import make_coflow
from repro.core.flow import Flow
from repro.core.units import gbps, megabytes
from repro.scheduling import CoflowMaddScheduler, EchelonMaddScheduler
from repro.scheduling.base import SchedulerView
from repro.simulator import Engine, TaskDag
from repro.simulator.network import NetworkModel
from repro.topology import ShortestPathRouter, big_switch
from repro.workloads import build_dp_allreduce, uniform_model


def _random_coflow(rng, n_hosts, n_flows):
    hosts = [f"h{i}" for i in range(n_hosts)]
    flows = []
    for _ in range(n_flows):
        src, dst = rng.sample(hosts, 2)
        flows.append(Flow(src, dst, rng.uniform(1.0, 50.0), group_id="c", job_id="j"))
    return flows


def test_allocation_identity(benchmark, report):
    rng = random.Random(7)

    def sweep():
        max_gap = 0.0
        trials = 20
        for _ in range(trials):
            n_hosts = rng.randint(2, 6)
            flows = _random_coflow(rng, n_hosts, rng.randint(1, 8))
            coflow = make_coflow("c", flows)
            topo = big_switch(n_hosts, 5.0)
            network = NetworkModel(topo, ShortestPathRouter(topo))
            for flow in coflow.flows:
                state = network.inject(flow, 0.0)
                coflow.observe_flow_start(flow, 0.0)
                state.ideal_finish_time = coflow.ideal_finish_time_of(flow)
            view = SchedulerView(
                now=0.0, network=network, echelonflows={"c": coflow}
            )
            echelon = EchelonMaddScheduler(backfill=False).allocate(view)
            varys = CoflowMaddScheduler(backfill=False).allocate(view)
            for flow_id, rate in varys.items():
                max_gap = max(max_gap, abs(echelon[flow_id] - rate))
        return trials, max_gap

    trials, max_gap = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert max_gap <= 1e-9
    report(
        "E9_property2_allocation",
        format_table(
            ["random coflows", "max |echelon - MADD| rate gap"],
            [[trials, max_gap]],
            title="Property 2: echelon on Eq.-5 arrangements IS MADD",
        ),
    )


def test_cct_equals_gamma(benchmark, report):
    rng = random.Random(13)

    def run_coflow(flows, scheduler, n_hosts):
        engine = Engine(big_switch(n_hosts, 5.0), scheduler)
        coflow = make_coflow("c", flows)
        dag = TaskDag("j")
        dag.add_comm("x", list(coflow.flows))
        engine.submit(dag, echelonflows=(coflow,))
        return engine.run().end_time

    def sweep():
        rows = []
        for trial in range(8):
            n_hosts = rng.randint(3, 6)
            flows = _random_coflow(rng, n_hosts, rng.randint(2, 10))
            caps = {f"h{i}": 5.0 for i in range(n_hosts)}
            gamma = bottleneck_duration(flows, caps, caps)
            varys_flows = [
                Flow(f.src, f.dst, f.size, group_id="c", job_id="j") for f in flows
            ]
            echelon_time = run_coflow(flows, EchelonMaddScheduler(), n_hosts)
            varys_time = run_coflow(varys_flows, CoflowMaddScheduler(), n_hosts)
            rows.append([trial, gamma, varys_time, echelon_time])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for _trial, gamma, varys_time, echelon_time in rows:
        assert varys_time == pytest.approx(gamma, rel=1e-6)
        assert echelon_time == pytest.approx(gamma, rel=1e-6)
    report(
        "E9b_property2_cct",
        format_table(
            ["trial", "Gamma (optimal CCT)", "Varys CCT", "echelon CCT"],
            rows,
            title="Property 2: single-Coflow CCT = Gamma under both schedulers",
        ),
    )


def test_workload_identity_on_dp(benchmark, report):
    model = uniform_model(
        "u8",
        8,
        param_bytes_per_layer=megabytes(40),
        activation_bytes=megabytes(20),
        forward_time=0.004,
    )
    workers = ["h0", "h1", "h2", "h3"]

    def run(scheduler):
        job = build_dp_allreduce("j", model, workers, bucket_bytes=megabytes(80))
        engine = Engine(big_switch(4, gbps(10)), scheduler)
        job.submit_to(engine)
        return engine.run().end_time

    def sweep():
        return run(CoflowMaddScheduler()), run(EchelonMaddScheduler())

    coflow_time, echelon_time = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert echelon_time == pytest.approx(coflow_time, rel=1e-9)
    report(
        "E9c_property2_workload",
        format_table(
            ["scheduler", "DP job completion"],
            [["coflow (Varys)", coflow_time], ["echelon", echelon_time]],
            title="Property 2 at workload level: identical DP schedules",
        ),
    )
