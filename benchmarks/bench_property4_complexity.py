"""E10 -- Property 4: the adapted MADD keeps MADD's complexity.

We measure wall-clock cost of one scheduling invocation (the coordinator's
inner loop) for Varys' SEBF+MADD and for the EchelonFlow adaptation, as the
number of active flows grows. The paper's claim is that the adaptation
changes the *metric*, not the *complexity*: the echelon/coflow cost ratio
should stay bounded (roughly constant) as instances grow.
"""

import random
import time

import pytest

from repro.analysis import format_table
from repro.core.arrangement import StaggeredArrangement
from repro.core.echelonflow import EchelonFlow
from repro.core.flow import Flow
from repro.scheduling import CoflowMaddScheduler, EchelonMaddScheduler
from repro.scheduling.base import SchedulerView
from repro.simulator.network import NetworkModel
from repro.topology import ShortestPathRouter, big_switch

SIZES = (50, 100, 200, 400)
GROUP_SIZE = 10


def _build_view(n_flows, rng):
    n_hosts = max(4, n_flows // 8)
    topo = big_switch(n_hosts, 10.0)
    network = NetworkModel(topo, ShortestPathRouter(topo))
    echelonflows = {}
    hosts = topo.hosts
    for group_index in range(n_flows // GROUP_SIZE):
        ef_id = f"g{group_index}"
        ef = EchelonFlow(ef_id, StaggeredArrangement(0.5), job_id="j")
        for j in range(GROUP_SIZE):
            src, dst = rng.sample(hosts, 2)
            flow = Flow(
                src, dst, rng.uniform(1.0, 100.0), group_id=ef_id, index_in_group=j
            )
            ef.add_flow(flow)
            state = network.inject(flow, 0.0)
            ef.observe_flow_start(flow, 0.0)
            state.ideal_finish_time = ef.ideal_finish_time_of(flow)
        echelonflows[ef_id] = ef
    return SchedulerView(now=0.0, network=network, echelonflows=echelonflows)


def _time_allocations(scheduler, view, repeats=20):
    start = time.perf_counter()
    for _ in range(repeats):
        scheduler.allocate(view)
    return (time.perf_counter() - start) / repeats


@pytest.mark.parametrize("n_flows", SIZES)
def test_echelon_invocation_cost(benchmark, n_flows):
    view = _build_view(n_flows, random.Random(n_flows))
    scheduler = EchelonMaddScheduler()
    benchmark(scheduler.allocate, view)


def test_property4_scaling_table(benchmark, report):
    def sweep():
        rows = []
        for n_flows in SIZES:
            view = _build_view(n_flows, random.Random(n_flows))
            coflow_cost = _time_allocations(CoflowMaddScheduler(), view)
            echelon_cost = _time_allocations(EchelonMaddScheduler(), view)
            rows.append(
                [n_flows, coflow_cost * 1e3, echelon_cost * 1e3,
                 echelon_cost / coflow_cost]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ratios = [ratio for *_rest, ratio in rows]
    # Same asymptotic complexity: the overhead ratio must not grow with
    # instance size (allow generous noise).
    assert max(ratios) <= 4.0 * max(1.0, min(ratios))
    report(
        "E10_property4_complexity",
        format_table(
            ["active flows", "MADD ms/invocation", "echelon ms/invocation", "ratio"],
            rows,
            title="Property 4: adapted MADD scales like MADD",
        ),
    )
