#!/usr/bin/env python
"""Scale sweep: reference vs. incremental vs. vectorized simulation core.

Sweeps the number of simultaneously-active flows (default 100 -> 100k) on
a multi-job big-switch scenario and times a full engine run per allocation
mode: ``reference`` (full scans per event -- the pre-refactor cost model),
``incremental`` (finish-time heap, residual link accounting, dirty-set
rates, persistent scheduler view), and ``vector`` (the numpy waterfilling
kernel over interned dense incidence plus bulk ``set_rates``). All modes
produce the same simulation by construction; every point cross-checks
bit-identity through a normalized per-flow trace digest before recording
wall-clock seconds and the speedups.

The reference core is O(n^2) per run, so the sweep caps it at
``REFERENCE_CAP`` flows (a 10k reference run already takes minutes; 100k
would take hours). Above the cap the sweep still runs -- and still
cross-checks -- incremental vs. vector. ``--huge`` appends a best-effort
1M-flow point (vector and incremental only; budget an hour).

The scenario is shaped so the hot path dominates: all flows are injected
up front (one arrival round), the engine runs in scheduling-interval mode
(so the coordinator reruns on ticks, not per departure), and flow sizes
are drawn from a seeded RNG so the n completions stagger into n separate
rounds.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py                 # full sweep
    PYTHONPATH=src python benchmarks/bench_scale.py --sizes 100,1000
    PYTHONPATH=src python benchmarks/bench_scale.py --huge          # adds 1M
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke         # CI guard

``--smoke`` runs small points a few times and compares three *time
ratios* -- each the median over ``SMOKE_REPEATS`` attempts -- against the
checked-in baseline (``benchmarks/results/bench_scale_baseline.json``):

* ``ratio``: incremental / reference (the core speedup),
* ``instrumented_ratio``: instrumented-incremental / incremental (the
  full observability stack must stay cheap),
* ``vector_ratio``: vector / incremental at ``VECTOR_SMOKE_FLOWS`` flows
  (the vector kernel must stay ahead of the scalar incremental path at a
  size past the auto-select threshold).

Ratios are machine-independent to first order, so the step fails only
when a mode itself regresses (> 2x its baseline ratio), not when CI
hardware is slow -- and the failure message names the regressed mode.
Exit code 1 on regression or equivalence mismatch.

See ``docs/performance.md`` for how to read the JSON report.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import statistics
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.core.flow import Flow
from repro.scheduling import EchelonMaddScheduler, FairSharingScheduler
from repro.simulator import Engine
from repro.topology import big_switch

RESULTS_DIR = ROOT / "benchmarks" / "results"
REPORT_PATH = RESULTS_DIR / "bench_scale.json"
BASELINE_PATH = RESULTS_DIR / "bench_scale_baseline.json"

N_HOSTS = 64
N_JOBS = 8
GROUP_SIZE = 16
#: Coordinator rerun tick (interval mode); sized so a run sees roughly
#: ten ticks. Few enough that the per-event hot path still dominates the
#: reference-vs-incremental comparison (the reference core's O(n^2)
#: event scans dwarf its per-tick scheduler cost), but enough coordinator
#: reruns that the allocation path -- what the vector kernel accelerates
#: -- is a first-class term of the incremental-vs-vector comparison at
#: every scale instead of being amortized away over a 2-simulated-second
#: horizon.
TICK = 0.2
#: Largest point the O(n^2) reference core runs at in a sweep. Past it
#: the sweep compares vector against incremental only.
REFERENCE_CAP = 10_000
#: The best-effort point ``--huge`` appends (vector + incremental only).
HUGE_FLOWS = 1_000_000
#: Regression threshold for --smoke: fail when a mode's median time
#: ratio exceeds the checked-in baseline ratio by more than this.
SMOKE_FACTOR = 2.0
SMOKE_FLOWS = 400
#: The vector guard runs past the auto-select threshold (2048 flows) so
#: it measures the kernel the engine would actually pick at this size.
VECTOR_SMOKE_FLOWS = 4000
SMOKE_REPEATS = 3

MODES = ("reference", "incremental", "vector")


def _make_scheduler(name: str):
    if name == "fair":
        return FairSharingScheduler()
    if name == "echelon":
        return EchelonMaddScheduler()
    raise ValueError(f"unknown scheduler {name!r} (choose fair or echelon)")


def build_engine(
    n_flows: int,
    mode: str,
    seed: int,
    scheduler: str,
    instrumentation=None,
) -> Engine:
    """A multi-job all-to-all scenario with ``n_flows`` concurrent flows.

    Host bandwidth scales with n so each flow's fair rate stays ~1 and
    the simulated horizon stays ~O(1) regardless of scale. Flows carry
    job ids and group ids (8 jobs, 16-flow groups) so the network's
    group-bucket maintenance is part of what gets measured.
    """
    if mode not in MODES:
        raise ValueError(f"unknown allocation mode {mode!r} (choose from {MODES})")
    bandwidth = max(1.0, n_flows / N_HOSTS)
    topology = big_switch(N_HOSTS, host_bandwidth=bandwidth, name="bench-scale")
    engine = Engine(
        topology,
        _make_scheduler(scheduler),
        scheduling_interval=TICK,
        allocation=mode,
        instrumentation=instrumentation,
        # The sanitizer (repro.check) is forced off regardless of any
        # REPRO_CHECK in the environment: this benchmark measures the bare
        # hot path, and CI runs it in the same job that sets REPRO_CHECK
        # for the test suite. With check=None each hook site costs one
        # attribute test, which sits on the measured path -- so the
        # ratio guards in --smoke also catch any disabled-sanitizer
        # overhead creeping into the engine spine.
        sanitizer=False,
    )
    rng = random.Random(seed)
    for i in range(n_flows):
        src = i % N_HOSTS
        dst = (i + 1 + (i // N_HOSTS) % (N_HOSTS - 1)) % N_HOSTS
        if dst == src:
            dst = (dst + 1) % N_HOSTS
        job = i % N_JOBS
        engine.inject_background_flow(
            Flow(
                src=f"h{src}",
                dst=f"h{dst}",
                size=1.0 + rng.random(),
                group_id=f"job{job}/g{i // (N_JOBS * GROUP_SIZE)}",
                index_in_group=(i // N_JOBS) % GROUP_SIZE,
                job_id=f"job{job}",
                tag="bench",
            ),
            at_time=0.0,
        )
    return engine


def _trace_digest(trace) -> str:
    """A stable digest of the per-flow schedule, id-normalized.

    Flow ids come from a process-global allocator, so two engines built
    for the same scenario hold different absolute ids; subtracting each
    trace's smallest id makes the digests comparable. Start/finish times
    are hashed at full ``repr`` precision, so two modes share a digest
    only when every flow's schedule agrees bit for bit.
    """
    records = trace.flow_records
    if not records:
        return hashlib.sha256(b"empty").hexdigest()
    base = min(record.flow.flow_id for record in records)
    normalized = sorted(
        (record.flow.flow_id - base, record.start, record.finish)
        for record in records
    )
    return hashlib.sha256(repr(normalized).encode()).hexdigest()


def run_once(
    n_flows: int,
    mode: str,
    seed: int,
    scheduler: str,
    instrumented: bool = False,
) -> dict:
    instrumentation = None
    if instrumented:
        from repro.obs import Instrumentation, JsonlEventLog

        # The full recording stack the CLI obs flags would install.
        instrumentation = Instrumentation(event_log=JsonlEventLog())
    engine = build_engine(
        n_flows, mode, seed, scheduler, instrumentation=instrumentation
    )
    start = time.perf_counter()
    trace = engine.run()
    elapsed = time.perf_counter() - start
    return {
        "mode": mode,
        "seconds": elapsed,
        "completed": len(trace.flow_records),
        "end_time": trace.end_time,
        "bytes_delivered": engine.network.bytes_delivered,
        "scheduler_invocations": engine.scheduler_invocations,
        "trace_digest": _trace_digest(trace),
    }


def _check_equivalent(n_flows: int, a: dict, b: dict) -> list:
    """Both modes must have simulated the identical run, bit for bit."""
    mode_a, mode_b = a["mode"], b["mode"]
    problems = []
    if a["completed"] != b["completed"] or a["completed"] != n_flows:
        problems.append(
            f"completions differ: {mode_a}={a['completed']} "
            f"{mode_b}={b['completed']} expected={n_flows}"
        )
    if a["end_time"] != b["end_time"]:
        problems.append(
            f"end_time differs: {mode_a}={a['end_time']!r} "
            f"{mode_b}={b['end_time']!r}"
        )
    if a["scheduler_invocations"] != b["scheduler_invocations"]:
        problems.append(
            f"scheduler invocations differ: {mode_a}="
            f"{a['scheduler_invocations']} {mode_b}="
            f"{b['scheduler_invocations']}"
        )
    if a["trace_digest"] != b["trace_digest"]:
        problems.append(
            f"per-flow trace digest differs ({mode_a} vs {mode_b}): the "
            f"modes disagree on some flow's start/finish at full float "
            f"precision"
        )
    # Bytes accumulate in different orders between the modes (sync order
    # vs. scan order): equal only up to float association.
    scale = max(1.0, abs(a["bytes_delivered"]))
    if abs(a["bytes_delivered"] - b["bytes_delivered"]) > 1e-6 * scale:
        problems.append(
            f"bytes_delivered differ: {mode_a}={a['bytes_delivered']!r} "
            f"{mode_b}={b['bytes_delivered']!r}"
        )
    return problems


def sweep(sizes, seed: int, scheduler: str) -> dict:
    points = []
    for n_flows in sizes:
        runs = {}
        modes = [m for m in MODES if m != "reference" or n_flows <= REFERENCE_CAP]
        if "reference" not in modes:
            print(
                f"[bench_scale] n={n_flows}: skipping reference "
                f"(O(n^2) past REFERENCE_CAP={REFERENCE_CAP})",
                flush=True,
            )
        for mode in modes:
            print(f"[bench_scale] n={n_flows}: {mode} ...", flush=True)
            runs[mode] = run_once(n_flows, mode, seed=seed, scheduler=scheduler)
            print(
                f"[bench_scale] n={n_flows}: {mode} "
                f"{runs[mode]['seconds']:.3f}s",
                flush=True,
            )
        problems = _check_equivalent(n_flows, runs["incremental"], runs["vector"])
        if "reference" in runs:
            problems += _check_equivalent(
                n_flows, runs["reference"], runs["incremental"]
            )
        if problems:
            raise SystemExit(
                "mode equivalence violated at n=%d:\n  %s"
                % (n_flows, "\n  ".join(problems))
            )
        inc_s = runs["incremental"]["seconds"]
        vec_s = runs["vector"]["seconds"]
        point = {
            "n_flows": n_flows,
            "incremental_seconds": round(inc_s, 6),
            "vector_seconds": round(vec_s, 6),
            "vector_speedup": round(inc_s / vec_s, 2) if vec_s > 0 else None,
            "completed_flows": runs["incremental"]["completed"],
            "sim_end_time": runs["incremental"]["end_time"],
            "scheduler_invocations": runs["incremental"]["scheduler_invocations"],
            "trace_digest": runs["incremental"]["trace_digest"],
        }
        if "reference" in runs:
            ref_s = runs["reference"]["seconds"]
            point["reference_seconds"] = round(ref_s, 6)
            point["speedup"] = round(ref_s / inc_s, 2) if inc_s > 0 else None
        print(
            f"[bench_scale] n={n_flows}: vector speedup "
            f"{point['vector_speedup']}x over incremental"
            + (
                f", incremental {point['speedup']}x over reference"
                if "speedup" in point
                else ""
            ),
            flush=True,
        )
        points.append(point)
    top = max(points, key=lambda p: p["n_flows"])
    return {
        "benchmark": "bench_scale",
        "scenario": {
            "topology": f"big_switch({N_HOSTS})",
            "scheduler": scheduler,
            "scheduling_interval": TICK,
            "jobs": N_JOBS,
            "group_size": GROUP_SIZE,
            "seed": seed,
            "reference_cap": REFERENCE_CAP,
        },
        "sweep": points,
        "top": {
            "n_flows": top["n_flows"],
            "vector_speedup": top["vector_speedup"],
        },
    }


def _guard(name: str, median_ratio: float, baseline_ratio) -> bool:
    """One named ratio guard; prints the verdict, True when it passes."""
    if baseline_ratio is None:
        print(
            f"[bench_scale] smoke: no baseline for {name}; skipping its guard"
        )
        return True
    allowed = SMOKE_FACTOR * baseline_ratio
    print(
        f"[bench_scale] smoke [{name}]: median ratio {median_ratio:.3f}, "
        f"baseline {baseline_ratio:.3f}, allowed <= {allowed:.3f}"
    )
    if median_ratio > allowed:
        print(
            f"[bench_scale] REGRESSION in {name}: median time ratio "
            f"{median_ratio:.3f} exceeds {SMOKE_FACTOR}x the baseline "
            f"({baseline_ratio:.3f})",
            file=sys.stderr,
        )
        return False
    return True


def smoke(seed: int, scheduler: str) -> int:
    """CI guard: fail -- naming the mode -- when any core regresses."""
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except FileNotFoundError:
        print(f"[bench_scale] missing baseline {BASELINE_PATH}", file=sys.stderr)
        return 1
    # Benchmark hygiene: no sanitizer may ride along with the timed
    # engines, REPRO_CHECK or not -- otherwise the ratios measure the
    # checker, not the core.
    probe = build_engine(8, "incremental", seed=seed, scheduler=scheduler)
    if probe.check is not None:
        print(
            "[bench_scale] smoke FAILED: sanitizer attached to a benchmark "
            "engine (engine.check should be None)",
            file=sys.stderr,
        )
        return 1
    ratios = []
    instr_ratios = []
    vector_ratios = []
    for attempt in range(SMOKE_REPEATS):
        ref = run_once(SMOKE_FLOWS, "reference", seed=seed, scheduler=scheduler)
        inc = run_once(SMOKE_FLOWS, "incremental", seed=seed, scheduler=scheduler)
        obs = run_once(
            SMOKE_FLOWS,
            "incremental",
            seed=seed,
            scheduler=scheduler,
            instrumented=True,
        )
        vec_base = run_once(
            VECTOR_SMOKE_FLOWS, "incremental", seed=seed, scheduler=scheduler
        )
        vec = run_once(VECTOR_SMOKE_FLOWS, "vector", seed=seed, scheduler=scheduler)
        problems = _check_equivalent(SMOKE_FLOWS, ref, inc)
        # Instrumentation must observe, never perturb: the instrumented
        # run is the same simulation as the bare incremental one.
        problems += [
            "instrumented run: " + p for p in _check_equivalent(SMOKE_FLOWS, inc, obs)
        ]
        problems += _check_equivalent(VECTOR_SMOKE_FLOWS, vec_base, vec)
        if problems:
            print(
                "[bench_scale] smoke equivalence FAILED:\n  " + "\n  ".join(problems),
                file=sys.stderr,
            )
            return 1
        ratios.append(inc["seconds"] / ref["seconds"])
        instr_ratios.append(obs["seconds"] / inc["seconds"])
        vector_ratios.append(vec["seconds"] / vec_base["seconds"])
        print(
            f"[bench_scale] smoke attempt {attempt + 1}/{SMOKE_REPEATS}: "
            f"incremental/reference {ratios[-1]:.3f} "
            f"({inc['seconds']:.3f}s / {ref['seconds']:.3f}s), "
            f"instrumented overhead {instr_ratios[-1]:.3f}x "
            f"({obs['seconds']:.3f}s), vector/incremental "
            f"{vector_ratios[-1]:.3f} ({vec['seconds']:.3f}s / "
            f"{vec_base['seconds']:.3f}s @ n={VECTOR_SMOKE_FLOWS})",
            flush=True,
        )
    ok = _guard(
        "incremental core (incremental/reference)",
        statistics.median(ratios),
        baseline.get("ratio"),
    )
    ok &= _guard(
        "instrumentation (instrumented/incremental)",
        statistics.median(instr_ratios),
        baseline.get("instrumented_ratio"),
    )
    ok &= _guard(
        "vector kernel (vector/incremental)",
        statistics.median(vector_ratios),
        baseline.get("vector_ratio"),
    )
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="100,1000,10000,100000",
        help="comma-separated active-flow counts to sweep",
    )
    parser.add_argument(
        "--huge",
        action="store_true",
        help=f"append a best-effort {HUGE_FLOWS}-flow point to the sweep",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--scheduler", default="fair", choices=("fair", "echelon"),
        help="coordinator algorithm driving the run",
    )
    parser.add_argument(
        "--out", default=str(REPORT_PATH), help="JSON report destination"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small-scale regression guard against the checked-in baseline",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke(args.seed, args.scheduler)

    sizes = {int(s) for s in args.sizes.split(",") if s.strip()}
    if args.huge:
        sizes.add(HUGE_FLOWS)
    report = sweep(sorted(sizes), args.seed, args.scheduler)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_scale] report written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
