#!/usr/bin/env python
"""Scale sweep: incremental vs. reference simulation core.

Sweeps the number of simultaneously-active flows (default 100 -> 10k) on a
multi-job big-switch scenario and times a full engine run twice per point:
once with ``incremental=True`` (finish-time heap, residual link accounting,
dirty-set rates, persistent scheduler view) and once with
``incremental=False`` (identical semantics, full scans per event -- the
pre-refactor cost model). Both runs produce the same simulation by
construction; the report records wall-clock seconds and the speedup.

The scenario is shaped so the hot path dominates: all flows are injected
up front (one arrival round), the engine runs in scheduling-interval mode
(so the coordinator reruns on ticks, not per departure), and flow sizes
are drawn from a seeded RNG so the n completions stagger into n separate
rounds. Per round the reference core pays O(active) three times over
(advance scan, earliest-finish scan, zero-advance scan) -- O(n^2) for the
run -- while the incremental core pays O(log n).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py                 # full sweep
    PYTHONPATH=src python benchmarks/bench_scale.py --sizes 100,1000
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke         # CI guard

``--smoke`` runs one small point a few times and compares two *time
ratios* against the checked-in baseline
(``benchmarks/results/bench_scale_baseline.json``): incremental /
reference (the core speedup) and instrumented-incremental / incremental
(the full observability stack -- event log, rate recorder, link
timelines -- must stay cheap). Ratios are machine-independent to first
order, so the step fails only when the core or the instrumentation
itself regresses (> 2x the baseline ratio), not when CI hardware is
slow. Exit code 1 on regression or equivalence mismatch.

See ``docs/performance.md`` for how to read the JSON report.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.core.flow import Flow
from repro.scheduling import EchelonMaddScheduler, FairSharingScheduler
from repro.simulator import Engine
from repro.topology import big_switch

RESULTS_DIR = ROOT / "benchmarks" / "results"
REPORT_PATH = RESULTS_DIR / "bench_scale.json"
BASELINE_PATH = RESULTS_DIR / "bench_scale_baseline.json"

N_HOSTS = 64
N_JOBS = 8
GROUP_SIZE = 16
#: Coordinator rerun tick (interval mode); sized so a run sees a handful
#: of ticks, keeping scheduler cost (identical in both modes) a rounding
#: error next to the per-event hot path being measured.
TICK = 0.5
#: Regression threshold for --smoke: fail when the incremental/reference
#: time ratio exceeds the checked-in baseline ratio by more than this.
SMOKE_FACTOR = 2.0
SMOKE_FLOWS = 400
SMOKE_REPEATS = 3


def _make_scheduler(name: str):
    if name == "fair":
        return FairSharingScheduler()
    if name == "echelon":
        return EchelonMaddScheduler()
    raise ValueError(f"unknown scheduler {name!r} (choose fair or echelon)")


def build_engine(
    n_flows: int,
    incremental: bool,
    seed: int,
    scheduler: str,
    instrumentation=None,
) -> Engine:
    """A multi-job all-to-all scenario with ``n_flows`` concurrent flows.

    Host bandwidth scales with n so each flow's fair rate stays ~1 and
    the simulated horizon stays ~O(1) regardless of scale. Flows carry
    job ids and group ids (8 jobs, 16-flow groups) so the network's
    group-bucket maintenance is part of what gets measured.
    """
    bandwidth = max(1.0, n_flows / N_HOSTS)
    topology = big_switch(N_HOSTS, host_bandwidth=bandwidth, name="bench-scale")
    engine = Engine(
        topology,
        _make_scheduler(scheduler),
        scheduling_interval=TICK,
        incremental=incremental,
        instrumentation=instrumentation,
        # The sanitizer (repro.check) is forced off regardless of any
        # REPRO_CHECK in the environment: this benchmark measures the bare
        # hot path, and CI runs it in the same job that sets REPRO_CHECK
        # for the test suite. With check=None each hook site costs one
        # attribute test, which sits on the measured path -- so the
        # incremental/reference ratio guard in --smoke also catches any
        # disabled-sanitizer overhead creeping into the engine spine.
        sanitizer=False,
    )
    rng = random.Random(seed)
    for i in range(n_flows):
        src = i % N_HOSTS
        dst = (i + 1 + (i // N_HOSTS) % (N_HOSTS - 1)) % N_HOSTS
        if dst == src:
            dst = (dst + 1) % N_HOSTS
        job = i % N_JOBS
        engine.inject_background_flow(
            Flow(
                src=f"h{src}",
                dst=f"h{dst}",
                size=1.0 + rng.random(),
                group_id=f"job{job}/g{i // (N_JOBS * GROUP_SIZE)}",
                index_in_group=(i // N_JOBS) % GROUP_SIZE,
                job_id=f"job{job}",
                tag="bench",
            ),
            at_time=0.0,
        )
    return engine


def run_once(
    n_flows: int,
    incremental: bool,
    seed: int,
    scheduler: str,
    instrumented: bool = False,
) -> dict:
    instrumentation = None
    if instrumented:
        from repro.obs import Instrumentation, JsonlEventLog

        # The full recording stack the CLI obs flags would install.
        instrumentation = Instrumentation(event_log=JsonlEventLog())
    engine = build_engine(
        n_flows, incremental, seed, scheduler, instrumentation=instrumentation
    )
    start = time.perf_counter()
    trace = engine.run()
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "completed": len(trace.flow_records),
        "end_time": trace.end_time,
        "bytes_delivered": engine.network.bytes_delivered,
        "scheduler_invocations": engine.scheduler_invocations,
    }


def _check_equivalent(n_flows: int, ref: dict, inc: dict) -> list:
    """Both modes must have simulated the same run."""
    problems = []
    if ref["completed"] != inc["completed"] or ref["completed"] != n_flows:
        problems.append(
            f"completions differ: reference={ref['completed']} "
            f"incremental={inc['completed']} expected={n_flows}"
        )
    if ref["end_time"] != inc["end_time"]:
        problems.append(
            f"end_time differs: reference={ref['end_time']!r} "
            f"incremental={inc['end_time']!r}"
        )
    if ref["scheduler_invocations"] != inc["scheduler_invocations"]:
        problems.append(
            f"scheduler invocations differ: reference="
            f"{ref['scheduler_invocations']} incremental="
            f"{inc['scheduler_invocations']}"
        )
    # Bytes accumulate in different orders between the modes (sync order
    # vs. scan order): equal only up to float association.
    scale = max(1.0, abs(ref["bytes_delivered"]))
    if abs(ref["bytes_delivered"] - inc["bytes_delivered"]) > 1e-6 * scale:
        problems.append(
            f"bytes_delivered differ: reference={ref['bytes_delivered']!r} "
            f"incremental={inc['bytes_delivered']!r}"
        )
    return problems


def sweep(sizes, seed: int, scheduler: str) -> dict:
    points = []
    for n_flows in sizes:
        print(f"[bench_scale] n={n_flows}: reference ...", flush=True)
        ref = run_once(n_flows, incremental=False, seed=seed, scheduler=scheduler)
        print(
            f"[bench_scale] n={n_flows}: reference {ref['seconds']:.3f}s, "
            "incremental ...",
            flush=True,
        )
        inc = run_once(n_flows, incremental=True, seed=seed, scheduler=scheduler)
        problems = _check_equivalent(n_flows, ref, inc)
        if problems:
            raise SystemExit(
                "mode equivalence violated at n=%d:\n  %s"
                % (n_flows, "\n  ".join(problems))
            )
        speedup = ref["seconds"] / inc["seconds"] if inc["seconds"] > 0 else float("inf")
        print(
            f"[bench_scale] n={n_flows}: incremental {inc['seconds']:.3f}s "
            f"-> speedup {speedup:.1f}x",
            flush=True,
        )
        points.append(
            {
                "n_flows": n_flows,
                "reference_seconds": round(ref["seconds"], 6),
                "incremental_seconds": round(inc["seconds"], 6),
                "speedup": round(speedup, 2),
                "completed_flows": inc["completed"],
                "sim_end_time": inc["end_time"],
                "scheduler_invocations": inc["scheduler_invocations"],
            }
        )
    top = max(points, key=lambda p: p["n_flows"])
    return {
        "benchmark": "bench_scale",
        "scenario": {
            "topology": f"big_switch({N_HOSTS})",
            "scheduler": scheduler,
            "scheduling_interval": TICK,
            "jobs": N_JOBS,
            "group_size": GROUP_SIZE,
            "seed": seed,
        },
        "sweep": points,
        "top": {"n_flows": top["n_flows"], "speedup": top["speedup"]},
    }


def smoke(seed: int, scheduler: str) -> int:
    """CI guard: fail when the incremental core regresses vs. baseline."""
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except FileNotFoundError:
        print(f"[bench_scale] missing baseline {BASELINE_PATH}", file=sys.stderr)
        return 1
    # Benchmark hygiene: no sanitizer may ride along with the timed
    # engines, REPRO_CHECK or not -- otherwise the ratios measure the
    # checker, not the core.
    probe = build_engine(8, incremental=True, seed=seed, scheduler=scheduler)
    if probe.check is not None:
        print(
            "[bench_scale] smoke FAILED: sanitizer attached to a benchmark "
            "engine (engine.check should be None)",
            file=sys.stderr,
        )
        return 1
    best_ratio = float("inf")
    best_instr_ratio = float("inf")
    for attempt in range(SMOKE_REPEATS):
        ref = run_once(SMOKE_FLOWS, incremental=False, seed=seed, scheduler=scheduler)
        inc = run_once(SMOKE_FLOWS, incremental=True, seed=seed, scheduler=scheduler)
        obs = run_once(
            SMOKE_FLOWS,
            incremental=True,
            seed=seed,
            scheduler=scheduler,
            instrumented=True,
        )
        problems = _check_equivalent(SMOKE_FLOWS, ref, inc)
        # Instrumentation must observe, never perturb: the instrumented
        # run is the same simulation as the bare incremental one.
        problems += [
            "instrumented run: " + p for p in _check_equivalent(SMOKE_FLOWS, inc, obs)
        ]
        if problems:
            print(
                "[bench_scale] smoke equivalence FAILED:\n  " + "\n  ".join(problems),
                file=sys.stderr,
            )
            return 1
        ratio = inc["seconds"] / ref["seconds"]
        instr_ratio = obs["seconds"] / inc["seconds"]
        best_ratio = min(best_ratio, ratio)
        best_instr_ratio = min(best_instr_ratio, instr_ratio)
        print(
            f"[bench_scale] smoke attempt {attempt + 1}/{SMOKE_REPEATS}: "
            f"ratio {ratio:.3f} (incremental {inc['seconds']:.3f}s / "
            f"reference {ref['seconds']:.3f}s), instrumented overhead "
            f"{instr_ratio:.3f}x ({obs['seconds']:.3f}s)",
            flush=True,
        )
    allowed = SMOKE_FACTOR * baseline["ratio"]
    print(
        f"[bench_scale] smoke: best ratio {best_ratio:.3f}, baseline "
        f"{baseline['ratio']:.3f}, allowed <= {allowed:.3f}"
    )
    if best_ratio > allowed:
        print(
            f"[bench_scale] REGRESSION: incremental/reference time ratio "
            f"{best_ratio:.3f} exceeds {SMOKE_FACTOR}x the baseline "
            f"({baseline['ratio']:.3f})",
            file=sys.stderr,
        )
        return 1
    baseline_instr = baseline.get("instrumented_ratio")
    if baseline_instr is not None:
        allowed_instr = SMOKE_FACTOR * baseline_instr
        print(
            f"[bench_scale] smoke: best instrumented overhead "
            f"{best_instr_ratio:.3f}x, baseline {baseline_instr:.3f}x, "
            f"allowed <= {allowed_instr:.3f}x"
        )
        if best_instr_ratio > allowed_instr:
            print(
                f"[bench_scale] REGRESSION: instrumented/incremental time "
                f"ratio {best_instr_ratio:.3f} exceeds {SMOKE_FACTOR}x the "
                f"baseline ({baseline_instr:.3f})",
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="100,1000,10000",
        help="comma-separated active-flow counts to sweep",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--scheduler", default="fair", choices=("fair", "echelon"),
        help="coordinator algorithm driving the run",
    )
    parser.add_argument(
        "--out", default=str(REPORT_PATH), help="JSON report destination"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small-scale regression guard against the checked-in baseline",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke(args.seed, args.scheduler)

    sizes = sorted({int(s) for s in args.sizes.split(",") if s.strip()})
    report = sweep(sizes, args.seed, args.scheduler)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_scale] report written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
