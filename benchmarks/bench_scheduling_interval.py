"""E21 -- Section 5 scalability: per-event vs per-interval rescheduling.

"Such algorithms would rerun per EchelonFlow arrival/departure or per
scheduling interval. We propose to improve the scalability by revising
them to maintain the scheduling decision throughout the DDLT lifetime."

The engine supports both rerun policies. Two findings:

* On a *single* synchronized job, per-event rescheduling is already cheap:
  DDLT's collectives complete in lockstep, so events batch -- the
  iterative structure the paper proposes to exploit.
* On a *dynamic multi-tenant* cluster (Poisson arrivals, desynchronized
  collectives) the per-event policy's invocation count scales with
  traffic; a coarse tick cuts coordinator invocations by ~45% at a ~3%
  mean-JCT cost.
* The paper's third idea -- "maintain the scheduling decision throughout
  the DDLT lifetime leveraging the iterative nature of DDLT jobs" -- is
  realized by :class:`MemoizingScheduler`: on a 20-iteration pipeline job
  95% of coordinator invocations become cache hits with a *bit-identical*
  schedule.
"""

import json

import pytest

from repro.analysis import format_table
from repro.core.units import gbps, megabytes
from repro.scheduling import EchelonMaddScheduler
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import (
    ClusterManager,
    JobTemplate,
    build_dp_allreduce,
    build_fsdp,
    poisson_arrivals,
    uniform_model,
)
from repro.workloads.placement import ClusterPlacer

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(25),
    activation_bytes=megabytes(10),
    forward_time=0.003,
)

TEMPLATES = [
    JobTemplate(
        "dp",
        lambda jid, ws: build_dp_allreduce(
            jid, MODEL, ws, bucket_bytes=megabytes(25)
        ),
        worker_count=4,
        weight=2.0,
    ),
    JobTemplate(
        "fsdp",
        lambda jid, ws: build_fsdp(jid, MODEL, ws),
        worker_count=4,
        weight=1.0,
    ),
]


def _run(scheduling_interval):
    topology = big_switch(12, gbps(10))
    engine = Engine(
        topology,
        EchelonMaddScheduler(),
        scheduling_interval=scheduling_interval,
    )
    manager = ClusterManager(engine, ClusterPlacer(topology))
    manager.schedule(poisson_arrivals(TEMPLATES, rate=20.0, count=24, seed=7))
    engine.run()
    return manager.mean_jct(), engine.now, engine.scheduler_invocations


def test_interval_mode(benchmark):
    jct, _end, invocations = benchmark(_run, 0.01)
    assert jct > 0 and invocations > 0


def test_interval_tradeoff(benchmark, report):
    def sweep():
        rows = []
        jct0, end0, inv0 = _run(None)
        rows.append(["per-event (paper policy 1)", jct0, inv0, inv0 / end0, 1.0])
        for interval_ms in (2.0, 10.0, 50.0):
            jct, end, invocations = _run(interval_ms / 1e3)
            rows.append(
                [
                    f"every {interval_ms:g} ms",
                    jct,
                    invocations,
                    invocations / end,
                    jct / jct0,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E21_scheduling_interval",
        format_table(
            [
                "rerun policy",
                "mean JCT",
                "coordinator invocations",
                "invocations/s",
                "JCT vs per-event",
            ],
            rows,
            title="Section 5: rescheduling policy on a dynamic 24-job cluster",
        ),
    )
    per_event_inv = rows[0][2]
    by_policy = {row[0]: row for row in rows}
    coarse = by_policy["every 50 ms"]
    # A coarse tick cuts coordinator invocations substantially ...
    assert coarse[2] <= 0.65 * per_event_inv
    # ... at a bounded mean-JCT cost.
    assert coarse[4] <= 1.05
    # Tick coarsening monotonically trades invocations for quality.
    tick_rows = rows[1:]
    invocation_counts = [row[2] for row in tick_rows]
    assert invocation_counts == sorted(invocation_counts, reverse=True)


def test_interval_obs_metrics(results_dir):
    """Emit the obs-layer metrics report for both rerun policies, so the
    E21 invocation/wall-clock numbers are diffable across PRs."""
    from repro.obs import Instrumentation, ProfiledScheduler, build_metrics_report

    def run(scheduling_interval):
        obs = Instrumentation()
        scheduler = ProfiledScheduler(EchelonMaddScheduler(), registry=obs.registry)
        topology = big_switch(12, gbps(10))
        engine = Engine(
            topology,
            scheduler,
            scheduling_interval=scheduling_interval,
            instrumentation=obs,
        )
        manager = ClusterManager(engine, ClusterPlacer(topology))
        manager.schedule(poisson_arrivals(TEMPLATES, rate=20.0, count=24, seed=7))
        trace = engine.run()
        full = build_metrics_report(trace, instrumentation=obs, profiler=scheduler)
        # Keep only the sections that diff meaningfully across PRs; the
        # per-group breakdowns for 24 Poisson-arriving jobs are churn.
        return {k: full[k] for k in ("version", "run", "scheduler", "links", "flows")}

    metrics = {"per_event": run(None), "tick_50ms": run(0.05)}
    path = results_dir / "E21_scheduling_interval_metrics.json"
    path.write_text(json.dumps(metrics, indent=2, sort_keys=True, default=str) + "\n")
    per_event = metrics["per_event"]["scheduler"]
    tick = metrics["tick_50ms"]["scheduler"]
    assert per_event["invocations"] > tick["invocations"]
    assert "tick" in tick["by_cause"]
    assert metrics["per_event"]["links"]


def test_decision_reuse_across_iterations(benchmark, report):
    """Section 5's "maintain the scheduling decision throughout the DDLT
    lifetime": the memoizing coordinator replays cached allocations when
    the iterative traffic pattern recurs, with an identical schedule."""
    from repro.scheduling import MemoizingScheduler
    from repro.topology import linear_chain
    from repro.workloads import build_pp_gpipe

    def run(iterations):
        scheduler = MemoizingScheduler(EchelonMaddScheduler())
        job = build_pp_gpipe(
            "j", MODEL, ["h0", "h1", "h2", "h3"], num_micro_batches=4,
            iterations=iterations,
        )
        engine = Engine(linear_chain(4, gbps(3)), scheduler)
        job.submit_to(engine)
        trace = engine.run()
        plain = Engine(linear_chain(4, gbps(3)), EchelonMaddScheduler())
        job2 = build_pp_gpipe(
            "j", MODEL, ["h0", "h1", "h2", "h3"], num_micro_batches=4,
            iterations=iterations,
        )
        job2.submit_to(plain)
        plain_trace = plain.run()
        return scheduler.hit_rate, trace.end_time, plain_trace.end_time

    def sweep():
        return [[k, *run(k)] for k in (1, 5, 10, 20)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E21b_decision_reuse",
        format_table(
            ["iterations", "cache hit rate", "memoized makespan", "plain makespan"],
            rows,
            title="Section 5: decision reuse across training iterations",
        ),
    )
    for iterations, hit_rate, memoized, plain in rows:
        assert memoized == pytest.approx(plain, rel=1e-9)
        if iterations >= 10:
            assert hit_rate >= (iterations - 1) / iterations - 0.06
