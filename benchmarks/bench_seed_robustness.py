"""E22 -- seed robustness: is the dynamic-cluster win statistically real?

E15's dynamic-cluster comparison uses one arrival trace. Here the same
experiment runs over ten seeds; per-seed paired differences (same arrival
trace under both schedulers) feed a bootstrap CI, which is the right test
for "echelon beats fair on this workload distribution", not just on one
draw.
"""

import pytest

from repro.analysis import format_table, paired_compare, replicate, summarize
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import (
    ClusterManager,
    JobTemplate,
    build_dp_allreduce,
    build_fsdp,
    poisson_arrivals,
    uniform_model,
)
from repro.workloads.placement import ClusterPlacer

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(25),
    activation_bytes=megabytes(10),
    forward_time=0.003,
)
TEMPLATES = [
    JobTemplate(
        "dp",
        lambda jid, ws: build_dp_allreduce(
            jid, MODEL, ws, bucket_bytes=megabytes(50)
        ),
        worker_count=4,
        weight=2.0,
    ),
    JobTemplate(
        "fsdp",
        lambda jid, ws: build_fsdp(jid, MODEL, ws),
        worker_count=4,
        weight=1.0,
    ),
]
SEEDS = list(range(10))


def _mean_jct(scheduler, seed):
    topology = big_switch(12, gbps(10))
    engine = Engine(topology, scheduler)
    manager = ClusterManager(engine, ClusterPlacer(topology))
    manager.schedule(poisson_arrivals(TEMPLATES, rate=15.0, count=16, seed=seed))
    engine.run()
    return manager.mean_jct()


def test_one_seed(benchmark):
    assert benchmark(_mean_jct, EchelonMaddScheduler(), 0) > 0


def test_seed_robustness(benchmark, report):
    def sweep():
        fair = replicate(lambda s: _mean_jct(FairSharingScheduler(), s), SEEDS)
        coflow = replicate(lambda s: _mean_jct(CoflowMaddScheduler(), s), SEEDS)
        echelon = replicate(lambda s: _mean_jct(EchelonMaddScheduler(), s), SEEDS)
        return fair, coflow, echelon

    fair, coflow, echelon = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fair_summary = summarize(fair)
    coflow_summary = summarize(coflow)
    echelon_summary = summarize(echelon)
    vs_fair = paired_compare(fair, echelon)
    vs_coflow = paired_compare(coflow, echelon)

    rows = [
        ["fair", fair_summary.mean, fair_summary.ci_low, fair_summary.ci_high],
        ["coflow", coflow_summary.mean, coflow_summary.ci_low, coflow_summary.ci_high],
        ["echelon", echelon_summary.mean, echelon_summary.ci_low,
         echelon_summary.ci_high],
    ]
    table = format_table(
        ["scheduler", "mean JCT", "CI low", "CI high"],
        rows,
        title=f"Dynamic cluster over {len(SEEDS)} seeds (95% bootstrap CIs)",
    )
    pairing = format_table(
        ["paired comparison", "mean diff", "CI low", "CI high", "wins/seeds"],
        [
            ["echelon - fair", vs_fair.mean_diff, vs_fair.ci_low, vs_fair.ci_high,
             f"{vs_fair.wins}/{vs_fair.n}"],
            ["echelon - coflow", vs_coflow.mean_diff, vs_coflow.ci_low,
             vs_coflow.ci_high, f"{vs_coflow.wins}/{vs_coflow.n}"],
        ],
    )
    report("E22_seed_robustness", table + "\n\n" + pairing)

    # Echelon never loses on any seed against either baseline ...
    assert vs_fair.wins + sum(
        1 for a, b in zip(fair, echelon) if abs(b - a) < 1e-9
    ) == len(SEEDS)
    # ... and is at least as good on the mean.
    assert echelon_summary.mean <= fair_summary.mean + 1e-9
    assert echelon_summary.mean <= coflow_summary.mean + 1e-9
