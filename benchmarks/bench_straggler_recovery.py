"""E20 -- straggler recovery (extended; the Fig. 6b story under real faults).

A pipeline stage's device runs slower than its profile (thermal throttle,
noisy neighbour). The arrangement still describes the *nominal* pattern,
so the straggler's downstream flows run persistently behind their ideal
finish times -- the exact situation recalibration is for. We sweep the
straggler factor and compare schedulers on completion and on how much of
the slowdown each passes downstream.
"""

import pytest

from repro.analysis import comp_finish_time, format_table
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import linear_chain
from repro.workloads import build_pp_gpipe, uniform_model, with_straggler

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)
HOSTS = ["h0", "h1", "h2", "h3"]
BANDWIDTH = gbps(3)  # the contended regime where scheduling matters


def _run(scheduler, factor):
    job = build_pp_gpipe("pp", MODEL, HOSTS, num_micro_batches=8)
    if factor != 1.0:
        job = with_straggler(job, "h1", factor)
    engine = Engine(linear_chain(4, BANDWIDTH), scheduler)
    job.submit_to(engine)
    return comp_finish_time(engine.run())


def test_straggler_echelon(benchmark):
    assert benchmark(_run, EchelonMaddScheduler(), 1.5) > 0


def test_straggler_sweep(benchmark, report):
    def sweep():
        rows = []
        for factor in (1.0, 1.25, 1.5, 2.0):
            fair = _run(FairSharingScheduler(), factor)
            coflow = _run(CoflowMaddScheduler(), factor)
            echelon = _run(EchelonMaddScheduler(), factor)
            rows.append([factor, fair, coflow, echelon])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "E20_straggler_recovery",
        format_table(
            ["straggler factor (h1)", "fair", "coflow", "echelon"],
            rows,
            title="PP with a straggler stage: nominal arrangements, slow reality",
        ),
    )
    nominal = {row[0]: row for row in rows}[1.0]
    for factor, fair, coflow, echelon in rows:
        # Echelon stays the best scheduler at every straggler level, even
        # though its deadlines are now systematically optimistic.
        assert echelon <= fair + 1e-9, factor
        assert echelon <= coflow + 1e-9, factor
        # And the slowdown it passes through is bounded by the compute
        # slowdown itself (no amplification by the schedule).
        assert echelon / nominal[3] <= factor + 0.05, factor
