"""E2 -- Table 1: Coflow compliance of the five DDLT paradigms.

For each paradigm we measure computation finish time under Coflow (Varys)
and EchelonFlow scheduling. A paradigm is *Coflow-compliant* when the
Coflow abstraction loses nothing -- i.e. echelon == coflow; it is
non-compliant when the staggered arrangement strictly wins. The reproduced
table should match the paper's compliance column:

    DP-AllReduce  compliant      (same flow finish time)
    DP-PS         compliant      (same flow finish time)
    PP            NOT compliant  (staggered flow finish time)
    TP            compliant      (same flow finish time)
    FSDP          NOT compliant  (staggered Coflow finish time)
"""

import pytest

from repro.analysis import comp_finish_time, format_table
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch, linear_chain
from repro.workloads import (
    build_dp_allreduce,
    build_dp_ps,
    build_fsdp,
    build_pp_gpipe,
    build_tp_megatron,
    uniform_model,
)

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)
HOSTS4 = ["h0", "h1", "h2", "h3"]

PARADIGMS = {
    "DP-AllReduce": (
        lambda: build_dp_allreduce("j", MODEL, HOSTS4, bucket_bytes=megabytes(80)),
        lambda: big_switch(4, gbps(10)),
        True,
    ),
    "DP-PS": (
        lambda: build_dp_ps("j", MODEL, HOSTS4, "h4", bucket_bytes=megabytes(80)),
        lambda: big_switch(5, gbps(10)),
        True,
    ),
    "PP": (
        lambda: build_pp_gpipe("j", MODEL, HOSTS4, num_micro_batches=4),
        lambda: linear_chain(4, gbps(10)),
        False,
    ),
    "TP": (
        lambda: build_tp_megatron("j", MODEL, HOSTS4),
        lambda: big_switch(4, gbps(10)),
        True,
    ),
    "FSDP": (
        lambda: build_fsdp("j", MODEL, HOSTS4),
        lambda: big_switch(4, gbps(10)),
        False,
    ),
}


def _measure(build_job, build_topo, scheduler):
    job = build_job()
    engine = Engine(build_topo(), scheduler)
    job.submit_to(engine)
    return comp_finish_time(engine.run())


@pytest.mark.parametrize("paradigm", sorted(PARADIGMS))
def test_table1_paradigm(benchmark, paradigm):
    build_job, build_topo, _compliant = PARADIGMS[paradigm]
    result = benchmark(_measure, build_job, build_topo, EchelonMaddScheduler())
    assert result > 0


def test_table1_compliance(benchmark, report):
    def sweep():
        results = {}
        for paradigm, (build_job, build_topo, _compliant) in PARADIGMS.items():
            results[paradigm] = (
                _measure(build_job, build_topo, FairSharingScheduler()),
                _measure(build_job, build_topo, CoflowMaddScheduler()),
                _measure(build_job, build_topo, EchelonMaddScheduler()),
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for paradigm, (build_job, build_topo, paper_compliant) in PARADIGMS.items():
        fair, coflow, echelon = results[paradigm]
        measured_compliant = abs(echelon - coflow) <= 1e-6 * max(echelon, coflow)
        rows.append(
            [
                paradigm,
                "yes" if paper_compliant else "no",
                "yes" if measured_compliant else "no",
                fair,
                coflow,
                echelon,
                coflow / echelon,
            ]
        )
        assert measured_compliant == paper_compliant, paradigm
        if not paper_compliant:
            # Non-compliant paradigms: echelon strictly beats coflow AND
            # coflow is worse than naive fair sharing (the Fig. 2 claim).
            assert echelon < coflow
            assert fair < coflow
    report(
        "E2_table1_paradigms",
        format_table(
            [
                "paradigm",
                "paper compliant",
                "measured compliant",
                "fair",
                "coflow",
                "echelon",
                "coflow/echelon",
            ],
            rows,
            title="Table 1: Coflow compliance per training paradigm",
        ),
    )
