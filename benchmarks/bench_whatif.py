#!/usr/bin/env python
"""What-if query throughput: warm forks vs. from-scratch replays.

Builds one :class:`repro.whatif.WhatIfService` over the standard
multi-tenant big-switch baseline (16 hosts, 8 staggered jobs, 2
iterations each) and answers the same deterministic query sweep two
ways:

* **warm** -- fork the nearest cached snapshot at or before the query
  time, delta-resimulate the gap, apply the intervention, run the tail.
  Sibling forks share the baseline's MemoizingScheduler fingerprint
  cache, so repeated allocations are dictionary lookups.
* **cold** -- rebuild the whole cluster from scratch and replay from
  t=0 for every query (what answering counterfactuals costs without
  the snapshot spine).

The sweep visits late-run marks (50-90% of the baseline makespan, where
warm starts skip the most history) across all five query kinds, with
``detail="deltas"`` in both arms so the measured cost is simulation, not
report rendering. The first warm pass primes the handle cache and is
reported separately (``warm_first_pass``); steady state is what a
dashboard issuing repeated what-ifs against a fixed baseline sees.

Usage::

    PYTHONPATH=src python benchmarks/bench_whatif.py            # full report
    PYTHONPATH=src python benchmarks/bench_whatif.py --smoke    # CI guard

``--smoke`` answers a reduced sweep and compares the steady-state
warm/cold *speedup ratio* against the checked-in baseline
(``benchmarks/results/bench_whatif_baseline.json``). Ratios are
machine-independent to first order: the guard fails only when the warm
path itself regresses (speedup below baseline/2 or below the 5x floor),
not when CI hardware is slow. Warm and cold answers are also
cross-checked per query. Exit code 1 on regression or mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.whatif import WhatIfService

RESULTS_DIR = ROOT / "benchmarks" / "results"
REPORT_PATH = RESULTS_DIR / "bench_whatif.json"
BASELINE_PATH = RESULTS_DIR / "bench_whatif_baseline.json"

HOSTS = 16
JOBS = 8
ITERATIONS = 2
#: Steady-state passes over the sweep (first warm pass primes the
#: handle cache and is excluded from the steady-state rate).
PASSES = 3
#: --smoke fails when the warm/cold speedup drops below
#: baseline_speedup / SMOKE_FACTOR ...
SMOKE_FACTOR = 2.0
#: ... or below this absolute floor (the acceptance bar), whichever is
#: stricter.
MIN_SPEEDUP = 5.0


def build_queries() -> list:
    """A deterministic sweep: every kind, late-run marks."""
    queries = []
    for mark in (50, 60, 70, 80, 90):
        queries.append(f"degrade_link:h1-core@{mark}%+8%,factor=0.5")
        queries.append(f"kill_link:h2-core@{mark}%+5%")
        queries.append(f"submit_job:dp@{mark}%")
    queries.append("add_tenant:fsdp@70%,jobs=2")
    queries.append("remove_job:fsdp7@0")
    return queries


def timed_pass(service: WhatIfService, queries, mode: str):
    start = time.perf_counter()
    results = service.run_batch(queries, mode=mode, detail="deltas")
    elapsed = time.perf_counter() - start
    return elapsed, results


def cross_check(warm_results, cold_results) -> list:
    """Warm forks and cold replays must answer identically (to the memo
    cache's fingerprint quantum, 1 part in 1e9)."""
    problems = []
    for warm, cold in zip(warm_results, cold_results):
        scale = max(1.0, abs(cold.variant_makespan))
        if abs(warm.variant_makespan - cold.variant_makespan) > 1e-9 * scale:
            problems.append(
                f"{warm.query.describe()!r}: warm makespan "
                f"{warm.variant_makespan!r} != cold {cold.variant_makespan!r}"
            )
        if warm.added_jobs != cold.added_jobs or (
            warm.removed_jobs != cold.removed_jobs
        ):
            problems.append(
                f"{warm.query.describe()!r}: job-set deltas differ"
            )
    return problems


def run_bench(queries, passes: int) -> dict:
    build_start = time.perf_counter()
    # The sanitizer is forced off: this benchmark measures the fork/replay
    # hot path, and CI runs it in the job that sets REPRO_CHECK=strict.
    service = WhatIfService.build(
        hosts=HOSTS, jobs=JOBS, iterations=ITERATIONS, sanitizer=False
    )
    build_seconds = time.perf_counter() - build_start
    print(
        f"[bench_whatif] baseline: {HOSTS} hosts, {JOBS} jobs, makespan "
        f"{service.baseline_makespan:.3f}s sim, built in {build_seconds:.3f}s",
        flush=True,
    )

    first_seconds, warm_results = timed_pass(service, queries, "warm")
    print(
        f"[bench_whatif] warm first pass (cache priming): "
        f"{len(queries) / first_seconds:.2f} queries/s",
        flush=True,
    )
    steady_seconds = 0.0
    for _ in range(passes):
        elapsed, warm_results = timed_pass(service, queries, "warm")
        steady_seconds += elapsed
    warm_qps = len(queries) * passes / steady_seconds
    print(f"[bench_whatif] warm steady state: {warm_qps:.2f} queries/s", flush=True)

    cold_seconds, cold_results = timed_pass(service, queries, "cold")
    cold_qps = len(queries) / cold_seconds
    print(f"[bench_whatif] cold from-scratch: {cold_qps:.2f} queries/s", flush=True)

    problems = cross_check(warm_results, cold_results)
    if problems:
        raise SystemExit(
            "warm/cold answer mismatch:\n  " + "\n  ".join(problems)
        )

    speedup = warm_qps / cold_qps
    print(f"[bench_whatif] speedup: {speedup:.2f}x", flush=True)
    return {
        "benchmark": "bench_whatif",
        "scenario": {
            "hosts": HOSTS,
            "jobs": JOBS,
            "iterations": ITERATIONS,
            "queries": len(queries),
            "passes": passes,
            "detail": "deltas",
        },
        "baseline_makespan": service.baseline_makespan,
        "baseline_build_seconds": round(build_seconds, 6),
        "warm_first_pass_qps": round(len(queries) / first_seconds, 4),
        "warm_qps": round(warm_qps, 4),
        "cold_qps": round(cold_qps, 4),
        "speedup": round(speedup, 3),
        "cached_handles": len(service._handles),
    }


def smoke() -> int:
    """CI guard: the warm path must stay >= 5x and near its baseline."""
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except FileNotFoundError:
        print(f"[bench_whatif] missing baseline {BASELINE_PATH}", file=sys.stderr)
        return 1
    report = run_bench(build_queries(), passes=1)
    floor = max(MIN_SPEEDUP, baseline["speedup"] / SMOKE_FACTOR)
    print(
        f"[bench_whatif] smoke: speedup {report['speedup']:.2f}x, baseline "
        f"{baseline['speedup']:.2f}x, required >= {floor:.2f}x"
    )
    if report["speedup"] < floor:
        print(
            f"[bench_whatif] REGRESSION: warm/cold speedup "
            f"{report['speedup']:.2f}x is below {floor:.2f}x "
            f"(baseline {baseline['speedup']:.2f}x / {SMOKE_FACTOR}, "
            f"floor {MIN_SPEEDUP}x)",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--passes", type=int, default=PASSES,
        help="steady-state warm passes over the sweep",
    )
    parser.add_argument(
        "--out", default=str(REPORT_PATH), help="JSON report destination"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="regression guard against the checked-in baseline",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke()

    report = run_bench(build_queries(), passes=args.passes)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_whatif] report written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
