"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table or figure), prints the
reproduced rows/series, and writes them to ``benchmarks/results/<id>.txt``
so EXPERIMENTS.md can reference stable outputs. pytest-benchmark measures
the simulation cost itself.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Write (and echo) a named experiment report."""

    def _write(experiment_id: str, text: str) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {experiment_id} ===\n{text}")

    return _write
