#!/usr/bin/env python3
"""Extending EchelonFlow to a future training paradigm.

The paper argues the abstraction is "extensible to future DDLT paradigms,
as long as their computation patterns can be profiled". This example
invents one -- a two-speed interleaved pipeline whose consumer alternates
between a light and a heavy computation per micro-batch -- and wires it up
end-to-end:

1. profile the consumer's per-unit durations with the in-simulator
   profiler (Section 3.1's "distance" extraction);
2. build a :class:`TabledArrangement` from the profiled durations (the
   general form the paper sketches for non-uniform PP variants);
3. schedule with the unmodified EchelonFlow coordinator.

No scheduler changes are needed: the arrangement function *is* the
extension point.

Run:  python examples/custom_paradigm.py
"""

from repro import (
    CoflowMaddScheduler,
    EchelonFlow,
    EchelonMaddScheduler,
    Engine,
    FairSharingScheduler,
    Flow,
    TaskDag,
    comp_finish_time,
    format_table,
    two_hosts,
)
from repro.core.arrangement import arrangement_from_compute_durations
from repro.profiling import ComputeProfile
from repro.workloads.job import BuiltJob

#: The invented pattern: light (1s) and heavy (3s) units alternate.
UNIT_TIMES = [1.0, 3.0, 1.0, 3.0, 1.0, 3.0]
FLOW_SIZE = 2.0  # bytes per micro-batch over a unit-bandwidth link
RELEASE_GAP = 1.0


def build_two_speed_job(job_id, arrangement):
    """Producer releases a micro-batch every second; consumer alternates
    light/heavy computations. One EchelonFlow with the given arrangement."""
    dag = TaskDag(job_id)
    ef = EchelonFlow(f"{job_id}/ef", arrangement, job_id=job_id)
    previous_release = None
    previous_consume = None
    for m, unit_time in enumerate(UNIT_TIMES):
        release = f"rel{m}"
        dag.add_compute(
            release,
            device="h0",
            duration=0.0 if m == 0 else RELEASE_GAP,
            deps=[previous_release] if previous_release else [],
            priority=m,
            tag=f"produce {m}",
        )
        previous_release = release
        flow = Flow(
            "h0", "h1", FLOW_SIZE, group_id=ef.ef_id, index_in_group=m, job_id=job_id
        )
        ef.add_flow(flow)
        dag.add_comm(f"xfer{m}", [flow], deps=[release])
        consume_deps = [f"xfer{m}"]
        if previous_consume:
            consume_deps.append(previous_consume)
        consume = f"cons{m}"
        dag.add_compute(
            consume,
            device="h1",
            duration=unit_time,
            deps=consume_deps,
            priority=m,
            tag=f"consume unit {m}",
        )
        previous_consume = consume
    return BuiltJob(dag=dag, echelonflows=[ef], paradigm="two-speed-pipeline")


def profile_consumer_durations():
    """Step 1: run once under plain fair sharing and profile the consumer.

    A real deployment profiles on the framework; the mechanics -- run a
    few units, aggregate spans by tag -- are identical.
    """
    from repro.core.arrangement import CoflowArrangement

    warmup = build_two_speed_job("warmup", CoflowArrangement())
    engine = Engine(two_hosts(1.0), FairSharingScheduler())
    warmup.submit_to(engine)
    trace = engine.run()
    profile = ComputeProfile.from_trace(trace, job_id="warmup")
    return [
        profile.mean_duration("h1", f"consume unit {m}")
        for m in range(len(UNIT_TIMES))
    ]


def main():
    durations = profile_consumer_durations()
    arrangement = arrangement_from_compute_durations(durations)
    offsets = [arrangement.offset(j) for j in range(len(UNIT_TIMES))]
    print(f"Profiled unit durations: {durations}")
    print(f"Arrangement offsets (ideal finish stagger): {offsets}\n")

    rows = []
    for scheduler in (
        FairSharingScheduler(),
        CoflowMaddScheduler(),
        EchelonMaddScheduler(),
    ):
        job = build_two_speed_job(f"job-{scheduler.name}", arrangement)
        engine = Engine(two_hosts(1.0), scheduler)
        job.submit_to(engine)
        trace = engine.run()
        rows.append([scheduler.name, comp_finish_time(trace)])

    print(
        format_table(
            ["scheduler", "comp finish time"],
            rows,
            title="A future paradigm, scheduled by the unmodified coordinator",
        )
    )


if __name__ == "__main__":
    main()
