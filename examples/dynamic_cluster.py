#!/usr/bin/env python3
"""A day in the life of a shared training cluster.

Jobs arrive as a Poisson stream (ResNet-50 DP, BERT FSDP mixes), wait for
free hosts, train, and leave. The cluster manager handles admission,
first-fit placement, and host release; the coordinator schedules every
tenant's flows together. We compare coordinator algorithms on mean and
tail job completion (queueing included) and show the per-job lifecycle.

Run:  python examples/dynamic_cluster.py
"""

from repro import Engine, big_switch, format_table, get_model
from repro.analysis import percentile
from repro.core.units import gbps
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.workloads import (
    ClusterManager,
    JobTemplate,
    build_dp_allreduce,
    build_fsdp,
    poisson_arrivals,
)
from repro.workloads.placement import ClusterPlacer

N_HOSTS = 12
N_JOBS = 20
ARRIVAL_RATE = 12.0  # jobs per second: sustained contention
SEED = 11


def make_templates():
    resnet = get_model("resnet50", batch_scale=8.0)
    bert = get_model("bert_large")
    return [
        JobTemplate(
            "resnet-dp",
            lambda jid, ws: build_dp_allreduce(jid, resnet, ws, bucket_bytes=25e6),
            worker_count=4,
            weight=2.0,
        ),
        JobTemplate(
            "bert-fsdp",
            lambda jid, ws: build_fsdp(jid, bert, ws),
            worker_count=4,
            weight=1.0,
        ),
    ]


def run_under(scheduler):
    topology = big_switch(N_HOSTS, gbps(10))
    engine = Engine(topology, scheduler)
    manager = ClusterManager(engine, ClusterPlacer(topology))
    manager.schedule(
        poisson_arrivals(make_templates(), ARRIVAL_RATE, N_JOBS, seed=SEED)
    )
    engine.run()
    return manager


def main():
    rows = []
    echelon_manager = None
    for scheduler in (
        FairSharingScheduler(),
        CoflowMaddScheduler(),
        EchelonMaddScheduler(),
    ):
        manager = run_under(scheduler)
        jcts = [r.completion_time for r in manager.completed_records()]
        rows.append(
            [
                scheduler.name,
                len(jcts),
                manager.mean_jct(),
                percentile(jcts, 95),
                manager.mean_queueing_delay(),
            ]
        )
        if scheduler.name == "echelon":
            echelon_manager = manager

    print(
        format_table(
            ["coordinator", "completed", "mean JCT (s)", "p95 JCT (s)", "mean queue (s)"],
            rows,
            title=(
                f"{N_JOBS} Poisson arrivals at {ARRIVAL_RATE}/s "
                f"on {N_HOSTS} hosts"
            ),
        )
    )

    print("\nFirst eight job lifecycles under echelon:\n")
    lifecycle_rows = []
    records = sorted(
        echelon_manager.completed_records(), key=lambda r: r.arrival.time
    )
    for record in records[:8]:
        lifecycle_rows.append(
            [
                record.arrival.job_id,
                record.arrival.time,
                record.queueing_delay,
                record.completed_at - record.submitted_at,
                ",".join(record.workers),
            ]
        )
    print(
        format_table(
            ["job", "arrival", "queued (s)", "service (s)", "hosts"],
            lifecycle_rows,
        )
    )


if __name__ == "__main__":
    main()
