#!/usr/bin/env python3
"""FSDP / ZeRO-3: why "finish all flows together" is the wrong goal.

BERT-Large sharded over 8 workers. Every layer's parameters are
re-assembled by an all-gather before use; with prefetching, several
all-gathers are in flight at once and they must finish *staggered* -- each
just in time for its layer's compute (Eq. 7) -- not simultaneously.

The example prints the per-all-gather timing under Coflow vs EchelonFlow
scheduling so you can see the mechanism, not just the bottom line: under
Coflow, concurrent gathers finish together and the next layer waits;
under EchelonFlow, the imminent layer's gather preempts the prefetches.

Run:  python examples/fsdp_zero3.py
"""

from repro import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    Engine,
    FairSharingScheduler,
    big_switch,
    comp_finish_time,
    format_table,
    get_model,
)
from repro.core.units import gbps
from repro.workloads import build_fsdp

WORKERS = [f"h{i}" for i in range(8)]
MODEL = get_model("bert_large", batch_scale=2.0)


def run_under(scheduler):
    job = build_fsdp("bert", MODEL, WORKERS, prefetch_limit=2)
    engine = Engine(big_switch(8, gbps(10)), scheduler)
    job.submit_to(engine)
    trace = engine.run()
    return trace, job


def first_forward_gathers(trace, count=6):
    """(layer, last-flow finish) for the first few forward all-gathers."""
    finishes = {}
    for record in trace.flow_records:
        tag = record.flow.tag
        if tag.startswith("ag fwd l"):
            layer = int(tag.split("ag fwd l")[1].split("/")[0])
            finishes[layer] = max(finishes.get(layer, 0.0), record.finish)
    return [(layer, finishes[layer]) for layer in sorted(finishes)[:count]]


def main():
    rows = []
    gather_columns = {}
    for scheduler in (
        FairSharingScheduler(),
        CoflowMaddScheduler(),
        EchelonMaddScheduler(),
    ):
        trace, _job = run_under(scheduler)
        rows.append([scheduler.name, comp_finish_time(trace)])
        gather_columns[scheduler.name] = first_forward_gathers(trace)

    print(
        format_table(
            ["scheduler", "iteration time (s)"],
            rows,
            title=f"BERT-Large FSDP on {len(WORKERS)} workers (Table 1, row 5)",
        )
    )

    print("\nWhen does each layer's all-gather finish? (first 6 layers)\n")
    gather_rows = []
    for (layer, coflow_t), (_, echelon_t) in zip(
        gather_columns["coflow"], gather_columns["echelon"]
    ):
        gather_rows.append([f"layer {layer}", coflow_t * 1e3, echelon_t * 1e3])
    print(
        format_table(
            ["all-gather", "coflow finish (ms)", "echelon finish (ms)"],
            gather_rows,
            title="Coflow bunches finishes; EchelonFlow staggers them (Eq. 7)",
        )
    )


if __name__ == "__main__":
    main()
