#!/usr/bin/env python3
"""Pipeline-parallel training of GPT-2 XL across a 4-stage chain.

Demonstrates the full workload path: a realistic model from the zoo,
pipeline partitioning, the per-boundary staggered EchelonFlows of Eq. 6,
and a scheduler comparison with the GPipe bubble-fraction sanity check.
The network is sized so activations genuinely contend (the regime where
scheduling matters).

Run:  python examples/gpipe_cluster.py
"""

from repro import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    Engine,
    FairSharingScheduler,
    build_pp_gpipe,
    comp_finish_time,
    format_table,
    get_model,
    gpu_idleness,
    linear_chain,
    pipeline_bubble_fraction,
    render_device_timeline,
)
from repro.core.units import gbps

STAGES = 4
MICRO_BATCHES = 8
# A big batch over 2 Gbps inter-stage links: each activation transfer takes
# longer than one micro-batch of compute, so transfers pile up on the link
# and the flow schedule decides the pipeline's shape -- the Fig. 2 regime.
MODEL = get_model("gpt2_xl", batch_scale=4.0)
LINK_BANDWIDTH = gbps(2)
WORKERS = [f"h{i}" for i in range(STAGES)]


def run_under(scheduler):
    job = build_pp_gpipe("gpt2", MODEL, WORKERS, num_micro_batches=MICRO_BATCHES)
    engine = Engine(linear_chain(STAGES, LINK_BANDWIDTH), scheduler)
    job.submit_to(engine)
    trace = engine.run()
    return trace


def main():
    rows = []
    echelon_trace = None
    for scheduler in (
        FairSharingScheduler(),
        CoflowMaddScheduler(),
        EchelonMaddScheduler(),
    ):
        trace = run_under(scheduler)
        idleness = gpu_idleness(trace, horizon=trace.end_time)
        idle = 1.0 - idleness.total_busy / (STAGES * trace.end_time)
        rows.append([scheduler.name, comp_finish_time(trace), f"{idle:.1%}"])
        if scheduler.name == "echelon":
            echelon_trace = trace

    analytic_bubble = pipeline_bubble_fraction(STAGES, MICRO_BATCHES)
    print(
        format_table(
            ["scheduler", "iteration time (s)", "GPU idle share"],
            rows,
            title=(
                f"GPT-2 XL, {STAGES}-stage GPipe, {MICRO_BATCHES} micro-batches "
                f"(analytic bubble floor: {analytic_bubble:.1%})"
            ),
        )
    )
    print("\nEchelonFlow device timeline (digits = micro-batch index):\n")
    print(render_device_timeline(echelon_trace, width=72))


if __name__ == "__main__":
    main()
