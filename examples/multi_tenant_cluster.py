#!/usr/bin/env python3
"""A multi-tenant GPU cluster through the full Fig. 7 system stack.

Three training jobs with different paradigms (BERT-Large FSDP, ResNet-50
DP-AllReduce, GPT-2 pipeline) share an oversubscribed leaf-spine fabric.
Each job's framework adapter reports its EchelonFlows to a per-job Agent;
one cluster Coordinator computes bandwidth allocations that the backends
enforce. This is the "communication scheduling across DDLT jobs" that
per-job optimizers cannot do.

Run:  python examples/multi_tenant_cluster.py
"""

from repro import (
    Coordinator,
    format_table,
    get_model,
    leaf_spine,
    run_cluster,
)
from repro.core.units import gbps
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.workloads import build_dp_allreduce, build_fsdp, build_pp_gpipe


def make_jobs():
    """Fresh jobs each run (EchelonFlows are single-use)."""
    bert = get_model("bert_large", batch_scale=2.0)
    resnet = get_model("resnet50", batch_scale=8.0)
    gpt2 = get_model("gpt2_xl")
    return [
        # Placements cross leaves, so jobs contend in the 2:1 core.
        (build_fsdp("bert-fsdp", bert, ["h0", "h4", "h8", "h12"]), 0.0),
        (
            build_dp_allreduce(
                "resnet-dp",
                resnet,
                ["h1", "h5", "h9", "h13"],
                bucket_bytes=25e6,
            ),
            0.002,
        ),
        (
            build_pp_gpipe(
                "gpt2-pp", gpt2, ["h2", "h6", "h10", "h14"], num_micro_batches=4
            ),
            0.004,
        ),
    ]


def topology():
    return leaf_spine(
        n_leaves=4,
        hosts_per_leaf=4,
        host_bandwidth=gbps(10),
        oversubscription=2.0,
    )


def main():
    rows = []
    for label, algorithm in (
        ("fair", FairSharingScheduler()),
        ("coflow", CoflowMaddScheduler()),
        # The default two-level ordering balances mean JCT and tenant
        # fairness; the most-behind-first variant gives the structurally
        # latest tenant (here bert-fsdp) absolute priority at the other
        # tenants' expense -- the operator picks the policy per cluster.
        ("echelon (default)", EchelonMaddScheduler()),
        ("echelon (protective)", EchelonMaddScheduler(ordering="tardiness")),
    ):
        run = run_cluster(
            topology(), make_jobs(), coordinator=Coordinator(algorithm=algorithm)
        )
        jcts = run.job_completion_times()
        rows.append(
            [
                label,
                *[jcts[name] for name in ("bert-fsdp", "resnet-dp", "gpt2-pp")],
                sum(jcts.values()) / len(jcts),
            ]
        )
        if label.startswith("echelon"):
            coordinator = run.coordinator

    print(
        format_table(
            ["coordinator algorithm", "bert-fsdp", "resnet-dp", "gpt2-pp", "mean JCT"],
            rows,
            title="Per-job completion times (s) on a shared 2:1 leaf-spine",
        )
    )
    print(
        f"\nControl plane under echelon: "
        f"{len(coordinator.request_log)} EchelonFlow requests, "
        f"{coordinator.invocations} scheduling invocations."
    )


if __name__ == "__main__":
    main()
