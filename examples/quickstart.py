#!/usr/bin/env python3
"""Quickstart: the Fig. 2 motivating example in ~40 lines.

A pipeline-parallel boundary: the producer releases micro-batch activations
at t = 0, 1, 2 over a unit-bandwidth link; the consumer computes each
micro-batch for 2 time units, in order. We run it under three schedulers
and print the "comp finish time" each achieves -- EchelonFlow lands on the
paper's optimal value of 8, and Coflow is *worse than plain fair sharing*.

Run:  python examples/quickstart.py
"""

from repro import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    Engine,
    FairSharingScheduler,
    build_pipeline_segment,
    comp_finish_time,
    format_table,
    render_flow_timeline,
    two_hosts,
)
from repro.analysis import bar_chart


def run_under(scheduler):
    """One fresh simulation of the Fig. 2 workload under a scheduler."""
    topology = two_hosts(link_bandwidth=1.0)  # one B-capacity duplex link
    job = build_pipeline_segment(
        "fig2",
        "h0",  # producer
        "h1",  # consumer
        release_times=[0.0, 1.0, 2.0],  # when each micro-batch is ready
        flow_sizes=[2.0, 2.0, 2.0],  # 2B bytes of activations each
        consumer_compute_times=[2.0, 2.0, 2.0],
    )
    engine = Engine(topology, scheduler)
    job.submit_to(engine)  # registers the EchelonFlow + submits the DAG
    trace = engine.run()
    return comp_finish_time(trace), trace


def main():
    rows = []
    timelines = {}
    for scheduler in (
        FairSharingScheduler(),
        CoflowMaddScheduler(),
        EchelonMaddScheduler(),
    ):
        finish, trace = run_under(scheduler)
        rows.append([scheduler.name, finish])
        timelines[scheduler.name] = trace

    print(
        format_table(
            ["scheduler", "comp finish time"],
            rows,
            title="Fig. 2 motivating example (paper: EchelonFlow = 8, Coflow worst)",
        )
    )
    print()
    print(bar_chart([(name, value) for name, value in rows], width=36, unit=" t.u."))
    print("\nEchelonFlow's staggered transfers ('|' marks ideal finish times):\n")
    print(render_flow_timeline(timelines["echelon"], width=60))


if __name__ == "__main__":
    main()
