#!/usr/bin/env python3
"""When reality breaks the profile: a straggler stage in a pipeline.

The arrangement function promises a computation pattern; then stage h1's
GPU throttles to half speed. EchelonFlow's tardiness anchoring (Fig. 6b)
means the downstream flows simply become maximally urgent and the
schedule keeps the rest of the formation as tight as physics allows --
the profile being stale degrades into "run flat out", never into a wrong
ordering.

Run:  python examples/straggler_recovery.py
"""

from repro import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    Engine,
    FairSharingScheduler,
    build_pp_gpipe,
    comp_finish_time,
    format_table,
    get_model,
    linear_chain,
)
from repro.core.units import gbps
from repro.workloads import with_straggler

STAGES = 4
MICRO_BATCHES = 8
MODEL = get_model("gpt2_xl", batch_scale=4.0)
WORKERS = [f"h{i}" for i in range(STAGES)]
BANDWIDTH = gbps(2)  # contended: the regime where scheduling matters


def run_under(scheduler, straggler_factor):
    job = build_pp_gpipe("gpt2", MODEL, WORKERS, num_micro_batches=MICRO_BATCHES)
    if straggler_factor != 1.0:
        # Slow one stage's device; the EchelonFlows keep claiming the
        # *nominal* per-micro-batch distance, as a stale profile would.
        job = with_straggler(job, "h1", straggler_factor)
    engine = Engine(linear_chain(STAGES, BANDWIDTH), scheduler)
    job.submit_to(engine)
    return comp_finish_time(engine.run())


def main():
    rows = []
    for factor in (1.0, 1.5, 2.0):
        fair = run_under(FairSharingScheduler(), factor)
        coflow = run_under(CoflowMaddScheduler(), factor)
        echelon = run_under(EchelonMaddScheduler(), factor)
        rows.append([f"{factor:g}x", fair, coflow, echelon, fair / echelon])
    print(
        format_table(
            ["h1 slowdown", "fair", "coflow", "echelon", "echelon speedup vs fair"],
            rows,
            title=(
                "GPT-2 XL pipeline with a straggler stage "
                "(arrangements stay nominal)"
            ),
        )
    )
    nominal = rows[0][3]
    worst = rows[-1][3]
    print(
        f"\nEchelon passes through {worst / nominal:.2f}x of the 2x compute "
        f"slowdown -- stale profiles degrade gracefully, and the scheduling "
        f"advantage over fair/coflow persists at every level."
    )


if __name__ == "__main__":
    main()
