"""Shim for legacy editable installs on offline environments without wheel."""

from setuptools import setup

setup()
