"""EchelonFlow: flow scheduling for distributed deep learning training.

Reproduction of Pan, Lei, Li, Xie, Yuan & Xia, "Efficient Flow Scheduling
in Distributed Deep Learning Training with Echelon Formation" (HotNets '22).

Quick tour
----------

>>> from repro import (
...     two_hosts, Engine, EchelonMaddScheduler, build_pipeline_segment,
... )
>>> topo = two_hosts(link_bandwidth=1.0)
>>> job = build_pipeline_segment(
...     "demo", "h0", "h1",
...     release_times=[0.0, 1.0, 2.0],
...     flow_sizes=[2.0, 2.0, 2.0],
...     consumer_compute_times=[2.0, 2.0, 2.0],
... )
>>> engine = Engine(topo, EchelonMaddScheduler())
>>> job.submit_to(engine)
>>> trace = engine.run()
>>> round(trace.last_compute_end(), 6)
8.0

The packages:

* :mod:`repro.core` -- the EchelonFlow abstraction (Defs. 3.1-3.3).
* :mod:`repro.topology` -- capacitated fabrics and routing.
* :mod:`repro.simulator` -- discrete-event compute + fluid network engine.
* :mod:`repro.workloads` -- the Table-1 training paradigms as DAG builders.
* :mod:`repro.scheduling` -- fair sharing, SJF, Varys, and adapted MADD.
* :mod:`repro.faults` -- chaos injection: link faults, rerouting,
  graceful scheduler degradation.
* :mod:`repro.profiling` -- arrangement-distance profiling and noise.
* :mod:`repro.system` -- the Fig. 7 agent/coordinator/backend sketch.
* :mod:`repro.analysis` -- metrics, timelines, and table formatting.
"""

from .analysis import (
    comp_finish_time,
    format_table,
    gpu_idleness,
    job_completion_time,
    pipeline_bubble_fraction,
    render_device_timeline,
    render_flow_timeline,
    tardiness_report,
)
from .core import (
    ArrangementFunction,
    CoflowArrangement,
    EchelonFlow,
    Flow,
    PhasedArrangement,
    StaggeredArrangement,
    TabledArrangement,
    evaluate_tardiness,
    make_coflow,
)
from .scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    ShortestFlowFirstScheduler,
    make_scheduler,
    scheduler_names,
)
from .faults import (
    FaultInjector,
    FaultSchedule,
    ResilientScheduler,
    parse_fault_spec,
)
from .simulator import Engine, TaskDag
from .system import Coordinator, EchelonFlowAgent, run_cluster
from .topology import (
    Topology,
    big_switch,
    fat_tree,
    leaf_spine,
    linear_chain,
    two_hosts,
)
from .workloads import (
    BuiltJob,
    build_dp_allreduce,
    build_dp_ps,
    build_fsdp,
    build_pipeline_segment,
    build_pp_1f1b,
    build_pp_gpipe,
    build_tp_megatron,
    get_model,
    uniform_model,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # core
    "Flow",
    "EchelonFlow",
    "ArrangementFunction",
    "CoflowArrangement",
    "StaggeredArrangement",
    "PhasedArrangement",
    "TabledArrangement",
    "make_coflow",
    "evaluate_tardiness",
    # topology
    "Topology",
    "big_switch",
    "two_hosts",
    "linear_chain",
    "leaf_spine",
    "fat_tree",
    # simulator
    "Engine",
    "TaskDag",
    # scheduling
    "FairSharingScheduler",
    "ShortestFlowFirstScheduler",
    "CoflowMaddScheduler",
    "EchelonMaddScheduler",
    "make_scheduler",
    "scheduler_names",
    # faults
    "FaultInjector",
    "FaultSchedule",
    "ResilientScheduler",
    "parse_fault_spec",
    # workloads
    "BuiltJob",
    "build_dp_allreduce",
    "build_dp_ps",
    "build_pp_gpipe",
    "build_pp_1f1b",
    "build_pipeline_segment",
    "build_tp_megatron",
    "build_fsdp",
    "get_model",
    "uniform_model",
    # system
    "Coordinator",
    "EchelonFlowAgent",
    "run_cluster",
    # analysis
    "comp_finish_time",
    "job_completion_time",
    "gpu_idleness",
    "pipeline_bubble_fraction",
    "tardiness_report",
    "render_device_timeline",
    "render_flow_timeline",
    "format_table",
]
