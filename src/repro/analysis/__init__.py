"""Measurement and reporting over simulation traces."""

from .ascii_plot import bar_chart, series_plot
from .export import (
    chrome_trace,
    flows_to_csv,
    trace_to_dict,
    trace_to_json,
    write_trace,
)
from .fairness import (
    isolated_completion_times,
    jain_index,
    shared_completion_times,
    slowdowns,
)
from .matrix import ExperimentCase, MatrixResult, run_matrix, standard_battery
from .metrics import (
    IdlenessReport,
    comp_finish_time,
    flow_completion_times,
    gpu_idleness,
    iteration_time,
    job_completion_time,
    mean,
    percentile,
    pipeline_bubble_fraction,
    speedup,
    tardiness_report,
)
from .stats import (
    PairedComparison,
    Summary,
    bootstrap_ci,
    paired_compare,
    replicate,
    summarize,
)
from .tables import format_comparison, format_table
from .validate import (
    TraceValidationError,
    validate_compute_spans,
    validate_dag_order,
    validate_flow_records,
    validate_trace,
)
from .timeline import render_device_timeline, render_flow_timeline

__all__ = [
    "bar_chart",
    "series_plot",
    "trace_to_dict",
    "trace_to_json",
    "flows_to_csv",
    "chrome_trace",
    "write_trace",
    "validate_trace",
    "validate_flow_records",
    "validate_compute_spans",
    "validate_dag_order",
    "TraceValidationError",
    "ExperimentCase",
    "MatrixResult",
    "run_matrix",
    "standard_battery",
    "Summary",
    "summarize",
    "bootstrap_ci",
    "PairedComparison",
    "paired_compare",
    "replicate",
    "jain_index",
    "slowdowns",
    "isolated_completion_times",
    "shared_completion_times",
    "comp_finish_time",
    "job_completion_time",
    "iteration_time",
    "gpu_idleness",
    "IdlenessReport",
    "pipeline_bubble_fraction",
    "tardiness_report",
    "flow_completion_times",
    "mean",
    "percentile",
    "speedup",
    "format_table",
    "format_comparison",
    "render_device_timeline",
    "render_flow_timeline",
]
