"""Terminal plots: horizontal bars and line series in plain ASCII.

The repository is terminal-first (no matplotlib); sweeps read better as
pictures than as digits. Two primitives cover the benches' needs:

* :func:`bar_chart` -- labelled horizontal bars with value annotations.
* :func:`series_plot` -- one or more (x, y) series on a shared character
  grid, e.g. JCT vs interleaving depth per scheduler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_GLYPHS = "ox+*#@%&"


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bars scaled to the longest value."""
    if not items:
        raise ValueError("bar_chart needs at least one item")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    for _label, value in items:
        if value < 0:
            raise ValueError("bar_chart values must be non-negative")
    peak = max(value for _label, value in items)
    label_width = max(len(label) for label, _value in items)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in items:
        filled = int(round(width * value / peak)) if peak > 0 else 0
        bar = "#" * filled
        lines.append(
            f"{label:>{label_width}} |{bar:<{width}}| {value:.4g}{unit}"
        )
    return "\n".join(lines)


def series_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Scatter/line plot of named series on one grid.

    Each series gets a glyph; a legend maps glyphs back to names.
    Overlapping points render as ``"*"``.
    """
    if not series:
        raise ValueError("series_plot needs at least one series")
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("series_plot needs at least one point")
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = int(round((x - x_low) / x_span * (width - 1)))
        row = int(round((y - y_low) / y_span * (height - 1)))
        return height - 1 - row, col

    for index, (name, pts) in enumerate(sorted(series.items())):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pts:
            row, col = cell(x, y)
            grid[row][col] = "*" if grid[row][col] not in (" ", glyph) else glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_high:>10.4g} +{'-' * width}+")
    for row in grid:
        lines.append(f"{'':>10} |{''.join(row)}|")
    lines.append(f"{y_low:>10.4g} +{'-' * width}+")
    lines.append(f"{'':>11}{x_low:<.4g}{'':>{max(1, width - 12)}}{x_high:.4g}")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} = {name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(f"{'':>11}{legend}")
    return "\n".join(lines)
