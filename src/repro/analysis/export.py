"""Trace exporters: JSON, CSV, and Chrome trace-event format.

``chrome_trace`` output loads directly into ``chrome://tracing`` /
Perfetto: one row per device with compute spans, one row per link
direction with flow spans, so the echelon formation is literally visible.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional

from ..simulator.trace import SimulationTrace

#: Trace-event timestamps are microseconds; our traces are seconds.
_US = 1e6


def trace_to_dict(trace: SimulationTrace) -> Dict:
    """A plain-data summary of a trace (json.dumps-able)."""
    return {
        "end_time": trace.end_time,
        "compute_spans": [
            {
                "task_id": span.task_id,
                "device": span.device,
                "start": span.start,
                "end": span.end,
                "job_id": span.job_id,
                "tag": span.tag,
            }
            for span in trace.compute_spans
        ],
        "flows": [
            {
                "flow_id": record.flow.flow_id,
                "src": record.flow.src,
                "dst": record.flow.dst,
                "size": record.flow.size,
                "group_id": record.flow.group_id,
                "index_in_group": record.flow.index_in_group,
                "job_id": record.flow.job_id,
                "tag": record.flow.tag,
                "start": record.start,
                "finish": record.finish,
                "ideal_finish": record.ideal_finish,
                "tardiness": record.tardiness,
            }
            for record in trace.flow_records
        ],
        "task_events": [
            {
                "task_id": event.task_id,
                "kind": event.kind,
                "time": event.time,
                "job_id": event.job_id,
            }
            for event in trace.task_events
        ],
    }


def trace_to_json(trace: SimulationTrace, indent: Optional[int] = None) -> str:
    return json.dumps(trace_to_dict(trace), indent=indent, sort_keys=True)


def flows_to_csv(trace: SimulationTrace) -> str:
    """Flow records as CSV (one row per delivered flow)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "flow_id",
            "src",
            "dst",
            "size",
            "group_id",
            "index_in_group",
            "job_id",
            "start",
            "finish",
            "ideal_finish",
            "tardiness",
        ]
    )
    for record in trace.flow_records:
        writer.writerow(
            [
                record.flow.flow_id,
                record.flow.src,
                record.flow.dst,
                record.flow.size,
                record.flow.group_id or "",
                record.flow.index_in_group,
                record.flow.job_id or "",
                record.start,
                record.finish,
                "" if record.ideal_finish is None else record.ideal_finish,
                "" if record.tardiness is None else record.tardiness,
            ]
        )
    return buffer.getvalue()


def chrome_trace_events(trace: SimulationTrace) -> List[Dict]:
    """The trace-event list behind :func:`chrome_trace`.

    Exposed separately so callers (notably :mod:`repro.obs.chrome`) can
    append extra events -- counter tracks, metadata -- before wrapping.
    """
    events: List[Dict] = []
    device_pids: Dict[str, int] = {}
    link_pids: Dict[str, int] = {}

    def pid_of(table: Dict[str, int], name: str, base: int) -> int:
        if name not in table:
            table[name] = base + len(table)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": table[name],
                    "args": {"name": name},
                }
            )
        return table[name]

    for span in trace.compute_spans:
        pid = pid_of(device_pids, f"device {span.device}", 1000)
        events.append(
            {
                "name": span.tag or span.task_id,
                "cat": "compute",
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "args": {"task_id": span.task_id, "job": span.job_id},
            }
        )
    for record in trace.flow_records:
        track = f"link {record.flow.src}->{record.flow.dst}"
        pid = pid_of(link_pids, track, 2000)
        events.append(
            {
                "name": record.flow.tag or f"flow {record.flow.flow_id}",
                "cat": "flow",
                "ph": "X",
                "pid": pid,
                "tid": record.flow.flow_id % 16,
                "ts": record.start * _US,
                "dur": (record.finish - record.start) * _US,
                "args": {
                    "bytes": record.flow.size,
                    "group": record.flow.group_id,
                    "tardiness": record.tardiness,
                },
            }
        )
        if record.ideal_finish is not None:
            events.append(
                {
                    "name": "ideal finish",
                    "cat": "flow",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": record.flow.flow_id % 16,
                    "ts": record.ideal_finish * _US,
                }
            )
    return events


def chrome_trace(trace: SimulationTrace) -> str:
    """Chrome trace-event JSON: devices and links as tracks.

    Compute spans become complete events ("X") on a device track; each
    flow becomes a complete event on its (src -> dst) track, with the
    ideal finish time recorded as an instant event ("i") so the echelon
    stagger and any tardiness are visible at a glance.
    """
    events = chrome_trace_events(trace)
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def write_trace(trace: SimulationTrace, path: str, fmt: str = "json") -> None:
    """Write a trace to ``path`` in 'json', 'csv', or 'chrome' format."""
    if fmt == "json":
        payload = trace_to_json(trace, indent=2)
    elif fmt == "csv":
        payload = flows_to_csv(trace)
    elif fmt == "chrome":
        payload = chrome_trace(trace)
    else:
        raise ValueError(f"unknown trace format {fmt!r}; use json/csv/chrome")
    with open(path, "w") as handle:
        handle.write(payload)
