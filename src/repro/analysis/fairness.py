"""Multi-tenant fairness metrics: slowdown and Jain's index.

A scheduler that wins on mean JCT by starving one tenant is not a
cluster-ready scheduler. The standard lenses:

* **slowdown** of a job = its completion time on the shared cluster
  divided by its completion time running *alone* on the same hardware;
  1.0 means contention-free, large values mean the tenant paid for its
  neighbours.
* **Jain's fairness index** over per-tenant slowdowns:
  ``(sum x)^2 / (n * sum x^2)`` -- 1.0 when all tenants are slowed
  equally, ``1/n`` when one tenant absorbs everything.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..scheduling.base import Scheduler
from ..simulator.engine import Engine
from .metrics import job_completion_time


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index in [1/n, 1]."""
    values = list(values)
    if not values:
        raise ValueError("Jain's index of an empty sequence")
    if any(v < 0 for v in values):
        raise ValueError("Jain's index requires non-negative values")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def isolated_completion_times(
    job_builders: Dict[str, Callable[[], object]],
    build_topology: Callable[[], object],
    make_scheduler: Callable[[], Scheduler],
) -> Dict[str, float]:
    """Each job's completion running alone on a fresh cluster."""
    times: Dict[str, float] = {}
    for name, build_job in job_builders.items():
        job = build_job()
        engine = Engine(build_topology(), make_scheduler())
        job.submit_to(engine)
        trace = engine.run()
        times[name] = job_completion_time(trace, job.job_id)
    return times


def shared_completion_times(
    job_builders: Dict[str, Callable[[], object]],
    build_topology: Callable[[], object],
    make_scheduler: Callable[[], Scheduler],
) -> Dict[str, float]:
    """All jobs' completions running together on one cluster."""
    engine = Engine(build_topology(), make_scheduler())
    jobs = []
    for _name, build_job in job_builders.items():
        job = build_job()
        job.submit_to(engine)
        jobs.append(job)
    trace = engine.run()
    return {job.job_id: job_completion_time(trace, job.job_id) for job in jobs}


def slowdowns(
    job_builders: Dict[str, Callable[[], object]],
    build_topology: Callable[[], object],
    make_scheduler: Callable[[], Scheduler],
) -> Tuple[Dict[str, float], float]:
    """Per-job slowdown (shared / isolated) and the Jain index over them.

    The same scheduler runs both configurations, so the ratio isolates
    *contention*, not scheduler quality in a vacuum. Builders must return
    fresh jobs per call whose ``job_id`` matches their key.
    """
    isolated = isolated_completion_times(
        job_builders, build_topology, make_scheduler
    )
    shared = shared_completion_times(job_builders, build_topology, make_scheduler)
    if set(isolated) != set(shared):
        raise ValueError(
            "job ids differ between runs; builders must use their key as job id"
        )
    ratios = {}
    for name in isolated:
        if isolated[name] <= 0:
            raise ValueError(f"job {name!r} has non-positive isolated time")
        ratios[name] = shared[name] / isolated[name]
    return ratios, jain_index(list(ratios.values()))
