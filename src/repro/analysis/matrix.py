"""Experiment matrices: run (workload x scheduler) grids and tabulate.

Benches and the CLI repeatedly sweep a set of workloads over a set of
schedulers; this module is that pattern, once. A case is a *fresh-build*
recipe (EchelonFlows are single-use), a matrix run produces a result grid
with per-cell metrics, and the formatter emits the paper-style table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..scheduling.base import Scheduler
from ..simulator.engine import Engine
from ..topology.graph import Topology
from .metrics import comp_finish_time, job_completion_time
from .tables import format_table
from .validate import validate_trace


@dataclass(frozen=True)
class ExperimentCase:
    """One workload recipe: fresh job + fresh topology per run."""

    name: str
    build_job: Callable[[], object]  # -> BuiltJob
    build_topology: Callable[[], Topology]


@dataclass
class MatrixResult:
    """The filled (case x scheduler) grid."""

    cases: List[str]
    schedulers: List[str]
    #: values[case][scheduler] -> metric value.
    values: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metric_name: str = "comp finish time"
    #: Set when run_matrix observed one cell: (case, scheduler) observed,
    #: its trace, its profiler (if profiling), and its invocation count.
    observed_cell: Optional[tuple] = None
    observed_trace: Optional[object] = None
    observed_profiler: Optional[object] = None
    observed_invocations: Optional[int] = None

    def value(self, case: str, scheduler: str) -> float:
        return self.values[case][scheduler]

    def best_scheduler(self, case: str) -> str:
        row = self.values[case]
        return min(sorted(row), key=lambda name: row[name])

    def speedup(self, case: str, scheduler: str, baseline: str) -> float:
        return self.values[case][baseline] / self.values[case][scheduler]

    def to_table(self, title: Optional[str] = None) -> str:
        headers = ["workload"] + self.schedulers + ["best"]
        rows = []
        for case in self.cases:
            row: List[object] = [case]
            row.extend(self.values[case][name] for name in self.schedulers)
            row.append(self.best_scheduler(case))
            rows.append(row)
        return format_table(
            headers, rows, title=title or f"Matrix: {self.metric_name}"
        )


def run_matrix(
    cases: Sequence[ExperimentCase],
    schedulers: Dict[str, Callable[[], Scheduler]],
    metric: str = "comp_finish",
    validate: bool = True,
    instrumentation=None,
    observe_cell: Optional[tuple] = None,
    profile: bool = False,
) -> MatrixResult:
    """Run every case under every scheduler; returns the result grid.

    ``metric``: "comp_finish" (last compute end) or "completion" (whole
    job, including trailing communication).

    ``instrumentation`` attaches an :class:`~repro.obs.Instrumentation`
    to exactly one cell -- ``observe_cell=(case_name, scheduler_name)``,
    defaulting to the first case under the first scheduler -- leaving
    every other cell on the uninstrumented hot path. ``profile``
    additionally wraps that cell's scheduler in a ProfiledScheduler. The
    observed cell's trace/profiler/invocation count land on the result
    (``observed_trace`` etc.) for export.
    """
    if metric not in ("comp_finish", "completion"):
        raise ValueError(f"unknown metric {metric!r}")
    result = MatrixResult(
        cases=[case.name for case in cases],
        schedulers=list(schedulers),
        metric_name=(
            "comp finish time" if metric == "comp_finish" else "job completion time"
        ),
    )
    if instrumentation is not None and observe_cell is None and cases and schedulers:
        observe_cell = (cases[0].name, next(iter(schedulers)))
    for case in cases:
        row: Dict[str, float] = {}
        for scheduler_name, make_scheduler in schedulers.items():
            observed = (
                instrumentation is not None
                and observe_cell == (case.name, scheduler_name)
            )
            job = case.build_job()
            scheduler = make_scheduler()
            profiler = None
            if observed and profile:
                from ..obs import ProfiledScheduler

                scheduler = profiler = ProfiledScheduler(
                    scheduler,
                    registry=instrumentation.registry,
                    event_log=instrumentation.event_log,
                )
            engine = Engine(
                case.build_topology(),
                scheduler,
                instrumentation=instrumentation if observed else None,
            )
            job.submit_to(engine)
            trace = engine.run()
            if validate:
                validate_trace(trace, dag=job.dag)
            if observed:
                result.observed_cell = (case.name, scheduler_name)
                result.observed_trace = trace
                result.observed_profiler = profiler
                result.observed_invocations = engine.scheduler_invocations
            if metric == "comp_finish":
                row[scheduler_name] = comp_finish_time(trace)
            else:
                row[scheduler_name] = job_completion_time(trace, job.job_id)
        result.values[case.name] = row
    return result


def standard_battery(
    model=None,
    workers: int = 4,
    bandwidth: Optional[float] = None,
    micro_batches: int = 4,
) -> List[ExperimentCase]:
    """The canonical Table-1 battery plus the 1F1B and 3D-hybrid cases."""
    from ..core.units import gbps, megabytes
    from ..topology.fabrics import big_switch, linear_chain
    from ..workloads import (
        build_dp_allreduce,
        build_dp_ps,
        build_fsdp,
        build_hybrid_3d,
        build_pp_1f1b,
        build_pp_gpipe,
        build_tp_megatron,
        grid_from_hosts,
        uniform_model,
    )

    if model is None:
        model = uniform_model(
            "u8",
            8,
            param_bytes_per_layer=megabytes(40),
            activation_bytes=megabytes(20),
            forward_time=0.004,
        )
    if bandwidth is None:
        bandwidth = gbps(10)
    hosts = [f"h{i}" for i in range(workers)]
    cases = [
        ExperimentCase(
            "dp-allreduce",
            lambda: build_dp_allreduce(
                "j", model, hosts, bucket_bytes=megabytes(80)
            ),
            lambda: big_switch(workers, bandwidth),
        ),
        ExperimentCase(
            "dp-ps",
            lambda: build_dp_ps(
                "j", model, hosts, f"h{workers}", bucket_bytes=megabytes(80)
            ),
            lambda: big_switch(workers + 1, bandwidth),
        ),
        ExperimentCase(
            "pp-gpipe",
            lambda: build_pp_gpipe("j", model, hosts, micro_batches),
            lambda: linear_chain(workers, bandwidth),
        ),
        ExperimentCase(
            "pp-1f1b",
            lambda: build_pp_1f1b("j", model, hosts, micro_batches),
            lambda: linear_chain(workers, bandwidth),
        ),
        ExperimentCase(
            "tp",
            lambda: build_tp_megatron("j", model, hosts),
            lambda: big_switch(workers, bandwidth),
        ),
        ExperimentCase(
            "fsdp",
            lambda: build_fsdp("j", model, hosts),
            lambda: big_switch(workers, bandwidth),
        ),
    ]
    if workers >= 4 and workers % 4 == 0:
        grid_hosts = [f"h{i}" for i in range(2 * workers)]
        cases.append(
            ExperimentCase(
                "hybrid-3d",
                lambda: build_hybrid_3d(
                    "j",
                    model,
                    grid_from_hosts(grid_hosts, dp=2, pp=2, tp=workers // 2),
                    micro_batches,
                ),
                lambda: big_switch(2 * workers, bandwidth),
            )
        )
    return cases
