"""Metrics over simulation traces: the numbers the paper's figures plot."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.echelonflow import EchelonFlow
from ..core.tardiness import TardinessReport, evaluate_tardiness
from ..simulator.trace import ComputeSpan, SimulationTrace


def comp_finish_time(trace: SimulationTrace, job_id: Optional[str] = None) -> float:
    """"Comp finish time" as in Fig. 2: when the last computation ends."""
    return trace.last_compute_end(job_id)


def job_completion_time(trace: SimulationTrace, job_id: str) -> float:
    """Completion of every task (compute, comm, barrier) of a job."""
    times = [e.time for e in trace.task_events if e.job_id == job_id]
    if not times:
        raise KeyError(f"no task events for job {job_id!r}")
    return max(times)


def iteration_time(
    trace: SimulationTrace, job_id: str, iterations: int
) -> float:
    """Average per-iteration time of a multi-iteration job."""
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    return job_completion_time(trace, job_id) / iterations


@dataclass(frozen=True)
class IdlenessReport:
    """GPU idleness: the grey areas of Fig. 1a."""

    per_device_busy: Mapping[str, float]
    per_device_span: Mapping[str, float]

    @property
    def total_busy(self) -> float:
        return sum(self.per_device_busy.values())

    @property
    def total_span(self) -> float:
        return sum(self.per_device_span.values())

    @property
    def idle_fraction(self) -> float:
        """Aggregate idle share within each device's active window."""
        span = self.total_span
        if span <= 0:
            return 0.0
        return 1.0 - self.total_busy / span

    def device_idle_fraction(self, device: str) -> float:
        span = self.per_device_span.get(device, 0.0)
        if span <= 0:
            return 0.0
        return 1.0 - self.per_device_busy[device] / span


def gpu_idleness(
    trace: SimulationTrace,
    job_id: Optional[str] = None,
    horizon: Optional[float] = None,
) -> IdlenessReport:
    """Busy/idle accounting per device.

    Each device's span runs from its first task start to ``horizon`` (or its
    last task end); idleness is the unused part of that window -- pipeline
    bubbles, communication stalls, and barrier waits all land here.
    """
    spans: Dict[str, List[ComputeSpan]] = {}
    for span in trace.compute_spans:
        if job_id is not None and span.job_id != job_id:
            continue
        spans.setdefault(span.device, []).append(span)
    busy: Dict[str, float] = {}
    window: Dict[str, float] = {}
    for device, device_spans in spans.items():
        busy[device] = sum(s.duration for s in device_spans)
        start = min(s.start for s in device_spans)
        end = horizon if horizon is not None else max(s.end for s in device_spans)
        window[device] = max(0.0, end - start)
    return IdlenessReport(per_device_busy=busy, per_device_span=window)


def pipeline_bubble_fraction(num_stages: int, num_micro_batches: int) -> float:
    """GPipe's analytic bubble fraction ``(p - 1) / (m + p - 1)``."""
    if num_stages < 1 or num_micro_batches < 1:
        raise ValueError("stages and micro-batches must be positive")
    return (num_stages - 1) / (num_micro_batches + num_stages - 1)


def tardiness_report(
    trace: SimulationTrace, echelonflows: Iterable[EchelonFlow]
) -> TardinessReport:
    """Eq. 2/4 tardiness over the EchelonFlows that completed in a trace."""
    finish_times = trace.actual_finish_times()
    completed = []
    for echelonflow in echelonflows:
        if all(f.flow_id in finish_times for f in echelonflow.flows):
            completed.append(echelonflow)
    return evaluate_tardiness(completed, finish_times)


def flow_completion_times(trace: SimulationTrace) -> List[float]:
    return [record.completion_time for record in trace.flow_records]


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, ``q`` in [0, 100]."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be within [0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return ordered[min(rank, len(ordered)) - 1]


def speedup(baseline: float, measured: float) -> float:
    """How much faster ``measured`` is than ``baseline`` (>1 = better)."""
    if measured <= 0:
        raise ValueError(f"measured time must be positive, got {measured}")
    return baseline / measured
