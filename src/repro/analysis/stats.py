"""Small statistics toolkit for multi-seed experiment reporting.

Simulation is deterministic per seed; robustness claims need seed sweeps.
These helpers summarize replicated runs: mean, sample standard deviation,
percentile bootstrap confidence intervals, and paired comparisons (the
right test when the same seeds run under two schedulers).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple


@dataclass(frozen=True)
class Summary:
    """Replicated-measurement summary."""

    n: int
    mean: float
    stdev: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} [{self.ci_low:.4g}, {self.ci_high:.4g}] (n={self.n})"


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
    statistic: Callable[[Sequence[float]], float] = _mean,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for any statistic."""
    values = list(values)
    if not values:
        raise ValueError("bootstrap over an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    rng = random.Random(seed)
    stats: List[float] = []
    n = len(values)
    for _ in range(resamples):
        sample = [values[rng.randrange(n)] for _ in range(n)]
        stats.append(statistic(sample))
    stats.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, int(math.floor(alpha * resamples)))
    high_index = min(resamples - 1, int(math.ceil((1.0 - alpha) * resamples)) - 1)
    return stats[low_index], stats[high_index]


def summarize(
    values: Sequence[float], confidence: float = 0.95, seed: int = 0
) -> Summary:
    """Mean, stdev, and a bootstrap CI of the mean."""
    values = list(values)
    if not values:
        raise ValueError("summarize over an empty sample")
    low, high = bootstrap_ci(values, confidence=confidence, seed=seed)
    return Summary(
        n=len(values),
        mean=_mean(values),
        stdev=_stdev(values),
        ci_low=low,
        ci_high=high,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired (same-seed) comparison of two schedulers."""

    n: int
    mean_diff: float  # mean(b - a): negative means b is faster
    ci_low: float
    ci_high: float
    wins: int  # seeds where b < a

    @property
    def significant(self) -> bool:
        """The CI excludes zero."""
        return self.ci_high < 0.0 or self.ci_low > 0.0


def paired_compare(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    seed: int = 0,
) -> PairedComparison:
    """Bootstrap the per-seed difference ``b - a``."""
    if len(a) != len(b):
        raise ValueError(f"paired samples differ in length: {len(a)} vs {len(b)}")
    if not a:
        raise ValueError("paired comparison over empty samples")
    diffs = [y - x for x, y in zip(a, b)]
    low, high = bootstrap_ci(diffs, confidence=confidence, seed=seed)
    return PairedComparison(
        n=len(diffs),
        mean_diff=_mean(diffs),
        ci_low=low,
        ci_high=high,
        wins=sum(1 for d in diffs if d < 0),
    )


def replicate(
    run: Callable[[int], float], seeds: Sequence[int]
) -> List[float]:
    """Run a seeded experiment once per seed."""
    if not seeds:
        raise ValueError("need at least one seed")
    return [run(seed) for seed in seeds]
