"""Paper-style plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned ASCII table; floats use ``float_format``."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparison(
    label: str,
    paper_value: object,
    measured_value: object,
    note: str = "",
) -> str:
    """One paper-vs-measured line for EXPERIMENTS.md-style reporting."""
    suffix = f"  ({note})" if note else ""
    return f"{label}: paper={paper_value} measured={measured_value}{suffix}"
