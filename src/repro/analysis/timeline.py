"""ASCII Gantt rendering of simulation traces (Fig. 1a-style timelines)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..simulator.trace import SimulationTrace


def render_device_timeline(
    trace: SimulationTrace,
    devices: Optional[Sequence[str]] = None,
    width: int = 72,
    job_id: Optional[str] = None,
    end_time: Optional[float] = None,
) -> str:
    """One row per device; digits mark micro-batch/priority, '.' idles.

    Each compute span is labelled by the last character of its tag's
    trailing integer when present (e.g. "F mb2" -> '2'), else '#'.
    """
    spans = [
        s
        for s in trace.compute_spans
        if job_id is None or s.job_id == job_id
    ]
    if not spans:
        return "(empty trace)"
    if devices is None:
        devices = sorted({s.device for s in spans})
    horizon = end_time if end_time is not None else max(s.end for s in spans)
    if horizon <= 0:
        return "(zero-length trace)"
    scale = width / horizon

    def label_of(tag: str) -> str:
        digits = "".join(ch for ch in tag if ch.isdigit())
        return digits[-1] if digits else "#"

    lines: List[str] = []
    for device in devices:
        row = ["."] * width
        for span in spans:
            if span.device != device:
                continue
            start = int(span.start * scale)
            end = max(start + 1, int(span.end * scale))
            for i in range(start, min(end, width)):
                row[i] = label_of(span.tag)
        lines.append(f"{device:>8} |{''.join(row)}|")
    axis = f"{'':>8} 0{'':{width - 10}}t={horizon:.3g}"
    lines.append(axis)
    return "\n".join(lines)


def render_flow_timeline(
    trace: SimulationTrace,
    group_id: Optional[str] = None,
    width: int = 72,
) -> str:
    """One row per flow: '=' while transferring, with start/finish marks."""
    records = trace.flow_records
    if group_id is not None:
        records = [r for r in records if r.flow.group_id == group_id]
    if not records:
        return "(no flows)"
    horizon = max(r.finish for r in records)
    if horizon <= 0:
        return "(zero-length trace)"
    scale = width / horizon
    lines: List[str] = []
    for record in sorted(records, key=lambda r: (r.start, r.flow.flow_id)):
        row = [" "] * width
        start = min(width - 1, int(record.start * scale))
        end = min(width, max(start + 1, int(record.finish * scale)))
        for i in range(start, end):
            row[i] = "="
        if record.ideal_finish is not None:
            ideal = int(record.ideal_finish * scale)
            if 0 <= ideal < width:
                row[ideal] = "|" if row[ideal] == " " else "+"
        name = f"f{record.flow.flow_id}"
        lines.append(
            f"{name:>8} [{''.join(row)}] "
            f"{record.start:.3g}->{record.finish:.3g}"
        )
    return "\n".join(lines)
