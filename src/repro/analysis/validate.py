"""Trace validators: machine-checkable correctness of a finished run.

These are the invariants a simulation must satisfy regardless of
scheduler or workload; tests and benches call :func:`validate_trace` on
their results so that a subtly broken scheduler cannot silently produce
plausible-looking numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.units import EPS
from ..simulator.dag import TaskDag, TaskKind
from ..simulator.trace import SimulationTrace


class TraceValidationError(AssertionError):
    """A trace violated a simulation invariant."""


def _fail(message: str) -> None:
    raise TraceValidationError(message)


def validate_flow_records(trace: SimulationTrace) -> None:
    """Per-flow sanity: causality and byte accounting."""
    seen = set()
    for record in trace.flow_records:
        flow = record.flow
        if flow.flow_id in seen:
            _fail(f"flow {flow.flow_id} delivered twice")
        seen.add(flow.flow_id)
        if record.finish < record.start - EPS:
            _fail(f"flow {flow.flow_id} finished before it started")
        if record.finish > trace.end_time + 1e-6:
            _fail(f"flow {flow.flow_id} finished after the trace ended")


def validate_compute_spans(trace: SimulationTrace, slots: int = 1) -> None:
    """Device serialization: never more than ``slots`` concurrent spans."""
    by_device: Dict[str, List[Tuple[float, float]]] = {}
    for span in trace.compute_spans:
        if span.end < span.start - EPS:
            _fail(f"span {span.task_id} ends before it starts")
        by_device.setdefault(span.device, []).append((span.start, span.end))
    tolerance = 1e-9
    for device, intervals in by_device.items():
        events: List[Tuple[float, int]] = []
        for start, end in intervals:
            events.append((start, 1))
            events.append((end, -1))
        events.sort(key=lambda item: (item[0], item[1]))
        # Sweep with tolerance: events within `tolerance` of each other are
        # simultaneous, and ends apply before starts within a batch so
        # back-to-back execution never counts as overlap.
        live = 0
        index = 0
        while index < len(events):
            batch_time = events[index][0]
            batch: List[int] = []
            while index < len(events) and events[index][0] <= batch_time + tolerance:
                batch.append(events[index][1])
                index += 1
            live += sum(delta for delta in batch if delta < 0)
            live += sum(delta for delta in batch if delta > 0)
            if live > slots:
                _fail(
                    f"device {device} ran {live} concurrent tasks "
                    f"(slots={slots})"
                )


def validate_dag_order(trace: SimulationTrace, dag: TaskDag) -> None:
    """Every task completed, after all of its dependencies."""
    completion: Dict[str, float] = {}
    for event in trace.task_events:
        if event.job_id == dag.job_id:
            completion[event.task_id] = event.time
    for task in dag.tasks():
        if task.task_id not in completion:
            _fail(f"task {task.task_id!r} never completed")
        for dep in task.deps:
            if completion[dep] > completion[task.task_id] + EPS:
                _fail(
                    f"task {task.task_id!r} completed before its "
                    f"dependency {dep!r}"
                )
    # Comm tasks complete exactly when their last flow lands.
    flow_finish = trace.actual_finish_times()
    for task in dag.tasks():
        if task.kind is not TaskKind.COMM:
            continue
        last = max(flow_finish[f.flow_id] for f in task.flows)
        if abs(completion[task.task_id] - last) > 1e-6:
            _fail(
                f"comm task {task.task_id!r} completed at "
                f"{completion[task.task_id]} but its last flow landed at {last}"
            )


def validate_trace(
    trace: SimulationTrace,
    dag: Optional[TaskDag] = None,
    slots: int = 1,
) -> None:
    """Run every validator; raises :class:`TraceValidationError` on breach."""
    validate_flow_records(trace)
    validate_compute_spans(trace, slots=slots)
    if dag is not None:
        validate_dag_order(trace, dag)
