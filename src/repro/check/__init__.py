"""`repro.check`: the runtime sanitizer and differential twin oracle.

Three ways to turn it on:

* **Programmatic** -- pass ``sanitizer=Sanitizer(CheckConfig(...))`` (or a
  spec string) to :class:`~repro.simulator.engine.Engine`.
* **Environment** -- set ``REPRO_CHECK=strict`` (or ``collect``, with
  options like ``strict:twin=1.0``); every engine constructed without an
  explicit ``sanitizer`` argument picks it up.
* **CLI / pytest** -- ``python -m repro <cmd> --check[=MODE]`` or
  ``pytest --repro-check=MODE`` route through :func:`configure`.

When ``REPRO_CHECK_REPORT`` names a path, an aggregated violation report
across every sanitized engine in the process is written there at exit
(CI uploads it as an artifact on failure).
"""

from __future__ import annotations

import atexit
import json
import os
from typing import Dict, Optional, Union

from .config import (
    MODE_COLLECT,
    MODE_OFF,
    MODE_STRICT,
    CheckConfig,
    parse_spec,
)
from .invariants import INVARIANTS, infeasible_links, invariant_names, unserved_flows
from .sanitizer import Sanitizer
from .twin import TwinOracle
from .violations import CheckViolation, Violation, ViolationLog

__all__ = [
    "CheckConfig",
    "CheckViolation",
    "INVARIANTS",
    "MODE_COLLECT",
    "MODE_OFF",
    "MODE_STRICT",
    "Sanitizer",
    "TwinOracle",
    "Violation",
    "ViolationLog",
    "configure",
    "clear_configuration",
    "default_config",
    "default_sanitizer",
    "global_stats",
    "infeasible_links",
    "invariant_names",
    "make_sanitizer",
    "parse_spec",
    "reset_global_stats",
    "unserved_flows",
    "write_global_report",
]

#: Environment variables consulted lazily.
ENV_VAR = "REPRO_CHECK"
REPORT_ENV_VAR = "REPRO_CHECK_REPORT"


class GlobalStats:
    """Process-wide violation aggregation across every sanitized engine.

    Engines come and go (one per run, many per test session); the CLI and
    the exit-time report need totals that outlive them. Only bounded
    state is kept: exact counters plus the first few hundred violations.
    """

    def __init__(self, capacity: int = 500) -> None:
        self.log = ViolationLog(capacity=capacity)
        self.sanitizers = 0

    def record(self, violation: Violation) -> None:
        self.log.add(violation)

    @property
    def total(self) -> int:
        return self.log.total

    def to_dict(self) -> Dict:
        return {"sanitizers": self.sanitizers, **self.log.to_dict()}

    def reset(self) -> None:
        self.log = ViolationLog(capacity=self.log.capacity)
        self.sanitizers = 0


_STATS = GlobalStats()

#: The process-default config; ``_UNSET`` means "read REPRO_CHECK lazily".
_UNSET = object()
_default_config: Union[object, Optional[CheckConfig]] = _UNSET


def configure(spec: Union[str, CheckConfig, None]) -> Optional[CheckConfig]:
    """Set the process-default sanitizer config (None/'off' disables)."""
    global _default_config
    _default_config = parse_spec(spec)
    return _default_config


def clear_configuration() -> None:
    """Forget the process default; REPRO_CHECK is re-read on next use."""
    global _default_config
    _default_config = _UNSET


def default_config() -> Optional[CheckConfig]:
    """The effective process default (configure() overrides REPRO_CHECK)."""
    global _default_config
    if _default_config is _UNSET:
        _default_config = parse_spec(os.environ.get(ENV_VAR))
    return _default_config  # type: ignore[return-value]


def default_sanitizer() -> Optional[Sanitizer]:
    """A fresh Sanitizer from the process default, or None when off.

    Called by every Engine constructed without an explicit ``sanitizer``
    argument -- the hook that lets ``REPRO_CHECK=strict`` cover the whole
    existing test suite without touching a single test.
    """
    config = default_config()
    if config is None:
        return None
    _STATS.sanitizers += 1
    return Sanitizer(config, stats=_STATS)


def make_sanitizer(spec: Union[str, CheckConfig, None]) -> Optional[Sanitizer]:
    """Build a sanitizer from an explicit spec (None/'off' gives None)."""
    config = parse_spec(spec)
    if config is None:
        return None
    _STATS.sanitizers += 1
    return Sanitizer(config, stats=_STATS)


def global_stats() -> GlobalStats:
    return _STATS


def reset_global_stats() -> None:
    _STATS.reset()


def write_global_report(path: str) -> None:
    """Dump the aggregated violation report (CI failure artifact)."""
    document = {
        "env": {
            ENV_VAR: os.environ.get(ENV_VAR),
            REPORT_ENV_VAR: os.environ.get(REPORT_ENV_VAR),
        },
        "config": None,
        "stats": _STATS.to_dict(),
    }
    config = default_config()
    if config is not None:
        document["config"] = {
            "mode": config.mode,
            "twin_sample": config.twin_sample,
            "twin_tolerance": config.twin_tolerance,
            "seed": config.seed,
        }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


_report_registered = False


def _register_exit_report() -> None:
    """Arm the exit-time report writer once, if REPRO_CHECK_REPORT is set."""
    global _report_registered
    if _report_registered:
        return
    path = os.environ.get(REPORT_ENV_VAR)
    if not path:
        return
    _report_registered = True
    atexit.register(write_global_report, path)


_register_exit_report()
