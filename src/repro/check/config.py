"""Sanitizer configuration and ``REPRO_CHECK`` spec parsing.

A spec string selects a mode and optional knobs::

    strict                  raise on the first violation
    collect                 record violations, never raise
    off                     disable (the default when REPRO_CHECK is unset)
    strict:twin=1.0         strict mode, twin oracle on every invocation
    collect:twin=0,max=50   no twin sampling, keep at most 50 violations

Recognized options: ``twin`` (sampling fraction of scheduler invocations
shadow-executed by the differential twin oracle), ``twin_tol`` (relative
rate tolerance for twin agreement; 0 demands bit-equality), ``twin_kernel``
(``scalar`` or ``vector``: which waterfilling kernel the twin's reference
reconstruction runs -- keeping it ``scalar`` while the primary runs the
vector kernel turns every sampled invocation into a scalar-vs-vector
differential), ``seed`` (the deterministic sampling stream), ``max``
(collected-violation cap), and ``invariants`` (``+``-separated allow-list
of invariant names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple, Union

MODE_OFF = "off"
MODE_COLLECT = "collect"
MODE_STRICT = "strict"
MODES: Tuple[str, ...] = (MODE_OFF, MODE_COLLECT, MODE_STRICT)

#: Spellings accepted for the bare on/off forms of REPRO_CHECK.
_MODE_ALIASES = {
    "": MODE_OFF,
    "0": MODE_OFF,
    "false": MODE_OFF,
    "no": MODE_OFF,
    "off": MODE_OFF,
    "1": MODE_STRICT,
    "true": MODE_STRICT,
    "yes": MODE_STRICT,
    "on": MODE_STRICT,
    "strict": MODE_STRICT,
    "collect": MODE_COLLECT,
}


@dataclass(frozen=True)
class CheckConfig:
    """Everything the sanitizer needs to know about how hard to check."""

    mode: str = MODE_STRICT
    #: Fraction of scheduler invocations shadow-executed by the twin
    #: oracle (0 disables it, 1 checks every invocation).
    twin_sample: float = 0.05
    #: Relative rate tolerance for twin agreement; 0 = bit-equality,
    #: matching the offline equivalence tests.
    twin_tolerance: float = 0.0
    #: Slack for the from-scratch link-capacity feasibility check; the
    #: same tolerance the network's own set_rates gate applies.
    capacity_tolerance: float = 1e-6
    #: Relative (per link capacity) slack for residual-accounting drift.
    accounting_tolerance: float = 1e-6
    #: Relative slack for global byte conservation at run end.
    conservation_tolerance: float = 1e-6
    #: Relative (per link capacity) headroom a work-conserving scheduler
    #: is allowed to leave on every link of an unfinished flow's path.
    work_conservation_tolerance: float = 1e-6
    #: Which waterfilling kernel the twin's reference reconstruction
    #: runs: ``scalar`` (the default -- so a vector-mode primary gets an
    #: automatic scalar-vs-vector differential on every sampled
    #: invocation) or ``vector`` (to cross-check the other direction).
    twin_kernel: str = "scalar"
    #: Seed of the deterministic twin-sampling stream (per engine).
    seed: int = 0
    #: Collected-violation retention cap (counts stay exact past it).
    max_violations: int = 200
    #: When non-empty, only these invariant names are checked.
    invariants: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if not 0.0 <= self.twin_sample <= 1.0:
            raise ValueError(
                f"twin_sample must be in [0, 1], got {self.twin_sample}"
            )
        if self.twin_tolerance < 0:
            raise ValueError(
                f"twin_tolerance must be >= 0, got {self.twin_tolerance}"
            )
        if self.twin_kernel not in ("scalar", "vector"):
            raise ValueError(
                f"twin_kernel must be 'scalar' or 'vector', got "
                f"{self.twin_kernel!r}"
            )
        if self.max_violations < 1:
            raise ValueError(
                f"max_violations must be positive, got {self.max_violations}"
            )

    @property
    def enabled(self) -> bool:
        return self.mode != MODE_OFF

    @property
    def strict(self) -> bool:
        return self.mode == MODE_STRICT

    def wants(self, invariant: str) -> bool:
        """Is this invariant in scope? (Empty allow-list = everything.)"""
        return not self.invariants or invariant in self.invariants


def parse_spec(spec: Union[str, CheckConfig, None]) -> Optional[CheckConfig]:
    """Parse a ``REPRO_CHECK`` / ``--check`` spec into a config.

    Returns ``None`` for the off spellings (empty string, ``0``, ``off``,
    ...), so callers can treat "no config" and "explicitly off" alike.
    """
    if spec is None:
        return None
    if isinstance(spec, CheckConfig):
        return spec if spec.enabled else None
    text = spec.strip()
    head, _, options = text.partition(":")
    mode = _MODE_ALIASES.get(head.strip().lower())
    if mode is None:
        raise ValueError(
            f"unknown check mode {head!r}; expected one of "
            f"{sorted(set(_MODE_ALIASES.values()))}"
        )
    if mode == MODE_OFF:
        return None
    overrides = {}
    if options.strip():
        for item in options.split(","):
            key, sep, value = item.partition("=")
            key = key.strip().lower()
            if not sep:
                raise ValueError(f"malformed check option {item!r} (need key=value)")
            value = value.strip()
            if key == "twin":
                overrides["twin_sample"] = float(value)
            elif key in ("twin_tol", "twin_tolerance"):
                overrides["twin_tolerance"] = float(value)
            elif key == "twin_kernel":
                overrides["twin_kernel"] = value.lower()
            elif key == "seed":
                overrides["seed"] = int(value)
            elif key in ("max", "max_violations"):
                overrides["max_violations"] = int(value)
            elif key == "invariants":
                overrides["invariants"] = frozenset(
                    name for name in value.split("+") if name
                )
            else:
                known = "twin, twin_tol, twin_kernel, seed, max, invariants"
                raise ValueError(
                    f"unknown check option {key!r}; recognized: {known}"
                )
    return CheckConfig(mode=mode, **overrides)
