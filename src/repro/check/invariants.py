"""The invariant catalog: what the sanitizer checks, anchored to the paper.

Each entry names one property that must hold at an event boundary of the
co-simulation. The catalog is data (name -> description + paper anchor) so
``docs/correctness.md``, violation reports, and the ``invariants=`` config
allow-list all share one source of truth. The pure helper functions below
implement the checks that are useful outside the sanitizer too (property
tests recompute accounting from scratch through the same code path).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..simulator.allocation import FlowDemand

#: invariant name -> (summary, paper anchor).
INVARIANTS: Dict[str, Tuple[str, str]] = {
    "rate_sanity": (
        "scheduler output is finite, non-negative, and names only active flows",
        "Fig. 7: the coordinator returns bandwidth allocations for live flows",
    ),
    "capacity": (
        "per-link allocated load stays within capacity (recomputed from "
        "scratch, independent of the incremental accounting)",
        "fluid-flow model / Property 4: adapted MADD must fit link capacities",
    ),
    "accounting": (
        "the residual LinkAccounting (loads, memberships, nonzero counts) "
        "matches a from-scratch recomputation over active flows",
        "incremental-core refactor invariant (docs/performance.md)",
    ),
    "work_conservation": (
        "a scheduler that declares itself work-conserving leaves no flow "
        "with headroom on every link of its path",
        "Section 3.2: MADD's slowest-acceptable pacing needs a "
        "work-conserving backfill to avoid idle capacity",
    ),
    "conservation": (
        "bytes drain exactly as injected: per-flow residuals vanish at "
        "completion and global delivered bytes match the flow sizes",
        "fluid-flow model: flows carry `size` bytes, no loss or duplication",
    ),
    "causality": (
        "no task completes before its dependencies; compute starts after "
        "every dependency; flows never finish before they start",
        "Def. 3.1: flows are released by the computation arrangement",
    ),
    "arrangement": (
        "ideal finish times per EchelonFlow are non-decreasing in the "
        "arrangement index, and cached per-flow deadlines agree with the "
        "group's arrangement-derived values",
        "Def. 3.1 / Eqs. 5-7: g(D, r) offsets are monotone",
    ),
    "group_tardiness": (
        "Eq. 2 EchelonFlow tardiness derived from the trace matches the "
        "core implementation and is >= 0 whenever the head flow pinned "
        "the reference (d_0 = r = s_0 implies e_0 - d_0 >= 0)",
        "Defs. 3.2/3.3, Eqs. 1-2",
    ),
    "twin": (
        "the incremental scheduler invocation agrees rate-for-rate with a "
        "shadow execution against a freshly reconstructed full-scan "
        "reference network",
        "incremental-core bit-equivalence guarantee (docs/performance.md)",
    ),
}


def invariant_names() -> List[str]:
    return sorted(INVARIANTS)


def infeasible_links(
    demands: Sequence[FlowDemand],
    rates: Mapping[int, float],
    tolerance: float = 1e-6,
) -> List[Dict]:
    """Links whose aggregate allocated rate exceeds capacity (with slack).

    The detailed sibling of :func:`repro.simulator.allocation.feasible`:
    instead of a bool it returns one record per oversubscribed link with
    the load, the capacity, and the crossing flows -- what a violation
    report needs. Recomputes usage from scratch, deliberately not reading
    the incremental accounting it is used to audit.
    """
    usage: Dict[Tuple[str, str], float] = {}
    capacities: Dict[Tuple[str, str], float] = {}
    crossing: Dict[Tuple[str, str], List[int]] = {}
    for demand in demands:
        rate = rates.get(demand.flow_id, 0.0)
        for link in demand.path:
            key = link.key
            capacities[key] = link.capacity
            usage[key] = usage.get(key, 0.0) + rate
            if rate > 0.0:
                crossing.setdefault(key, []).append(demand.flow_id)
    problems: List[Dict] = []
    for key in sorted(usage):
        used = usage[key]
        capacity = capacities[key]
        if used > capacity * (1.0 + tolerance) + tolerance:
            problems.append(
                {
                    "link": key,
                    "load": used,
                    "capacity": capacity,
                    "excess": used - capacity,
                    "flows": sorted(crossing.get(key, [])),
                }
            )
    return problems


def unserved_flows(
    demands: Sequence[FlowDemand],
    rates: Mapping[int, float],
    remaining: Mapping[int, float],
    finish_threshold: Mapping[int, float],
    tolerance: float = 1e-6,
) -> List[Dict]:
    """Flows a work-conserving allocation should have served harder.

    A flow with bytes left (above its finish threshold) violates work
    conservation when *every* link on its path has residual capacity above
    ``tolerance * capacity``: the scheduler could raise its rate without
    displacing anyone. Flows at their demand cap are exempt.
    """
    usage: Dict[Tuple[str, str], float] = {}
    capacities: Dict[Tuple[str, str], float] = {}
    for demand in demands:
        rate = rates.get(demand.flow_id, 0.0)
        for link in demand.path:
            key = link.key
            capacities[key] = link.capacity
            usage[key] = usage.get(key, 0.0) + rate
    problems: List[Dict] = []
    for demand in demands:
        flow_id = demand.flow_id
        if remaining.get(flow_id, 0.0) <= finish_threshold.get(flow_id, 0.0):
            continue
        rate = rates.get(flow_id, 0.0)
        if demand.cap is not None and rate >= demand.cap - tolerance:
            continue
        headroom = float("inf")
        for link in demand.path:
            key = link.key
            capacity = capacities[key]
            slack = capacity - usage[key]
            allowance = tolerance * max(1.0, capacity)
            if slack <= allowance:
                headroom = 0.0
                break
            headroom = min(headroom, slack)
        if headroom > 0.0:
            problems.append(
                {
                    "flow": flow_id,
                    "rate": rate,
                    "headroom": headroom,
                    "remaining": remaining.get(flow_id, 0.0),
                }
            )
    return problems
