"""Pytest integration: run any test session under the sanitizer.

Registered from ``tests/conftest.py``. Activation, in priority order:

1. ``pytest --repro-check=strict`` (or ``collect``, with spec options);
2. the ``REPRO_CHECK`` environment variable (handled by the engine's own
   default-config path -- the plugin only surfaces the summary).

Because every :class:`~repro.simulator.engine.Engine` constructed without
an explicit ``sanitizer`` consults the process default, the entire
existing suite runs checked without editing a single test. The
``repro_check_config`` fixture exposes the effective config to tests that
want to assert on it, and a terminal summary line reports aggregate
violations in collect mode.
"""

from __future__ import annotations

import pytest

from . import clear_configuration, configure, default_config, global_stats


def pytest_addoption(parser) -> None:
    group = parser.getgroup("repro-check", "repro simulation sanitizer")
    group.addoption(
        "--repro-check",
        action="store",
        default=None,
        metavar="SPEC",
        help=(
            "Run every simulation under the repro.check sanitizer; SPEC is "
            "a REPRO_CHECK spec such as 'strict', 'collect', or "
            "'strict:twin=1.0'. Overrides the REPRO_CHECK env var."
        ),
    )


def pytest_configure(config) -> None:
    spec = config.getoption("--repro-check")
    if spec is not None:
        configure(spec)


def pytest_unconfigure(config) -> None:
    if config.getoption("--repro-check") is not None:
        clear_configuration()


@pytest.fixture
def repro_check_config():
    """The effective sanitizer config for this session (None when off)."""
    return default_config()


@pytest.fixture
def repro_check_strict():
    """Force strict checking (twin on every invocation) for one test."""
    previous = default_config()
    configure("strict:twin=1.0")
    try:
        yield default_config()
    finally:
        configure(previous)


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    active = default_config()
    if active is None:
        return
    stats = global_stats()
    if stats.sanitizers == 0:
        return
    line = (
        f"repro.check: mode={active.mode} sanitized_engines={stats.sanitizers} "
        f"violations={stats.total}"
    )
    terminalreporter.write_sep("-", "repro simulation sanitizer")
    terminalreporter.write_line(line)
    if stats.total:
        for name, count in sorted(stats.log.counts.items()):
            terminalreporter.write_line(f"  {name}: {count}")
