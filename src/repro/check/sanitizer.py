"""The runtime sanitizer: invariant checks at engine event boundaries.

One :class:`Sanitizer` instance rides along with one
:class:`~repro.simulator.engine.Engine`, called through the same
zero-overhead hook pattern as the ``obs`` instrumentation (``if
self.check is not None: ...`` -- one attribute test per hook site when
disabled, nothing at all when the attribute is ``None``).

Strict mode raises :class:`~repro.check.violations.CheckViolation` on the
first breach; collect mode accumulates violations into a bounded
:class:`~repro.check.violations.ViolationLog`, mirrors each one into the
obs JSONL event log when the run is instrumented (so ``repro diagnose``
artifacts carry them), and surfaces everything through :meth:`report`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .config import CheckConfig
from .invariants import infeasible_links, unserved_flows
from .twin import TwinOracle
from .violations import CheckViolation, Violation, ViolationLog

#: Absolute time slack shared with the engine's event coalescing.
_TIME_EPS = 1e-9


class Sanitizer:
    """Checks the invariant catalog as one engine's run unfolds."""

    def __init__(self, config: CheckConfig, stats=None) -> None:
        if not config.enabled:
            raise ValueError("cannot build a Sanitizer from an 'off' config")
        self.config = config
        self.log = ViolationLog(capacity=config.max_violations)
        self.twin = TwinOracle(config) if config.twin_sample > 0.0 else None
        #: Deterministic twin-sampling stream, independent of global RNG.
        self._rng = random.Random(config.seed)
        #: invariant name -> number of times it was evaluated.
        self.checks: Dict[str, int] = {}
        self.engine = None
        self._event_log = None
        #: Aggregator shared across sanitizers (repro.check global stats).
        self._stats = stats
        #: (job_id, task_id) -> completion time, for dependency ordering.
        self._task_done: Dict[Tuple[str, str], float] = {}
        #: Groups whose arrangement monotonicity was already validated.
        self._validated_groups: set = set()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, engine) -> None:
        """Bind to the engine; picks up the obs event log when present."""
        self.engine = engine
        obs = getattr(engine, "obs", None)
        self._event_log = getattr(obs, "event_log", None) if obs else None

    def fork(self) -> "Sanitizer":
        """A sanitizer for a forked engine, continuing this one's streams.

        Correctness state carries over: ``_task_done`` must travel or the
        fork would flag phantom causality violations for post-fork tasks
        whose dependencies completed pre-fork, and the twin-sampling RNG
        resumes mid-stream so a forked-and-resumed run samples exactly the
        invocations an uninterrupted run would (the bit-identical twin
        guard depends on it). The violation log starts empty (a fork's
        verdicts are its own); the cross-run stats aggregator is shared.
        The clone is unattached -- the forked engine's constructor path
        calls :meth:`attach`.
        """
        clone = Sanitizer(self.config, stats=self._stats)
        clone._rng.setstate(self._rng.getstate())
        clone.checks = dict(self.checks)
        clone._task_done = dict(self._task_done)
        clone._validated_groups = set(self._validated_groups)
        return clone

    # ------------------------------------------------------------------
    # violation dispatch
    # ------------------------------------------------------------------

    def _violate(self, violation: Violation) -> None:
        self.log.add(violation)
        if self._stats is not None:
            self._stats.record(violation)
        if self._event_log is not None:
            self._event_log.append(
                "check_violation",
                violation.time,
                invariant=violation.invariant,
                message=violation.message,
                details=violation.details,
            )
        if self.config.strict:
            raise CheckViolation(violation)

    def _violate_all(self, violations: List[Violation]) -> None:
        for violation in violations:
            self._violate(violation)

    def _count(self, invariant: str) -> bool:
        """Record one evaluation; False when the invariant is filtered."""
        if not self.config.wants(invariant):
            return False
        self.checks[invariant] = self.checks.get(invariant, 0) + 1
        return True

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------

    def on_flow_injected(self, state, now: float) -> None:
        flow = state.flow
        if self._count("arrangement") and flow.group_id is not None:
            group = self.engine.echelonflows.get(flow.group_id)
            if (
                group is not None
                and group.reference_time is not None
                and flow.group_id not in self._validated_groups
            ):
                self._validated_groups.add(flow.group_id)
                try:
                    group.arrangement.validate(group.index_count)
                except (ValueError, IndexError) as exc:
                    self._violate(
                        Violation(
                            invariant="arrangement",
                            time=now,
                            message=(
                                f"EchelonFlow {flow.group_id!r} has a "
                                f"non-monotone arrangement"
                            ),
                            details={"group": flow.group_id, "error": str(exc)},
                        )
                    )

    def on_flow_finished(self, state, record, now: float) -> None:
        flow = state.flow
        if self._count("causality") and record.finish < record.start - _TIME_EPS:
            self._violate(
                Violation(
                    invariant="causality",
                    time=now,
                    message=f"flow {flow.flow_id} finished before it started",
                    details={
                        "flow": flow.flow_id,
                        "start": record.start,
                        "finish": record.finish,
                    },
                )
            )
        if self._count("conservation"):
            leftover = state.remaining
            if leftover > flow.finish_epsilon * (1.0 + 1e-9) + _TIME_EPS:
                self._violate(
                    Violation(
                        invariant="conservation",
                        time=now,
                        message=(
                            f"flow {flow.flow_id} retired with undrained bytes"
                        ),
                        details={
                            "flow": flow.flow_id,
                            "remaining": leftover,
                            "threshold": flow.finish_epsilon,
                        },
                    )
                )
        if self._count("arrangement") and flow.group_id is not None:
            group = self.engine.echelonflows.get(flow.group_id)
            if (
                group is not None
                and group.reference_time is not None
                and state.ideal_finish_time is not None
            ):
                derived = group.ideal_finish_time_of(flow)
                if abs(state.ideal_finish_time - derived) > _TIME_EPS:
                    self._violate(
                        Violation(
                            invariant="arrangement",
                            time=now,
                            message=(
                                f"flow {flow.flow_id} carries a stale cached "
                                f"ideal finish time"
                            ),
                            details={
                                "flow": flow.flow_id,
                                "cached": state.ideal_finish_time,
                                "derived": derived,
                                "group": flow.group_id,
                            },
                        )
                    )

    def on_task_complete(self, dag, task, now: float) -> None:
        key = (dag.job_id, task.task_id)
        if self._count("causality"):
            start = now - task.duration if task.duration else now
            for dep in task.deps:
                dep_key = (dag.job_id, dep)
                dep_time = self._task_done.get(dep_key)
                if dep_time is None:
                    self._violate(
                        Violation(
                            invariant="causality",
                            time=now,
                            message=(
                                f"task {task.task_id!r} of job "
                                f"{dag.job_id!r} completed before its "
                                f"dependency {dep!r}"
                            ),
                            details={"task": task.task_id, "dependency": dep},
                        )
                    )
                elif start < dep_time - _TIME_EPS:
                    self._violate(
                        Violation(
                            invariant="causality",
                            time=now,
                            message=(
                                f"task {task.task_id!r} of job "
                                f"{dag.job_id!r} started before its "
                                f"dependency {dep!r} finished"
                            ),
                            details={
                                "task": task.task_id,
                                "dependency": dep,
                                "start": start,
                                "dependency_done": dep_time,
                            },
                        )
                    )
        self._task_done[key] = now

    def on_allocation(self, view, rates: Dict[int, float]) -> None:
        """Sanity-check the scheduler's raw output, then maybe twin it."""
        network = view.network
        if self._count("rate_sanity"):
            active = network._active
            for flow_id, rate in rates.items():
                bad: Optional[str] = None
                if rate != rate or rate in (float("inf"), float("-inf")):
                    bad = f"non-finite rate {rate!r}"
                elif rate < 0.0:
                    bad = f"negative rate {rate!r}"
                elif rate > 0.0 and flow_id not in active:
                    bad = "positive rate for a flow that is not active"
                if bad is not None:
                    self._violate(
                        Violation(
                            invariant="rate_sanity",
                            time=view.now,
                            message=f"flow {flow_id}: {bad}",
                            details={"flow": flow_id, "rate": rate},
                        )
                    )
        if (
            self.twin is not None
            and self.config.wants("twin")
            and self._rng.random() < self.config.twin_sample
            and not self._fallback_invocation()
        ):
            self._count("twin")
            self._violate_all(self.twin.compare(self.engine, view, rates))

    def _fallback_invocation(self) -> bool:
        """Did a ResilientScheduler degrade the invocation just checked?

        A contained crash (or organic inner-scheduler exception) is by
        definition not deterministically replayable -- the shadow clone
        would run the inner scheduler where the primary fell back to fair
        sharing -- so the twin oracle sits those invocations out.
        """
        layer = self.engine.scheduler
        seen = set()
        while layer is not None and id(layer) not in seen:
            if getattr(layer, "last_allocation_was_fallback", False):
                return True
            seen.add(id(layer))
            layer = getattr(layer, "inner", None)
        return False

    def on_fault(self, engine, now: float) -> None:
        """Audit the incremental state right after a fault mutated it.

        Capacity mutation and flow migration rewrite the residual
        accounting and rescale in-flight rates outside the normal
        ``set_rates`` path; this re-runs the accounting audit and the
        from-scratch capacity recompute at the mutation boundary, before
        the fault-caused reschedule gets a chance to paper over drift.
        """
        network = engine.network
        if self._count("accounting"):
            for problem in network.verify_accounting(
                self.config.accounting_tolerance
            ):
                self._violate(
                    Violation(
                        invariant="accounting",
                        time=now,
                        message=(
                            f"residual accounting drifted on link "
                            f"{problem['link']} after a fault: {problem['kind']}"
                        ),
                        details=problem,
                    )
                )
        if self._count("capacity"):
            applied = {
                state.flow.flow_id: state.rate
                for state in network.iter_active()
            }
            for problem in infeasible_links(
                network.demands(), applied, self.config.capacity_tolerance
            ):
                self._violate(
                    Violation(
                        invariant="capacity",
                        time=now,
                        message=(
                            f"link {problem['link']} oversubscribed after a "
                            f"fault: load {problem['load']:.9g} > capacity "
                            f"{problem['capacity']:.9g}"
                        ),
                        details=problem,
                    )
                )

    def on_rates_applied(self, view) -> None:
        """Audit the network's post-apply state (the rates flows drain at)."""
        network = view.network
        if self._count("capacity"):
            applied = {
                state.flow.flow_id: state.rate
                for state in network.iter_active()
            }
            problems = infeasible_links(
                network.demands(), applied, self.config.capacity_tolerance
            )
            for problem in problems:
                self._violate(
                    Violation(
                        invariant="capacity",
                        time=view.now,
                        message=(
                            f"link {problem['link']} oversubscribed: "
                            f"load {problem['load']:.9g} > capacity "
                            f"{problem['capacity']:.9g}"
                        ),
                        details=problem,
                    )
                )
        if self._count("accounting"):
            for problem in network.verify_accounting(
                self.config.accounting_tolerance
            ):
                self._violate(
                    Violation(
                        invariant="accounting",
                        time=view.now,
                        message=(
                            f"residual accounting drifted on link "
                            f"{problem['link']}: {problem['kind']}"
                        ),
                        details=problem,
                    )
                )
        if self._count("work_conservation") and getattr(
            self.engine.scheduler, "work_conserving", False
        ):
            network.sync_active()
            states = network.active_states()
            applied = {s.flow.flow_id: s.rate for s in states}
            remaining = {s.flow.flow_id: s.remaining for s in states}
            thresholds = {
                s.flow.flow_id: s.flow.finish_epsilon for s in states
            }
            for problem in unserved_flows(
                network.demands(),
                applied,
                remaining,
                thresholds,
                self.config.work_conservation_tolerance,
            ):
                self._violate(
                    Violation(
                        invariant="work_conservation",
                        time=view.now,
                        message=(
                            f"work-conserving scheduler "
                            f"{self.engine.scheduler.name!r} left flow "
                            f"{problem['flow']} with headroom "
                            f"{problem['headroom']:.9g} on every path link"
                        ),
                        details=problem,
                    )
                )

    def on_run_end(self, trace) -> None:
        engine = self.engine
        network = engine.network
        if self._count("conservation"):
            network.sync_active()
            expected = sum(
                state.flow.size - state.remaining
                for state in network.completed_states
            )
            expected += sum(
                state.flow.size - state.remaining
                for state in network.active_states()
            )
            delivered = network.bytes_delivered
            scale = max(abs(expected), abs(delivered), 1.0)
            if abs(delivered - expected) > self.config.conservation_tolerance * scale:
                self._violate(
                    Violation(
                        invariant="conservation",
                        time=trace.end_time,
                        message=(
                            "delivered bytes disagree with per-flow drains"
                        ),
                        details={
                            "bytes_delivered": delivered,
                            "expected": expected,
                            "relative_error": abs(delivered - expected) / scale,
                        },
                    )
                )
        if self._count("group_tardiness"):
            self._check_group_tardiness(trace)

    def _check_group_tardiness(self, trace) -> None:
        """Eq. 2 consistency for every fully-completed EchelonFlow."""
        finishes: Dict[int, float] = {}
        starts: Dict[int, float] = {}
        for record in trace.flow_records:
            finishes[record.flow.flow_id] = record.finish
            starts[record.flow.flow_id] = record.start
        for group_id, group in sorted(self.engine.echelonflows.items()):
            if group.reference_time is None or not len(group):
                continue
            members = group.flows
            if any(flow.flow_id not in finishes for flow in members):
                continue  # group still in flight at run end
            derived = max(
                finishes[flow.flow_id] - group.ideal_finish_time_of(flow)
                for flow in members
            )
            core = group.tardiness(finishes)
            if abs(derived - core) > _TIME_EPS:
                self._violate(
                    Violation(
                        invariant="group_tardiness",
                        time=trace.end_time,
                        message=(
                            f"trace-derived Eq. 2 tardiness of "
                            f"{group_id!r} disagrees with the core"
                        ),
                        details={
                            "group": group_id,
                            "trace": derived,
                            "core": core,
                        },
                    )
                )
            # d_0 = r = s_0: when the head flow's start pinned the
            # reference, its own tardiness e_0 - d_0 = e_0 - s_0 >= 0,
            # so the Eq. 2 max is >= 0 too.
            head_pinned = any(
                flow.index_in_group == 0
                and abs(starts[flow.flow_id] - group.reference_time) <= _TIME_EPS
                for flow in members
            )
            if head_pinned and derived < -_TIME_EPS:
                self._violate(
                    Violation(
                        invariant="group_tardiness",
                        time=trace.end_time,
                        message=(
                            f"EchelonFlow {group_id!r} has negative Eq. 2 "
                            f"tardiness despite a head-pinned reference"
                        ),
                        details={"group": group_id, "tardiness": derived},
                    )
                )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    @property
    def violation_count(self) -> int:
        return self.log.total

    def report(self) -> Dict:
        """Structured summary: config, per-invariant activity, violations."""
        twin = None
        if self.twin is not None:
            twin = {
                "sample": self.config.twin_sample,
                "comparisons": self.twin.comparisons,
                "skipped": self.twin.skipped,
            }
        return {
            "mode": self.config.mode,
            "checks": dict(sorted(self.checks.items())),
            "twin": twin,
            **self.log.to_dict(),
        }
