"""The differential twin oracle: shadow-execute the reference allocator.

PR 2's incremental core keeps a retained full-scan reference mode
(``incremental=False``) proven bit-identical by offline equivalence tests.
The twin oracle turns that proof into an always-on detector: on a sampled
fraction of scheduler invocations it reconstructs the *reference* network
from the primary's materialized state, replays the (deep-copied) scheduler
against it, and demands rate-for-rate agreement with the allocation the
incremental path just produced.

Reconstruction, not mirroring: the twin network is built fresh per sampled
invocation from ``active_states()`` -- flows re-injected at their original
start times through the shared deterministic router (identical paths),
with ``remaining`` and ``ideal_finish_time`` copied from the primary's
synced states. That makes the oracle stateless between samples (nothing to
drift) and means a divergence can only come from the incremental machinery
feeding the scheduler stale state: exactly the bug class it hunts.

The scheduler is deep-copied so stateful wrappers (the memoizing cache,
profiling counters, coordinator logs) are not perturbed by the shadow
invocation; deterministic schedulers replay identically from equal state.

The twin's reconstruction also doubles as a *kernel* differential: by
default it runs the scalar waterfilling kernel (``twin_kernel="scalar"``)
regardless of the primary's allocation mode, so an engine running the
vectorized kernel (``allocation="vector"`` or auto-selected at scale)
gets a scalar-vs-vector cross-check on every sampled invocation -- the
two implementations must agree bit for bit under ``twin_tol=0``. Setting
``twin_kernel=vector`` flips the direction (vector twin against a scalar
primary); when numpy is unavailable the twin silently falls back to the
scalar kernel, which is always present.
"""

from __future__ import annotations

import copy
from typing import Dict, List

from ..scheduling.base import SchedulerView
from ..simulator.network import NetworkModel
from ..simulator.vector import HAVE_NUMPY
from .config import CheckConfig
from .violations import Violation


class TwinOracle:
    """Compares incremental allocations against a reconstructed reference."""

    def __init__(self, config: CheckConfig) -> None:
        self.config = config
        #: Sampled invocations actually compared.
        self.comparisons = 0
        #: Sampled invocations skipped because the scheduler resisted
        #: deep-copying (exotic user schedulers holding live handles).
        self.skipped = 0

    def compare(self, engine, view: SchedulerView, rates: Dict[int, float]) -> List[Violation]:
        """Shadow-execute one invocation; returns twin-divergence violations."""
        try:
            scheduler = copy.deepcopy(engine.scheduler)
        except Exception as exc:  # pragma: no cover - exotic schedulers only
            self.skipped += 1
            return [
                Violation(
                    invariant="twin",
                    time=view.now,
                    message=(
                        "twin oracle could not deep-copy the scheduler; "
                        "sampled invocation skipped"
                    ),
                    details={"error": repr(exc)},
                )
            ]
        self.comparisons += 1
        reference = self._reconstruct(engine.network, view.now)
        twin_view = SchedulerView(
            now=view.now,
            network=reference,
            echelonflows=engine.echelonflows,
            trigger_cause=view.trigger_cause,
        )
        expected = scheduler.allocate(twin_view)
        return self._diff(view.now, rates, expected, engine.network)

    # ------------------------------------------------------------------

    def _reconstruct(self, network: NetworkModel, now: float) -> NetworkModel:
        """Build a reference-mode network holding the primary's flows.

        Each flow is re-injected with the primary's *pinned* path (not a
        freshly-routed one): under fault injection, routes may have been
        recomputed around blocked links since the flow was admitted, and a
        flow migrated by :meth:`NetworkModel.reroute_flows` must be
        replayed on the path it actually occupies. ``remaining`` and the
        cached ideal finish time are copied from the primary's synced
        states, so the twin sees the same bytes without replaying the
        drain history.
        """
        network.sync_active()
        twin_vector = "off"
        if self.config.twin_kernel == "vector" and HAVE_NUMPY:
            twin_vector = "on"
        reference = NetworkModel(
            network.topology,
            network.router,
            strict=False,
            incremental=False,
            vector=twin_vector,
        )
        for state in network.active_states():
            flow_id = state.flow.flow_id
            twin_state = reference.inject(
                state.flow, state.start_time, path=network.path(flow_id)
            )
            twin_state.remaining = state.remaining
            twin_state.ideal_finish_time = state.ideal_finish_time
        reference.sync_active(now)
        return reference

    def _diff(
        self,
        now: float,
        actual: Dict[int, float],
        expected: Dict[int, float],
        network: NetworkModel,
    ) -> List[Violation]:
        """Rate-for-rate comparison over the active flows.

        Keys are compared through the engine's own semantics: a flow
        absent from an allocation idles at rate 0, so only active flows
        participate and a missing key equals an explicit zero.
        """
        tolerance = self.config.twin_tolerance
        violations: List[Violation] = []
        for state in network.active_states():
            flow_id = state.flow.flow_id
            got = actual.get(flow_id, 0.0)
            want = expected.get(flow_id, 0.0)
            if got == want:
                continue
            scale = max(abs(got), abs(want), 1e-12)
            if tolerance > 0.0 and abs(got - want) <= tolerance * scale:
                continue
            violations.append(
                Violation(
                    invariant="twin",
                    time=now,
                    message=(
                        f"incremental allocation diverges from the "
                        f"reference replay for flow {flow_id}"
                    ),
                    details={
                        "flow": flow_id,
                        "incremental_rate": got,
                        "reference_rate": want,
                        "relative_error": abs(got - want) / scale,
                    },
                )
            )
        return violations
