"""Violation records and the strict-mode exception.

A :class:`Violation` is one observed breach of one invariant from the
catalog in :mod:`repro.check.invariants`, stamped with simulation time and
enough structured detail to act on (link keys, flow ids, expected vs
actual values). In collect mode violations accumulate in a bounded
:class:`ViolationLog`; in strict mode the first one raises
:class:`CheckViolation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class CheckViolation(Exception):
    """An invariant was breached while the sanitizer ran in strict mode."""

    def __init__(self, violation: "Violation") -> None:
        super().__init__(violation.render())
        self.violation = violation


@dataclass
class Violation:
    """One breach of one invariant at one simulation instant."""

    invariant: str
    time: float
    message: str
    #: Structured context: flow/link ids, expected vs actual values.
    details: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "invariant": self.invariant,
            "time": self.time,
            "message": self.message,
            "details": dict(self.details),
        }

    def render(self) -> str:
        text = f"[{self.invariant}] t={self.time:.9g}: {self.message}"
        if self.details:
            context = ", ".join(
                f"{key}={value!r}" for key, value in sorted(self.details.items())
            )
            text = f"{text} ({context})"
        return text


class ViolationLog:
    """Bounded violation collector with exact per-invariant counts.

    Counts are always exact; only the retained :class:`Violation` objects
    are capped (the first ``capacity`` seen), bounding memory on runs that
    breach an invariant in a loop.
    """

    def __init__(self, capacity: int = 200) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.violations: List[Violation] = []
        self.counts: Dict[str, int] = {}
        self.total = 0

    def add(self, violation: Violation) -> None:
        self.total += 1
        self.counts[violation.invariant] = (
            self.counts.get(violation.invariant, 0) + 1
        )
        if len(self.violations) < self.capacity:
            self.violations.append(violation)

    def __len__(self) -> int:
        return self.total

    def to_dict(self) -> Dict:
        return {
            "total": self.total,
            "by_invariant": dict(sorted(self.counts.items())),
            "violations": [v.to_dict() for v in self.violations],
            "truncated": self.total > len(self.violations),
        }

    def render(self, limit: Optional[int] = 20) -> str:
        lines = [f"{self.total} violation(s)"]
        for name, count in sorted(self.counts.items()):
            lines.append(f"  {name}: {count}")
        shown = self.violations if limit is None else self.violations[:limit]
        lines.extend(f"  - {violation.render()}" for violation in shown)
        return "\n".join(lines)
