"""Command-line interface: ``python -m repro <command>``.

Commands
--------

* ``fig2``        -- the motivating example under every scheduler.
* ``table1``      -- the paradigm-compliance table.
* ``run``         -- one training job under one scheduler, with optional
                     timeline rendering and trace export.
* ``cluster``     -- a dynamic Poisson-arrival multi-tenant cluster.
* ``obs``         -- summarize a saved JSONL observability log.
* ``watch``       -- replay a saved JSONL log through the online AIOps
                     watch loop (streaming detectors + localization).
* ``aiops``       -- score the watch loop against the generated chaos
                     scenario suite (``repro aiops score``).
* ``diagnose``    -- critical path, tardiness attribution, and blame
                     from a saved JSONL event log (no re-simulation).
* ``diff``        -- attribute the per-job JCT delta between two event
                     logs of the same workload (the Fig. 2 diagnosis).
* ``schedulers``  -- list registered schedulers.
* ``models``      -- list the model zoo.

Observability (see docs/observability.md): every sim-running command
(``fig2``, ``table1``, ``run``, ``run-spec``, ``matrix``, ``cluster``)
accepts ``--emit-trace PATH`` (a Perfetto-loadable Chrome trace),
``--metrics-out PATH`` (a metrics summary JSON: scheduler invocations by
trigger cause, per-link peak/mean utilization, per-EchelonFlow
tardiness, diagnosis attribution), and ``--events-out PATH`` (a
structured JSONL event log for ``repro obs`` / ``repro diagnose`` /
``repro diff``). For example::

    python -m repro run --paradigm fsdp --emit-trace trace.json \
        --metrics-out metrics.json
    python -m repro fig2 --obs-scheduler coflow --events-out coflow.jsonl
    python -m repro diagnose coflow.jsonl
    python -m repro diff fair.jsonl coflow.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import (
    comp_finish_time,
    format_table,
    gpu_idleness,
    render_device_timeline,
    tardiness_report,
    write_trace,
)
from .core.units import gbps, megabytes
from .scheduling import make_scheduler, scheduler_names
from .simulator import Engine
from .topology import big_switch, linear_chain
from .workloads import (
    ClusterManager,
    JobTemplate,
    build_dp_allreduce,
    build_dp_ps,
    build_fsdp,
    build_pp_1f1b,
    build_pp_gpipe,
    build_pipeline_segment,
    build_tp_megatron,
    get_model,
    model_names,
    poisson_arrivals,
)
from .workloads.placement import ClusterPlacer

PARADIGMS = ("dp-allreduce", "dp-ps", "pp-gpipe", "pp-1f1b", "tp", "fsdp")

_OBS_FLAG_ATTRS = ("emit_trace", "metrics_out", "events_out")


def _add_obs_flags(parser) -> None:
    parser.add_argument(
        "--emit-trace",
        metavar="PATH",
        help="write a Chrome trace-event JSON (open in Perfetto)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a metrics-summary JSON report",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        help="write a structured JSONL event log (summarize with 'repro obs')",
    )


def _add_faults_flag(parser) -> None:
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        help="inject runtime faults (see docs/robustness.md), e.g. "
        "'link_down:h0-h1@2.0+1.0; degrade:h0-h1@4.0,factor=0.5'; the "
        "scheduler is wrapped in ResilientScheduler so crash_scheduler "
        "clauses degrade gracefully instead of aborting",
    )


def _validate_faults(args, topology) -> Optional[int]:
    """Parse --faults and validate its links against the built topology.

    On a bad spec, prints the offending clause (naming the unknown link)
    to stderr and returns exit code 2; on success, stores the parsed
    :class:`~repro.faults.FaultSchedule` back on ``args`` (the engine
    accepts it directly) and returns None.
    """
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from .faults import FaultSchedule, FaultSpecError

    try:
        schedule = (
            FaultSchedule.parse(spec) if isinstance(spec, str) else spec
        )
        schedule.validate_links(topology)
    except FaultSpecError as exc:
        print(f"bad --faults spec: {exc}", file=sys.stderr)
        return 2
    args.faults = schedule
    return None


def _wrap_resilient(args, scheduler):
    """Wrap ``scheduler`` for graceful degradation when --faults was given.

    Unconditional under --faults (not just for crash specs): a fault
    schedule is exactly the situation where one bad allocation should
    degrade to fair sharing rather than kill the run.
    """
    if not getattr(args, "faults", None):
        return scheduler
    from .faults import ResilientScheduler

    return ResilientScheduler(scheduler)


def _add_check_flag(parser) -> None:
    parser.add_argument(
        "--check",
        nargs="?",
        const="strict",
        default=None,
        metavar="SPEC",
        help="run under the repro.check sanitizer: bare --check means "
        "'strict'; also accepts 'collect' or a full spec such as "
        "'strict:twin=1.0'. Overrides the REPRO_CHECK env var.",
    )
    parser.add_argument(
        "--check-report",
        metavar="PATH",
        help="write the aggregated sanitizer violation report as JSON",
    )


def _configure_check(args) -> None:
    """Install the --check spec as the process default before the run."""
    spec = getattr(args, "check", None)
    if spec is not None:
        from . import check

        check.configure(spec)


def _finish_check(args, status: int) -> int:
    """Emit sanitizer summaries/reports after the command ran."""
    spec = getattr(args, "check", None)
    report_path = getattr(args, "check_report", None)
    if spec is None and report_path is None:
        return status
    from . import check

    config = check.default_config()
    stats = check.global_stats()
    if report_path:
        check.write_global_report(report_path)
        print(f"sanitizer report written to {report_path}")
    if config is not None and stats.sanitizers:
        print(
            f"sanitizer: mode={config.mode} engines={stats.sanitizers} "
            f"violations={stats.total}"
        )
        if stats.total:
            print(stats.log.render(limit=10))
    if spec is not None:
        check.clear_configuration()
    return status


def _obs_for(args):
    """An Instrumentation when any obs flag was given, else None.

    ``None`` keeps the engine's hot path entirely uninstrumented -- the
    zero-overhead default. ``--watch`` forces instrumentation: the watch
    loop consumes the live event log and needs per-link telemetry
    (``log_link_samples``) for its capacity/stall detectors.
    """
    watching = bool(getattr(args, "watch", False))
    if not watching and not any(
        getattr(args, attr, None) for attr in _OBS_FLAG_ATTRS
    ):
        return None
    from .obs import Instrumentation, JsonlEventLog

    # The Chrome exporter reads scheduler instants from the event log, so
    # keep one whenever a trace, an explicit log, or a watch loop was
    # requested.
    needs_log = watching or bool(
        getattr(args, "events_out", None) or getattr(args, "emit_trace", None)
    )
    return Instrumentation(
        event_log=JsonlEventLog() if needs_log else None,
        log_link_samples=watching,
    )


def _add_watch_flags(parser) -> None:
    parser.add_argument(
        "--watch",
        action="store_true",
        help="attach the online AIOps watch loop (streaming anomaly "
        "detection + fault localization; see docs/aiops.md)",
    )
    parser.add_argument(
        "--watch-heartbeat",
        type=float,
        metavar="SECONDS",
        default=None,
        help="sim-time heartbeat period for the watch loop's stall "
        "detectors (default: event-driven only)",
    )
    parser.add_argument(
        "--watch-mitigate",
        action="store_true",
        help="let the watch loop apply mitigations (cordon + reroute, "
        "pin fair-share fallback) on confident localizations",
    )


def _attach_watch(args, engine, obs):
    """Wire a WatchLoop onto a live engine when --watch was given."""
    if not getattr(args, "watch", False):
        return None
    from .obs.watch import WatchLoop

    return WatchLoop().attach(
        obs.event_log,
        engine=engine,
        mitigate=bool(getattr(args, "watch_mitigate", False)),
        heartbeat=getattr(args, "watch_heartbeat", None),
    )


def _print_watch_report(loop) -> None:
    if loop is None:
        return
    report = loop.report()
    rows = [
        ["events observed", report["events_seen"]],
        ["heartbeats", report["heartbeats"]],
        ["anomalies", len(report["anomalies"])],
    ]
    for anomaly in report["anomalies"][:8]:
        rows.append(
            [
                f"  {anomaly['detector']} @ {anomaly['t']:.4g}s",
                f"onset {anomaly['onset']:.4g}s "
                f"confidence {anomaly['confidence']:.2f}",
            ]
        )
    for localization in report["localizations"][:8]:
        best = localization["candidates"][:1]
        if best:
            rows.append(
                [
                    f"  root cause ({localization['detector']})",
                    f"{best[0]['kind']}:{best[0]['target']} "
                    f"(score {best[0]['score']:.2f})",
                ]
            )
    for action in report.get("mitigations", [])[:8]:
        rows.append(
            [
                f"  mitigation {action['action']}",
                f"{action['target']} applied={action['applied']}",
            ]
        )
    print()
    print(format_table(["watch", "value"], rows, title="AIOps watch loop"))


def _wrap_profiled(args, scheduler, obs):
    """Wrap ``scheduler`` for profiling when metrics or events were asked.

    The wrapper feeds the metrics report (``--metrics-out``) and emits
    ``scheduler_invocation`` events so saved logs (``--events-out``)
    carry wall-clock latency for ``repro obs`` percentiles.
    """
    if obs is None or not (
        getattr(args, "metrics_out", None) or getattr(args, "events_out", None)
    ):
        return scheduler, None
    from .obs import ProfiledScheduler

    profiled = ProfiledScheduler(
        scheduler, registry=obs.registry, event_log=obs.event_log
    )
    return profiled, profiled


def _emit_observability(
    args, trace, obs, profiler=None, scheduler_invocations=None, engine=None
) -> None:
    if obs is None:
        return
    from .obs import build_metrics_report, export_chrome_trace, write_metrics_report

    if getattr(args, "emit_trace", None):
        export_chrome_trace(trace, args.emit_trace, obs)
        print(f"chrome trace written to {args.emit_trace} (open in Perfetto)")
    if getattr(args, "metrics_out", None):
        report = build_metrics_report(
            trace,
            instrumentation=obs,
            profiler=profiler,
            scheduler_invocations=scheduler_invocations,
            sanitizer=getattr(engine, "check", None),
        )
        write_metrics_report(report, args.metrics_out)
        print(f"metrics report written to {args.metrics_out}")
    if getattr(args, "events_out", None) and obs.event_log is not None:
        obs.event_log.write(args.events_out)
        print(f"event log written to {args.events_out}")


def _build_job(args, workers: List[str]):
    model = get_model(args.model, batch_scale=args.batch_scale)
    if args.paradigm == "dp-allreduce":
        return build_dp_allreduce(
            "job",
            model,
            workers,
            bucket_bytes=megabytes(args.bucket_mb),
            iterations=args.iterations,
        )
    if args.paradigm == "dp-ps":
        return build_dp_ps(
            "job",
            model,
            workers[:-1],
            workers[-1],
            bucket_bytes=megabytes(args.bucket_mb),
            iterations=args.iterations,
        )
    if args.paradigm == "pp-gpipe":
        return build_pp_gpipe(
            "job", model, workers, args.micro_batches, iterations=args.iterations
        )
    if args.paradigm == "pp-1f1b":
        return build_pp_1f1b(
            "job", model, workers, args.micro_batches, iterations=args.iterations
        )
    if args.paradigm == "tp":
        return build_tp_megatron("job", model, workers, iterations=args.iterations)
    if args.paradigm == "fsdp":
        return build_fsdp("job", model, workers, iterations=args.iterations)
    raise ValueError(f"unknown paradigm {args.paradigm!r}")


def _topology_for(args, n_workers: int):
    if args.paradigm in ("pp-gpipe", "pp-1f1b"):
        return linear_chain(n_workers, gbps(args.bandwidth_gbps))
    return big_switch(n_workers, gbps(args.bandwidth_gbps))


def cmd_fig2(args) -> int:
    from .topology import two_hosts

    status = _validate_faults(args, two_hosts(1.0))
    if status is not None:
        return status
    # Observability flags instrument one run (--obs-scheduler, default
    # echelon -- the paper's policy); the others stay on the hot path.
    obs = _obs_for(args)
    rows = []
    for name in ("fair", "sjf", "coflow", "sincronia", "echelon"):
        job = build_pipeline_segment(
            "fig2", "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [2.0] * 3
        )
        observed = obs if name == args.obs_scheduler else None
        base = _wrap_resilient(args, make_scheduler(name))
        scheduler, profiler = (
            _wrap_profiled(args, base, observed)
            if observed is not None
            else (base, None)
        )
        engine = Engine(
            two_hosts(1.0),
            scheduler,
            instrumentation=observed,
            faults=args.faults,
        )
        job.submit_to(engine)
        trace = engine.run()
        rows.append([name, comp_finish_time(trace)])
        if observed is not None:
            _emit_observability(
                args,
                trace,
                observed,
                profiler=profiler,
                scheduler_invocations=engine.scheduler_invocations,
                engine=engine,
            )
    print(
        format_table(
            ["scheduler", "comp finish time"],
            rows,
            title="Fig. 2 motivating example (paper optimum: 8)",
        )
    )
    return 0


def cmd_table1(args) -> int:
    from .workloads import uniform_model

    model = uniform_model(
        "u8",
        8,
        param_bytes_per_layer=megabytes(40),
        activation_bytes=megabytes(20),
        forward_time=0.004,
    )
    hosts = [f"h{i}" for i in range(4)]
    cases = {
        "DP-AllReduce": (
            lambda: build_dp_allreduce("j", model, hosts, bucket_bytes=megabytes(80)),
            lambda: big_switch(4, gbps(10)),
        ),
        "DP-PS": (
            lambda: build_dp_ps("j", model, hosts, "h4", bucket_bytes=megabytes(80)),
            lambda: big_switch(5, gbps(10)),
        ),
        "PP": (
            lambda: build_pp_gpipe("j", model, hosts, 4),
            lambda: linear_chain(4, gbps(10)),
        ),
        "TP": (
            lambda: build_tp_megatron("j", model, hosts),
            lambda: big_switch(4, gbps(10)),
        ),
        "FSDP": (
            lambda: build_fsdp("j", model, hosts),
            lambda: big_switch(4, gbps(10)),
        ),
    }
    # Observability flags instrument a single cell of the table, chosen
    # by --obs-paradigm/--obs-scheduler; the rest stay uninstrumented.
    obs = _obs_for(args)
    rows = []
    for label, (build, topo) in cases.items():
        measured = {}
        for name in ("fair", "coflow", "echelon"):
            observed = (
                obs
                if obs is not None
                and label == args.obs_paradigm
                and name == args.obs_scheduler
                else None
            )
            scheduler, profiler = (
                _wrap_profiled(args, make_scheduler(name), observed)
                if observed is not None
                else (make_scheduler(name), None)
            )
            job = build()
            engine = Engine(topo(), scheduler, instrumentation=observed)
            job.submit_to(engine)
            trace = engine.run()
            measured[name] = comp_finish_time(trace)
            if observed is not None:
                _emit_observability(
                    args,
                    trace,
                    observed,
                    profiler=profiler,
                    scheduler_invocations=engine.scheduler_invocations,
                    engine=engine,
                )
        compliant = abs(measured["echelon"] - measured["coflow"]) <= 1e-6 * max(
            measured.values()
        )
        rows.append(
            [
                label,
                "yes" if compliant else "no",
                measured["fair"],
                measured["coflow"],
                measured["echelon"],
            ]
        )
    print(
        format_table(
            ["paradigm", "coflow-compliant", "fair", "coflow", "echelon"],
            rows,
            title="Table 1: Coflow compliance (measured)",
        )
    )
    return 0


def cmd_run(args) -> int:
    workers = [f"h{i}" for i in range(args.workers)]
    n_hosts = args.workers + (1 if args.paradigm == "dp-ps" else 0)
    topology = _topology_for(args, n_hosts)
    status = _validate_faults(args, topology)
    if status is not None:
        return status
    all_hosts = [f"h{i}" for i in range(n_hosts)]
    job = _build_job(args, all_hosts if args.paradigm == "dp-ps" else workers)
    obs = _obs_for(args)
    scheduler, profiler = _wrap_profiled(
        args, _wrap_resilient(args, make_scheduler(args.scheduler)), obs
    )
    engine = Engine(topology, scheduler, instrumentation=obs, faults=args.faults)
    job.submit_to(engine)
    loop = _attach_watch(args, engine, obs)
    trace = engine.run()

    report = tardiness_report(trace, job.echelonflows)
    idleness = gpu_idleness(trace, horizon=trace.end_time)
    print(
        format_table(
            ["metric", "value"],
            [
                ["paradigm", job.paradigm],
                ["scheduler", args.scheduler],
                ["comp finish time (s)", comp_finish_time(trace)],
                ["job completion (s)", trace.end_time],
                ["flows delivered", len(trace.flow_records)],
                ["worst EchelonFlow tardiness (s)", report.worst],
                ["sum tardiness (s)", report.total],
                [
                    "GPU idle share",
                    f"{1.0 - idleness.total_busy / (len(workers) * trace.end_time):.1%}",
                ],
            ],
            title=f"{args.model} / {args.paradigm} on {args.workers} workers",
        )
    )
    if args.timeline:
        print()
        print(render_device_timeline(trace, width=args.timeline_width))
    if args.trace:
        write_trace(trace, args.trace, fmt=args.trace_format)
        print(f"\ntrace written to {args.trace} ({args.trace_format})")
    _print_watch_report(loop)
    _emit_observability(
        args,
        trace,
        obs,
        profiler=profiler,
        scheduler_invocations=engine.scheduler_invocations,
        engine=engine,
    )
    return 0


def cmd_cluster(args) -> int:
    model = get_model(args.model, batch_scale=args.batch_scale)
    templates = [
        JobTemplate(
            "dp",
            lambda jid, ws: build_dp_allreduce(
                jid, model, ws, bucket_bytes=megabytes(args.bucket_mb)
            ),
            worker_count=args.job_workers,
            weight=2.0,
        ),
        JobTemplate(
            "fsdp",
            lambda jid, ws: build_fsdp(jid, model, ws),
            worker_count=args.job_workers,
            weight=1.0,
        ),
    ]
    topology = big_switch(args.hosts, gbps(args.bandwidth_gbps))
    status = _validate_faults(args, topology)
    if status is not None:
        return status
    obs = _obs_for(args)
    scheduler, profiler = _wrap_profiled(
        args, _wrap_resilient(args, make_scheduler(args.scheduler)), obs
    )
    engine = Engine(topology, scheduler, instrumentation=obs, faults=args.faults)
    manager = ClusterManager(engine, ClusterPlacer(topology))
    manager.schedule(poisson_arrivals(templates, args.rate, args.jobs, seed=args.seed))
    loop = _attach_watch(args, engine, obs)
    trace = engine.run()
    records = manager.completed_records()
    print(
        format_table(
            ["metric", "value"],
            [
                ["jobs completed", len(records)],
                ["mean JCT (s)", manager.mean_jct()],
                ["mean queueing delay (s)", manager.mean_queueing_delay()],
                ["makespan (s)", engine.now],
            ],
            title=(
                f"{args.jobs} Poisson arrivals at {args.rate}/s on "
                f"{args.hosts} hosts ({args.scheduler})"
            ),
        )
    )
    _print_watch_report(loop)
    _emit_observability(
        args,
        trace,
        obs,
        profiler=profiler,
        scheduler_invocations=engine.scheduler_invocations,
        engine=engine,
    )
    return 0


def cmd_matrix(args) -> int:
    from .analysis import run_matrix, standard_battery
    from .workloads import get_model

    model = None
    if args.model:
        model = get_model(args.model, batch_scale=args.batch_scale)
    schedulers = {
        name: (lambda name=name: make_scheduler(name))
        for name in args.schedulers.split(",")
    }
    cases = standard_battery(
        model=model,
        workers=args.workers,
        bandwidth=gbps(args.bandwidth_gbps),
        micro_batches=args.micro_batches,
    )
    obs = _obs_for(args)
    observe_cell = None
    if obs is not None:
        case_names = [case.name for case in cases]
        obs_case = args.obs_case or case_names[0]
        obs_scheduler = args.obs_scheduler or next(iter(schedulers))
        if obs_case not in case_names:
            print(
                f"error: --obs-case {obs_case!r} not in battery "
                f"({', '.join(case_names)})",
                file=sys.stderr,
            )
            return 1
        if obs_scheduler not in schedulers:
            print(
                f"error: --obs-scheduler {obs_scheduler!r} not in "
                f"--schedulers ({', '.join(schedulers)})",
                file=sys.stderr,
            )
            return 1
        observe_cell = (obs_case, obs_scheduler)
    result = run_matrix(
        cases,
        schedulers,
        metric=args.metric,
        instrumentation=obs,
        observe_cell=observe_cell,
        profile=bool(args.metrics_out or args.events_out),
    )
    print(result.to_table(title=f"{args.metric} across the standard battery"))
    if obs is not None and result.observed_trace is not None:
        print(f"observed cell: {result.observed_cell[0]} / {result.observed_cell[1]}")
        _emit_observability(
            args,
            result.observed_trace,
            obs,
            profiler=result.observed_profiler,
            scheduler_invocations=result.observed_invocations,
        )
    return 0


def cmd_run_spec(args) -> int:
    import json as _json

    from .faults import FaultSpecError
    from .workloads import run_spec_file

    obs = _obs_for(args)
    profiler = None
    try:
        if obs is not None:
            results, trace, engine = run_spec_file(
                args.spec,
                instrumentation=obs,
                profile=bool(args.metrics_out),
                faults=args.faults,
                detail=True,
            )
            if args.metrics_out:
                profiler = engine.scheduler
        else:
            results = run_spec_file(args.spec, faults=args.faults)
    except FaultSpecError as exc:
        print(f"bad faults spec: {exc}", file=sys.stderr)
        return 2
    rows = [
        [name, info["paradigm"], info["completion_time"], info["flows"]]
        for name, info in results["jobs"].items()
    ]
    print(
        format_table(
            ["job", "paradigm", "completion time (s)", "flows"],
            rows,
            title=(
                f"{args.spec}: makespan {results['makespan']:.4g}s, "
                f"{results['scheduler_invocations']} scheduler invocations"
            ),
        )
    )
    if args.json:
        print(_json.dumps(results, indent=2, sort_keys=True))
    if obs is not None:
        _emit_observability(
            args,
            trace,
            obs,
            profiler=profiler,
            scheduler_invocations=results["scheduler_invocations"],
            engine=engine,
        )
    return 0


def cmd_obs(args) -> int:
    import json as _json

    from .obs import summarize_jsonl

    try:
        summary = summarize_jsonl(args.log)
    except (OSError, ValueError) as exc:
        print(f"error: cannot summarize {args.log}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
        return 0
    rows = [["events", summary["events"]]]
    span = summary.get("time_span")
    if span:
        rows.append(["time span (s)", f"{span['start']:g} .. {span['end']:g}"])
    for kind, count in summary["by_kind"].items():
        rows.append([f"events: {kind}", count])
    scheduler = summary["scheduler"]
    rows.append(["scheduler invocations", scheduler["invocations"]])
    for cause, count in scheduler["by_cause"].items():
        rows.append([f"  cause: {cause}", count])
    latency = scheduler.get("latency_seconds")
    if latency:
        rows.append(
            [
                "scheduler latency p50/p95/p99 (s)",
                f"{latency['p50']:.3g} / {latency['p95']:.3g} / "
                f"{latency['p99']:.3g}",
            ]
        )
        rows.append(["scheduler latency max (s)", f"{latency['max']:.3g}"])
    flows = summary["flows"]
    rows.append(["flows delivered", flows["delivered"]])
    if "worst_tardiness" in flows:
        rows.append(["worst tardiness (s)", flows["worst_tardiness"]])
        rows.append(["mean tardiness (s)", flows["mean_tardiness"]])
    links = summary.get("links")
    if links:
        rows.append(["links observed", links["count"]])
        for key, peak in list(links["peak_utilization"].items())[:8]:
            rows.append([f"  peak util {key}", f"{peak:.1%}"])
    robustness = summary.get("robustness")
    if robustness:
        rows.append(["faults injected", robustness["faults"]])
        for action, count in robustness["fault_actions"].items():
            rows.append([f"  fault: {action}", count])
        span = (
            f"{robustness['first_fault_time']:g} .. "
            f"{robustness['last_fault_time']:g}"
            if "first_fault_time" in robustness
            else "-"
        )
        rows.append(["fault time span (s)", span])
        rows.append(["scheduler fallbacks", robustness["scheduler_fallbacks"]])
        for kind, count in robustness["fallback_kinds"].items():
            rows.append([f"  fallback: {kind}", count])
        rows.append(["flow reroutes", robustness["flow_reroutes"]])
        rows.append(
            [
                "migrated / stranded flows",
                f"{robustness['migrated_flows']} / "
                f"{robustness['stranded_flows']}",
            ]
        )
        if "anomalies" in robustness:
            rows.append(["watch anomalies", robustness["anomalies"]])
            for detector, count in robustness["anomaly_detectors"].items():
                rows.append([f"  anomaly: {detector}", count])
    truncated = summary.get("truncated")
    if truncated:
        rows.append(
            [
                "log truncated (evicted events)",
                sum(truncated["by_kind"].values()),
            ]
        )
    print(format_table(["metric", "value"], rows, title=f"obs summary: {args.log}"))
    return 0


def cmd_watch(args) -> int:
    import json as _json

    from .obs.watch import WatchLoop

    loop = WatchLoop()
    try:
        loop.replay_jsonl(args.log)
    except (OSError, ValueError) as exc:
        print(f"error: cannot replay {args.log}: {exc}", file=sys.stderr)
        return 1
    report = loop.report()
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
        return 0
    rows = [
        ["events replayed", report["events_seen"]],
        ["anomalies", len(report["anomalies"])],
    ]
    for anomaly, localization in zip(
        report["anomalies"][: args.top], report["localizations"][: args.top]
    ):
        rows.append(
            [
                f"{anomaly['detector']} @ {anomaly['t']:.4g}s",
                f"onset {anomaly['onset']:.4g}s "
                f"confidence {anomaly['confidence']:.2f}",
            ]
        )
        for candidate in localization["candidates"][:3]:
            rows.append(
                [
                    f"  {candidate['kind']}:{candidate['target']}",
                    f"score {candidate['score']:.2f}",
                ]
            )
    print(
        format_table(
            ["finding", "detail"], rows, title=f"watch replay: {args.log}"
        )
    )
    return 0


def cmd_aiops(args) -> int:
    import json as _json

    from .obs.watch import (
        MULTI_FAULT_KINDS,
        MULTI_PARADIGMS,
        MULTI_SMOKE_PARADIGMS,
        NoiseSpecError,
        aiops_score,
        parse_noise_spec,
        render_score,
    )

    if args.noise:
        try:
            parse_noise_spec(args.noise)
        except NoiseSpecError as exc:
            print(f"bad --noise spec: {exc}", file=sys.stderr)
            return 2
    paradigms = kinds = None
    if args.multi:
        kinds = MULTI_FAULT_KINDS
        paradigms = MULTI_SMOKE_PARADIGMS if args.smoke else MULTI_PARADIGMS
    report = aiops_score(
        paradigms=paradigms,
        kinds=kinds,
        scheduler=args.scheduler,
        mitigate=not args.no_mitigate,
        smoke=args.smoke and not args.multi,
        noise=args.noise,
        seed=args.seed,
    )
    if args.out:
        with open(args.out, "w") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"aiops score written to {args.out}")
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_score(report))
    return 0


def cmd_system(args) -> int:
    import json as _json

    from .system.runtime import (
        SCENARIO_NAMES,
        format_chaos_table,
        run_chaos_suite,
    )

    names = None
    if args.scenario:
        unknown = [n for n in args.scenario if n not in SCENARIO_NAMES]
        if unknown:
            print(
                f"unknown scenario(s) {', '.join(unknown)}; "
                f"options: {', '.join(SCENARIO_NAMES)}",
                file=sys.stderr,
            )
            return 2
        names = list(args.scenario)
    report = run_chaos_suite(
        smoke=args.smoke,
        seed=args.seed,
        inflation_bound=args.inflation_bound,
        names=names,
    )
    if args.out:
        with open(args.out, "w") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"chaos report written to {args.out}")
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_chaos_table(report))
    return 0 if report["ok"] else 1


def _render_whatif(result) -> str:
    """Human-readable summary of one what-if answer."""
    lines = [
        format_table(
            ["metric", "baseline", "variant", "delta"],
            [
                [
                    "makespan (s)",
                    f"{result.baseline_makespan:.4f}",
                    f"{result.variant_makespan:.4f}",
                    f"{result.makespan_delta:+.4f}",
                ],
            ],
            title=f"{result.query.describe()}  [{result.mode}, "
            f"t={result.time:.4f}s, {result.wall_clock * 1000:.0f}ms]",
        )
    ]
    jct_rows = []
    for job_id, triple in sorted(result.jct.items()):
        jct_rows.append(
            [
                job_id,
                "-" if triple["baseline"] is None else f"{triple['baseline']:.4f}",
                "-" if triple["variant"] is None else f"{triple['variant']:.4f}",
                "-" if triple["delta"] is None else f"{triple['delta']:+.4f}",
            ]
        )
    lines.append(
        format_table(["job", "JCT base", "JCT variant", "delta"], jct_rows)
    )
    moved = [
        (gid, t["delta"])
        for gid, t in result.tardiness.items()
        if t["delta"] is not None and abs(t["delta"]) > 1e-9
    ]
    if moved:
        moved.sort(key=lambda item: -abs(item[1]))
        lines.append(
            format_table(
                ["EchelonFlow group", "tardiness delta (s)"],
                [[gid, f"{delta:+.4f}"] for gid, delta in moved[:10]],
                title="groups whose tardiness moved",
            )
        )
    if result.added_jobs:
        lines.append("added jobs: " + ", ".join(result.added_jobs))
    if result.removed_jobs:
        lines.append("removed jobs: " + ", ".join(result.removed_jobs))
    return "\n".join(lines)


def cmd_whatif(args) -> int:
    import json as _json

    from .whatif import (
        WhatIfError,
        WhatIfQueryError,
        WhatIfService,
        parse_batch,
        parse_query,
    )

    if not args.batch and not args.query:
        print("error: give a query or --batch FILE", file=sys.stderr)
        return 1
    try:
        if args.batch:
            with open(args.batch) as handle:
                queries = parse_batch(handle.read())
        else:
            queries = [parse_query(args.query)]
    except OSError as exc:
        print(f"error: cannot read {args.batch}: {exc}", file=sys.stderr)
        return 1
    except WhatIfQueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not queries:
        print("error: batch file contains no queries", file=sys.stderr)
        return 1

    service = WhatIfService.build(
        hosts=args.hosts,
        jobs=args.jobs,
        iterations=args.iterations,
        scheduler=args.scheduler,
    )
    detail = "deltas" if args.deltas_only else "full"
    results = []
    failures = 0
    for query in queries:
        try:
            results.append(service.run_query(query, mode=args.mode, detail=detail))
        except WhatIfError as exc:
            failures += 1
            print(f"error: {exc}", file=sys.stderr)
    if args.json:
        print(
            _json.dumps(
                [result.to_json() for result in results],
                indent=2,
                sort_keys=True,
                default=str,
            )
        )
    else:
        print(
            f"baseline: {args.jobs} jobs on {args.hosts} hosts, makespan "
            f"{service.baseline_makespan:.4f}s "
            f"(simulated in {service.baseline_wall_clock:.2f}s)"
        )
        for result in results:
            print()
            print(_render_whatif(result))
    return 1 if failures and not results else 0


def cmd_diagnose(args) -> int:
    import json as _json

    from .obs.diagnosis import RunArtifacts, diagnose, render_diagnosis

    try:
        artifacts = RunArtifacts.from_jsonl(args.log)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {args.log}: {exc}", file=sys.stderr)
        return 1
    report = diagnose(artifacts, top=args.top)
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(render_diagnosis(report, top=args.top))
    return 0


def cmd_diff(args) -> int:
    import json as _json

    from .obs.diagnosis import RunArtifacts, diff_runs, render_diff

    try:
        run_a = RunArtifacts.from_jsonl(args.run_a)
        run_b = RunArtifacts.from_jsonl(args.run_b)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load event logs: {exc}", file=sys.stderr)
        return 1
    report = diff_runs(run_a, run_b, top=args.top)
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(render_diff(report, top=args.top))
    return 0


def cmd_schedulers(args) -> int:
    for name in scheduler_names():
        print(name)
    return 0


def cmd_models(args) -> int:
    for name in model_names():
        model = get_model(name)
        params_m = model.total_param_bytes / 4.0 / 1e6
        print(f"{name}: {model.num_layers} layers, {params_m:.1f}M parameters")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EchelonFlow (HotNets '22) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig2 = sub.add_parser("fig2", help="run the Fig. 2 motivating example")
    fig2.add_argument(
        "--obs-scheduler",
        choices=("fair", "sjf", "coflow", "sincronia", "echelon"),
        default="echelon",
        help="which scheduler's run the obs flags instrument",
    )
    _add_obs_flags(fig2)
    _add_check_flag(fig2)
    _add_faults_flag(fig2)

    table1 = sub.add_parser(
        "table1", help="reproduce the Table 1 compliance matrix"
    )
    table1.add_argument(
        "--obs-paradigm",
        choices=("DP-AllReduce", "DP-PS", "PP", "TP", "FSDP"),
        default="PP",
        help="which paradigm row the obs flags instrument",
    )
    table1.add_argument(
        "--obs-scheduler",
        choices=("fair", "coflow", "echelon"),
        default="echelon",
        help="which scheduler column the obs flags instrument",
    )
    _add_obs_flags(table1)
    _add_check_flag(table1)

    sub.add_parser("schedulers", help="list registered schedulers")
    sub.add_parser("models", help="list the model zoo")

    obs = sub.add_parser(
        "obs", help="summarize a saved JSONL observability log"
    )
    obs.add_argument("log", help="path to a JSONL log (from --events-out)")
    obs.add_argument("--json", action="store_true", help="dump raw JSON")

    watch = sub.add_parser(
        "watch",
        help="replay a saved JSONL log through the AIOps watch loop "
        "(streaming anomaly detection + root-cause localization)",
    )
    watch.add_argument("log", help="path to a JSONL log (from --events-out)")
    watch.add_argument("--json", action="store_true", help="dump raw JSON")
    watch.add_argument(
        "--top", type=int, default=10, help="anomalies to print (default 10)"
    )

    aiops = sub.add_parser(
        "aiops", help="AIOps watch-loop scoring (see docs/aiops.md)"
    )
    aiops_sub = aiops.add_subparsers(dest="aiops_command", required=True)
    score = aiops_sub.add_parser(
        "score",
        help="grade the watch loop against the chaos scenario suite: "
        "detection latency, localization accuracy, FP rate, recovered JCT",
    )
    score.add_argument(
        "--smoke",
        action="store_true",
        help="CI subset: pp/dp/ls fabrics, clean + link_down + degrade",
    )
    score.add_argument(
        "--scheduler",
        default="echelon",
        choices=scheduler_names(),
        help="scheduler under test (default echelon)",
    )
    score.add_argument(
        "--no-mitigate",
        action="store_true",
        help="skip the paired mitigation runs (faster; no recovered-JCT column)",
    )
    score.add_argument(
        "--multi",
        action="store_true",
        help="grade the multi-fault grid instead (concurrent faults, "
        "correlated flaps, cascades, hot-neighbour tenants; scored as "
        "per-fault precision/recall over claimed fault sets)",
    )
    score.add_argument(
        "--noise",
        metavar="SPEC",
        help="degrade the telemetry channel between engine and loop. "
        "SPEC is comma-separated key=value pairs: sample=K (keep 1-in-K "
        "link_sample/flow_rates events), drop=P (i.i.d. loss), "
        "burst=PxL (burst loss: gates at rate P, each burst eats L "
        "events), delay=S (delay with jitter up to S seconds, bounded "
        "reordering), dup=P (duplication), e.g. "
        "'sample=4,drop=0.1,burst=0.02x5,delay=0.001,dup=0.01'; "
        "'off' disables",
    )
    score.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="channel RNG seed; each scenario mixes in its name, so one "
        "seed reproduces the whole grid (default 0)",
    )
    score.add_argument("--json", action="store_true", help="dump raw JSON")
    score.add_argument(
        "--out", metavar="PATH", help="also write the report JSON to PATH"
    )

    system = sub.add_parser(
        "system", help="fault-tolerant control-plane runtime tools"
    )
    system_sub = system.add_subparsers(dest="system_command", required=True)
    chaos = system_sub.add_parser(
        "chaos",
        help="run the scored control-plane chaos suite: crash/partition/"
        "noise scenarios graded on completion, JCT inflation, "
        "determinism, and identity-channel bit-identity "
        "(see docs/control_plane.md)",
    )
    chaos.add_argument(
        "--smoke",
        action="store_true",
        help="CI subset: baseline + crash_coordinator + rpc_noise",
    )
    chaos.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="run only the named scenario(s); repeatable",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="RPC channel RNG seed (default 0); the suite runs every "
        "scenario twice and asserts digest equality per (spec, seed)",
    )
    chaos.add_argument(
        "--inflation-bound",
        type=float,
        default=1.5,
        metavar="X",
        help="max tolerated per-job JCT inflation over the fault-free "
        "baseline (default 1.5)",
    )
    chaos.add_argument("--json", action="store_true", help="dump raw JSON")
    chaos.add_argument(
        "--out", metavar="PATH", help="also write the report JSON to PATH"
    )
    _add_check_flag(chaos)

    whatif = sub.add_parser(
        "whatif",
        help="warm-started counterfactual queries against a baseline "
        "cluster run (see docs/whatif.md)",
    )
    whatif.add_argument(
        "query",
        nargs="?",
        help="one query, e.g. 'kill_link:h0-core@40%%+10%%' or "
        "'submit_job:fsdp@25%%' ('%%' = fraction of baseline makespan)",
    )
    whatif.add_argument(
        "--batch",
        metavar="FILE",
        help="answer every query in FILE (one per line, # comments)",
    )
    whatif.add_argument("--hosts", type=int, default=16)
    whatif.add_argument("--jobs", type=int, default=8)
    whatif.add_argument(
        "--iterations", type=int, default=2, help="training iterations per job"
    )
    whatif.add_argument(
        "--scheduler", default="echelon", choices=scheduler_names()
    )
    whatif.add_argument(
        "--mode",
        choices=("warm", "cold"),
        default="warm",
        help="warm: fork the baseline and delta-resimulate (default); "
        "cold: replay from scratch (benchmark control)",
    )
    whatif.add_argument(
        "--deltas-only",
        action="store_true",
        help="skip the per-flow run-diff report (much faster on batches)",
    )
    whatif.add_argument("--json", action="store_true", help="dump raw JSON")

    diagnose = sub.add_parser(
        "diagnose",
        help="critical path, tardiness attribution, and contention blame "
        "from a saved JSONL event log",
    )
    diagnose.add_argument("log", help="path to a JSONL log (from --events-out)")
    diagnose.add_argument("--json", action="store_true", help="dump raw JSON")
    diagnose.add_argument(
        "--top", type=int, default=10, help="rows per section (default 10)"
    )

    diff = sub.add_parser(
        "diff",
        help="attribute the JCT delta between two event logs of the same "
        "workload under different schedulers",
    )
    diff.add_argument("run_a", metavar="RUN_A", help="baseline JSONL event log")
    diff.add_argument("run_b", metavar="RUN_B", help="comparison JSONL event log")
    diff.add_argument("--json", action="store_true", help="dump raw JSON")
    diff.add_argument(
        "--top", type=int, default=10, help="rows per section (default 10)"
    )

    run = sub.add_parser("run", help="run one training job")
    run.add_argument("--paradigm", choices=PARADIGMS, default="pp-gpipe")
    run.add_argument("--scheduler", default="echelon")
    run.add_argument("--model", default="bert_large")
    run.add_argument("--workers", type=int, default=4)
    run.add_argument("--micro-batches", type=int, default=4)
    run.add_argument("--iterations", type=int, default=1)
    run.add_argument("--bucket-mb", type=float, default=50.0)
    run.add_argument("--bandwidth-gbps", type=float, default=10.0)
    run.add_argument("--batch-scale", type=float, default=1.0)
    run.add_argument("--timeline", action="store_true", help="render ASCII Gantt")
    run.add_argument("--timeline-width", type=int, default=72)
    run.add_argument("--trace", help="write the trace to this path")
    run.add_argument(
        "--trace-format", choices=("json", "csv", "chrome"), default="json"
    )
    _add_obs_flags(run)
    _add_check_flag(run)
    _add_faults_flag(run)
    _add_watch_flags(run)

    matrix = sub.add_parser(
        "matrix", help="run the standard workload battery across schedulers"
    )
    matrix.add_argument(
        "--schedulers", default="fair,sjf,coflow,sincronia,echelon"
    )
    matrix.add_argument("--model", default=None)
    matrix.add_argument("--workers", type=int, default=4)
    matrix.add_argument("--micro-batches", type=int, default=4)
    matrix.add_argument("--bandwidth-gbps", type=float, default=10.0)
    matrix.add_argument("--batch-scale", type=float, default=1.0)
    matrix.add_argument(
        "--metric", choices=("comp_finish", "completion"), default="comp_finish"
    )
    matrix.add_argument(
        "--obs-case",
        default=None,
        help="battery case the obs flags instrument (default: first case)",
    )
    matrix.add_argument(
        "--obs-scheduler",
        default=None,
        help="scheduler the obs flags instrument (default: first listed)",
    )
    _add_obs_flags(matrix)
    _add_check_flag(matrix)

    run_spec = sub.add_parser(
        "run-spec", help="run a declarative JSON experiment spec"
    )
    run_spec.add_argument("spec", help="path to the JSON spec file")
    run_spec.add_argument("--json", action="store_true", help="also dump raw JSON")
    _add_obs_flags(run_spec)
    _add_check_flag(run_spec)
    _add_faults_flag(run_spec)

    cluster = sub.add_parser("cluster", help="dynamic multi-tenant cluster")
    cluster.add_argument("--scheduler", default="echelon")
    cluster.add_argument("--model", default="resnet50")
    cluster.add_argument("--jobs", type=int, default=16)
    cluster.add_argument("--rate", type=float, default=10.0)
    cluster.add_argument("--hosts", type=int, default=12)
    cluster.add_argument("--job-workers", type=int, default=4)
    cluster.add_argument("--bucket-mb", type=float, default=50.0)
    cluster.add_argument("--bandwidth-gbps", type=float, default=10.0)
    cluster.add_argument("--batch-scale", type=float, default=1.0)
    cluster.add_argument("--seed", type=int, default=0)
    _add_obs_flags(cluster)
    _add_check_flag(cluster)
    _add_faults_flag(cluster)
    _add_watch_flags(cluster)
    return parser


_COMMANDS = {
    "fig2": cmd_fig2,
    "table1": cmd_table1,
    "run": cmd_run,
    "run-spec": cmd_run_spec,
    "matrix": cmd_matrix,
    "cluster": cmd_cluster,
    "obs": cmd_obs,
    "watch": cmd_watch,
    "aiops": cmd_aiops,
    "system": cmd_system,
    "whatif": cmd_whatif,
    "diagnose": cmd_diagnose,
    "diff": cmd_diff,
    "schedulers": cmd_schedulers,
    "models": cmd_models,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_check(args)
    status = _COMMANDS[args.command](args)
    return _finish_check(args, status)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
