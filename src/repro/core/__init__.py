"""Core EchelonFlow abstraction: flows, arrangements, tardiness objectives."""

from .arrangement import (
    ArrangementFunction,
    CoflowArrangement,
    PhasedArrangement,
    StaggeredArrangement,
    TabledArrangement,
    arrangement_from_compute_durations,
)
from .coflow import bottleneck_duration, coflow_completion_time, port_loads
from .echelonflow import EchelonFlow, make_coflow, total_tardiness
from .flow import (
    Flow,
    FlowIdAllocator,
    FlowState,
    current_flow_id_allocator,
    use_flow_id_allocator,
)
from .tardiness import (
    CompletionTimeObjective,
    FlowOutcome,
    SchedulingObjective,
    TardinessObjective,
    TardinessReport,
    evaluate_tardiness,
)
from .units import EPS, gbps, gigabytes, mbps, megabytes, milliseconds

__all__ = [
    "ArrangementFunction",
    "CoflowArrangement",
    "StaggeredArrangement",
    "PhasedArrangement",
    "TabledArrangement",
    "arrangement_from_compute_durations",
    "EchelonFlow",
    "make_coflow",
    "total_tardiness",
    "Flow",
    "FlowIdAllocator",
    "FlowState",
    "current_flow_id_allocator",
    "use_flow_id_allocator",
    "FlowOutcome",
    "SchedulingObjective",
    "TardinessObjective",
    "CompletionTimeObjective",
    "TardinessReport",
    "evaluate_tardiness",
    "coflow_completion_time",
    "bottleneck_duration",
    "port_loads",
    "EPS",
    "gbps",
    "mbps",
    "megabytes",
    "gigabytes",
    "milliseconds",
]
