"""Arrangement functions: the "shape + distance" of an echelon formation.

The paper (Section 3.1, Fig. 6) describes an EchelonFlow's computation
arrangement with an *arrangement function* ``g(D, r)`` that derives the ideal
finish time ``d_j`` of every flow ``f_j`` from the reference time ``r`` (the
start time of the head flow). We represent arrangement functions as offset
generators: ``d_j = r + offset(j)``, which covers every case study in the
paper:

* Eq. 5  (Coflow-compliant paradigms): ``offset(j) = 0``
* Eq. 6  (pipeline parallelism):       ``offset(j) = j * T``
* Eq. 7  (FSDP, per-Coflow):           forward ramp by ``T_fwd`` then
  backward ramp by ``T_bwd``
* arbitrary profiled shapes:           explicit offset tables

Offsets must be non-decreasing in ``j`` because flows in an EchelonFlow are
ordered by start time (Def. 3.1) and a later flow can never be *required* to
finish before an earlier one under a valid computation arrangement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .units import EPS


class ArrangementFunction:
    """Maps a flow index to its ideal-finish-time offset from the reference.

    Subclasses implement :meth:`offset`. The base class provides vectorised
    helpers and validation.
    """

    def offset(self, index: int) -> float:
        """Offset of flow ``index``'s ideal finish time from the reference."""
        raise NotImplementedError

    def ideal_finish_times(self, reference_time: float, count: int) -> List[float]:
        """Ideal finish times ``D = {d_0 .. d_{count-1}}`` for a reference.

        ``d_0 = r`` always holds for arrangement functions with
        ``offset(0) == 0``, which is every arrangement in the paper; custom
        arrangements may shift the head flow too.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [reference_time + self.offset(j) for j in range(count)]

    def validate(self, count: int) -> None:
        """Check monotonicity of offsets over the first ``count`` indices."""
        previous = None
        for j in range(count):
            value = self.offset(j)
            if previous is not None and value < previous - EPS:
                raise ValueError(
                    f"arrangement offsets must be non-decreasing; "
                    f"offset({j}) = {value} < offset({j - 1}) = {previous}"
                )
            previous = value

    def is_coflow(self, count: int) -> bool:
        """True when all ``count`` offsets coincide (Eq. 5 / Property 2)."""
        if count <= 1:
            return True
        head = self.offset(0)
        return all(abs(self.offset(j) - head) <= EPS for j in range(1, count))


@dataclass(frozen=True)
class CoflowArrangement(ArrangementFunction):
    """Eq. 5: every flow shares the reference as its ideal finish time.

    This is the arrangement of DP-AllReduce, DP-PS, and TP (Table 1), and is
    exactly the Coflow abstraction: minimizing the maximum tardiness of an
    EchelonFlow with this arrangement minimizes the Coflow completion time
    (Property 2).
    """

    def offset(self, index: int) -> float:
        if index < 0:
            raise IndexError(f"negative flow index {index}")
        return 0.0


@dataclass(frozen=True)
class StaggeredArrangement(ArrangementFunction):
    """Eq. 6: ideal finish times staggered by a constant distance ``T``.

    ``T`` is the per-micro-batch computation time obtained from profiling;
    this is the arrangement of GPipe-style pipeline parallelism, where the
    consumer worker computes micro-batch ``j`` for time ``T`` immediately
    after flow ``f_j`` lands.
    """

    distance: float

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise ValueError(f"stagger distance must be >= 0, got {self.distance}")

    def offset(self, index: int) -> float:
        if index < 0:
            raise IndexError(f"negative flow index {index}")
        return index * self.distance


@dataclass(frozen=True)
class PhasedArrangement(ArrangementFunction):
    """Eq. 7: FSDP's two-phase ramp over per-layer Coflows.

    For an ``n``-layer network, Coflows ``C_0 .. C_{n-1}`` belong to the
    forward phase and are spaced by ``T_fwd``; Coflows ``C_n .. C_{2n-1}``
    belong to the backward phase and are spaced by ``T_bwd``. The offset of
    Coflow ``i`` is therefore a piecewise-linear ramp. Indices here address
    *Coflows*; expanding member flows to a common per-Coflow ideal finish
    time is the job of :class:`~repro.core.echelonflow.EchelonFlow` with a
    ``coflow_of`` grouping.
    """

    layers: int
    forward_distance: float
    backward_distance: float

    def __post_init__(self) -> None:
        if self.layers <= 0:
            raise ValueError(f"layers must be positive, got {self.layers}")
        if self.forward_distance < 0 or self.backward_distance < 0:
            raise ValueError("phase distances must be non-negative")

    def offset(self, index: int) -> float:
        if index < 0:
            raise IndexError(f"negative flow index {index}")
        if index > 2 * self.layers - 1:
            raise IndexError(
                f"FSDP arrangement over {self.layers} layers has "
                f"{2 * self.layers} Coflows; index {index} is out of range"
            )
        forward_steps = min(index, self.layers - 1)
        backward_steps = max(0, index - (self.layers - 1))
        return (
            forward_steps * self.forward_distance
            + backward_steps * self.backward_distance
        )


@dataclass(frozen=True)
class TabledArrangement(ArrangementFunction):
    """Arbitrary profiled offsets, e.g. for 1F1B pipeline schedules.

    The paper notes that PP variants reorder computations but "relations
    between the data flows can also be expressed as an arrangement function,
    albeit more complicated than Eq. 6" -- this class is that escape hatch.
    """

    offsets: Sequence[float]

    def __post_init__(self) -> None:
        offsets = tuple(float(x) for x in self.offsets)
        object.__setattr__(self, "offsets", offsets)
        for j in range(1, len(offsets)):
            if offsets[j] < offsets[j - 1] - EPS:
                raise ValueError(
                    f"offsets must be non-decreasing; "
                    f"offsets[{j}] = {offsets[j]} < offsets[{j - 1}] = {offsets[j - 1]}"
                )

    def offset(self, index: int) -> float:
        if index < 0:
            raise IndexError(f"negative flow index {index}")
        if index >= len(self.offsets):
            raise IndexError(
                f"arrangement table has {len(self.offsets)} entries; "
                f"index {index} is out of range"
            )
        return self.offsets[index]


def arrangement_from_compute_durations(durations: Sequence[float]) -> TabledArrangement:
    """Build an arrangement from profiled per-unit computation durations.

    Flow ``f_j`` feeds the computation unit that runs immediately after unit
    ``j-1``; its ideal finish time therefore trails the head flow by the sum
    of the first ``j`` computation durations (the "distances" of Fig. 6a).
    """
    offsets = [0.0]
    total = 0.0
    for duration in durations[:-1] if durations else []:
        if duration < 0:
            raise ValueError(f"computation durations must be >= 0, got {duration}")
        total += duration
        offsets.append(total)
    return TabledArrangement(tuple(offsets))
