"""Coflow compatibility layer (Property 2).

Coflow [Chowdhury & Stoica, HotNets '12] groups semantically-related flows
and minimizes the completion time of the last one. EchelonFlow subsumes it:
a Coflow is an EchelonFlow whose arrangement is Eq. 5 (all ideal finish times
equal the reference time). This module provides the traditional Coflow
vocabulary -- completion time, bottleneck duration ``Gamma`` -- on top of the
EchelonFlow types, so that Coflow baselines (Varys/MADD) and the superset
proofs can be written in their native terms.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from .echelonflow import EchelonFlow, make_coflow
from .flow import Flow, FlowState

__all__ = ["make_coflow", "coflow_completion_time", "port_loads", "bottleneck_duration"]


def coflow_completion_time(
    coflow: EchelonFlow, actual_finish_times: Dict[int, float]
) -> float:
    """CCT: finish of the last flow minus the Coflow's reference time."""
    if coflow.reference_time is None:
        raise RuntimeError(f"coflow {coflow.ef_id} has not started")
    last = max(actual_finish_times[flow.flow_id] for flow in coflow.flows)
    return last - coflow.reference_time


def port_loads(flows: Iterable[Flow]) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Aggregate bytes per sending and per receiving host ("ports").

    Varys models the fabric as one big switch where each host has an ingress
    and an egress port; the load on a port is the total bytes crossing it.
    """
    egress: Dict[str, float] = {}
    ingress: Dict[str, float] = {}
    for flow in flows:
        egress[flow.src] = egress.get(flow.src, 0.0) + flow.size
        ingress[flow.dst] = ingress.get(flow.dst, 0.0) + flow.size
    return egress, ingress


def bottleneck_duration(
    flows: Iterable[Flow],
    egress_capacity: Mapping[str, float],
    ingress_capacity: Mapping[str, float],
) -> float:
    """``Gamma``: the minimum possible CCT of a Coflow on a big switch.

    ``Gamma = max(max_p load_egress(p)/cap(p), max_p load_ingress(p)/cap(p))``.
    MADD allocates each flow the rate that finishes it exactly at ``Gamma``.
    """
    flows = list(flows)
    egress, ingress = port_loads(flows)
    gamma = 0.0
    for port, load in egress.items():
        capacity = egress_capacity[port]
        if capacity <= 0:
            raise ValueError(f"egress capacity of {port!r} must be positive")
        gamma = max(gamma, load / capacity)
    for port, load in ingress.items():
        capacity = ingress_capacity[port]
        if capacity <= 0:
            raise ValueError(f"ingress capacity of {port!r} must be positive")
        gamma = max(gamma, load / capacity)
    return gamma


def remaining_bottleneck_duration(
    states: Iterable[FlowState],
    egress_capacity: Mapping[str, float],
    ingress_capacity: Mapping[str, float],
) -> float:
    """``Gamma`` over *remaining* bytes -- Varys' SEBF ordering key."""
    egress: Dict[str, float] = {}
    ingress: Dict[str, float] = {}
    for state in states:
        if state.finished:
            continue
        flow = state.flow
        egress[flow.src] = egress.get(flow.src, 0.0) + state.remaining
        ingress[flow.dst] = ingress.get(flow.dst, 0.0) + state.remaining
    gamma = 0.0
    for port, load in egress.items():
        gamma = max(gamma, load / egress_capacity[port])
    for port, load in ingress.items():
        gamma = max(gamma, load / ingress_capacity[port])
    return gamma
