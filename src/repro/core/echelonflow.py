"""The EchelonFlow network abstraction (Definition 3.1).

An EchelonFlow ``H = {f_0, f_1, ..., f_{|H|-1}}`` is a set of flows with
*related ideal finish times*; the relation is an arrangement function of the
reference time ``r``, where ``r`` is the start time of the head flow ``f_0``
and ``d_0 = r = s_0``.

Flows are indexed by their ``index_in_group``; several flows may share an
index, in which case they form a Coflow *inside* the EchelonFlow and share a
single ideal finish time (this is exactly FSDP's "staggered Coflow finish
time" arrangement, Fig. 3 / Eq. 7).

Recalibration (Fig. 6b): ideal finish times are derived from the reference
time, *not* from each flow's own start time. A flow that starts late -- e.g.
because the previous flow was delayed -- keeps the ideal finish time that the
arrangement dictates, which may be earlier than its start; its only way to a
low tardiness is to transmit faster and catch up with the formation. This is
the property that distinguishes tardiness from flow completion time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .arrangement import ArrangementFunction, CoflowArrangement
from .flow import Flow
from .units import EPS


class EchelonFlow:
    """A group of flows whose ideal finish times follow one arrangement.

    Parameters
    ----------
    ef_id:
        Unique identifier; flows reference it via ``Flow.group_id``.
    arrangement:
        The arrangement function ``g(D, r)``.
    flows:
        Member flows, each carrying ``index_in_group``; may be provided
        incrementally with :meth:`add_flow` instead.
    job_id:
        The owning training job, for multi-job objectives (Eq. 4).
    weight:
        Weight of this EchelonFlow in the weighted-sum objective; the paper
        notes the objective "can be easily adjusted to the weighted sum".
    """

    def __init__(
        self,
        ef_id: str,
        arrangement: ArrangementFunction,
        flows: Iterable[Flow] = (),
        job_id: Optional[str] = None,
        weight: float = 1.0,
    ) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.ef_id = ef_id
        self.arrangement = arrangement
        self.job_id = job_id
        self.weight = weight
        self.reference_time: Optional[float] = None
        self._flows: List[Flow] = []
        self._indices_seen: set = set()
        for flow in flows:
            self.add_flow(flow)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def add_flow(self, flow: Flow) -> None:
        """Register a member flow; its ``group_id`` must match ``ef_id``."""
        if flow.group_id is not None and flow.group_id != self.ef_id:
            raise ValueError(
                f"flow {flow.flow_id} belongs to group {flow.group_id!r}, "
                f"not {self.ef_id!r}"
            )
        if flow.index_in_group < 0:
            raise ValueError(
                f"flow {flow.flow_id} has negative index {flow.index_in_group}"
            )
        self._flows.append(flow)
        self._indices_seen.add(flow.index_in_group)

    @property
    def flows(self) -> Sequence[Flow]:
        return tuple(self._flows)

    def fork(self) -> "EchelonFlow":
        """An independent copy for a forked engine.

        Member :class:`Flow` objects and the arrangement are immutable
        and shared; the mutable pieces (the pinned reference time and
        the membership containers) are copied so the fork's run can pin
        or extend its copy without perturbing the parent's.
        """
        twin = EchelonFlow.__new__(EchelonFlow)
        twin.ef_id = self.ef_id
        twin.arrangement = self.arrangement
        twin.job_id = self.job_id
        twin.weight = self.weight
        twin.reference_time = self.reference_time
        twin._flows = list(self._flows)
        twin._indices_seen = set(self._indices_seen)
        return twin

    def __len__(self) -> int:
        return len(self._flows)

    @property
    def cardinality(self) -> int:
        """``|H|``: the number of member flows."""
        return len(self._flows)

    @property
    def index_count(self) -> int:
        """Number of distinct arrangement indices (Coflow stages) used."""
        return (max(self._indices_seen) + 1) if self._indices_seen else 0

    def is_coflow(self) -> bool:
        """Property 2: is this EchelonFlow expressible as a plain Coflow?"""
        return self.arrangement.is_coflow(self.index_count)

    # ------------------------------------------------------------------
    # reference time and ideal finish times
    # ------------------------------------------------------------------

    def set_reference_time(self, reference_time: float) -> None:
        """Pin the reference time ``r`` (the head flow's start time).

        A DDLT job "recalibrates the computation arrangement whenever a new
        EchelonFlow is generated" -- each per-iteration EchelonFlow instance
        gets its own reference, so re-pinning an already-set reference is an
        error; build a new EchelonFlow for the next iteration instead.
        """
        if self.reference_time is not None:
            raise RuntimeError(
                f"EchelonFlow {self.ef_id} already has reference time "
                f"{self.reference_time}"
            )
        self.reference_time = reference_time

    def observe_flow_start(self, flow: Flow, start_time: float) -> None:
        """Notify that a member flow started; pins ``r`` on the head flow.

        The head flow is the one with arrangement index 0; by Def. 3.1 it is
        also the flow that starts first.
        """
        if self.reference_time is None and flow.index_in_group == 0:
            self.set_reference_time(start_time)

    def ideal_finish_time(self, index: int) -> float:
        """``d_index`` for the current reference time."""
        if self.reference_time is None:
            raise RuntimeError(
                f"EchelonFlow {self.ef_id} has no reference time yet; the "
                f"head flow has not started"
            )
        return self.reference_time + self.arrangement.offset(index)

    def ideal_finish_time_of(self, flow: Flow) -> float:
        """``d_j`` of a member flow."""
        return self.ideal_finish_time(flow.index_in_group)

    def ideal_finish_times(self) -> Dict[int, float]:
        """Map flow_id -> ideal finish time for every member flow."""
        return {
            flow.flow_id: self.ideal_finish_time_of(flow) for flow in self._flows
        }

    # ------------------------------------------------------------------
    # tardiness (Def. 3.3 / Eq. 2)
    # ------------------------------------------------------------------

    def tardiness(self, actual_finish_times: Dict[int, float]) -> float:
        """EchelonFlow tardiness: ``max_j (e_j - d_j)`` over member flows.

        ``actual_finish_times`` maps ``flow_id`` to the actual finish time
        ``e_j``; every member flow must be present.
        """
        if not self._flows:
            raise ValueError(f"EchelonFlow {self.ef_id} has no flows")
        worst = float("-inf")
        for flow in self._flows:
            if flow.flow_id not in actual_finish_times:
                raise KeyError(
                    f"missing actual finish time for flow {flow.flow_id} "
                    f"of EchelonFlow {self.ef_id}"
                )
            tardiness = actual_finish_times[flow.flow_id] - self.ideal_finish_time_of(
                flow
            )
            worst = max(worst, tardiness)
        return worst

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "Coflow" if self.is_coflow() else "Echelon"
        return (
            f"EchelonFlow<{self.ef_id} |H|={self.cardinality} {kind} "
            f"r={self.reference_time}>"
        )


def make_coflow(
    ef_id: str,
    flows: Iterable[Flow],
    job_id: Optional[str] = None,
    weight: float = 1.0,
) -> EchelonFlow:
    """Build the Eq.-5 special case: a Coflow as an EchelonFlow.

    All member flows are placed at arrangement index 0 so they share the
    reference time as their common ideal finish time; minimizing the maximum
    tardiness then minimizes Coflow completion time (Property 2).
    """
    coflow = EchelonFlow(ef_id, CoflowArrangement(), job_id=job_id, weight=weight)
    for flow in flows:
        if flow.index_in_group != 0:
            flow = Flow(
                src=flow.src,
                dst=flow.dst,
                size=flow.size,
                group_id=ef_id,
                index_in_group=0,
                job_id=flow.job_id,
                tag=flow.tag,
            )
        coflow.add_flow(flow)
    return coflow


def total_tardiness(
    echelonflows: Iterable[EchelonFlow],
    actual_finish_times: Dict[int, float],
    weighted: bool = False,
) -> float:
    """The multi-EchelonFlow objective (Eq. 4): sum of per-EF tardiness.

    With ``weighted=True``, each EchelonFlow's tardiness is scaled by its
    weight as the paper's closing note on Eq. 4 suggests.
    """
    total = 0.0
    for echelonflow in echelonflows:
        value = echelonflow.tardiness(actual_finish_times)
        total += echelonflow.weight * value if weighted else value
    return total
