"""Flows: the unit of network scheduling.

A :class:`Flow` is a point-to-point data transfer between two hosts. It is
deliberately minimal -- source, destination, size -- plus bookkeeping for the
EchelonFlow it belongs to (``group_id`` and ``index_in_group``) so that
schedulers can recover the application-level semantics the paper's Agent
conveys (size, src, dst, and EchelonFlow membership; see Fig. 7).

Runtime transfer state (remaining bytes, current rate, actual start/finish
times) lives in :class:`FlowState`, owned by the network model, so that a
single :class:`Flow` description can be replayed under many schedulers.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .units import EPS


class FlowIdAllocator:
    """An explicit, scope-able flow-id sequence.

    Flow ids seed deterministic per-flow decisions (ECMP path hashing),
    so an experiment's outcome depends on the id sequence its flows drew
    from. Instead of one process-global counter, each experiment (and
    each forked :class:`~repro.simulator.engine.Engine`) owns an
    allocator: builds wrapped in :func:`use_flow_id_allocator` get ids
    starting from the allocator's position regardless of how many flows
    the process created before them -- order-independence by
    construction rather than by remembering to reset a global.

    The allocator is trivially snapshottable (one integer), which is
    what lets a forked engine hand out fresh non-colliding ids to
    what-if jobs while the parent keeps allocating from its own line.
    """

    __slots__ = ("next_id",)

    def __init__(self, next_id: int = 0) -> None:
        if next_id < 0:
            raise ValueError(f"next_id must be >= 0, got {next_id}")
        self.next_id = next_id

    def allocate(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value

    def clone(self) -> "FlowIdAllocator":
        return FlowIdAllocator(self.next_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlowIdAllocator<next={self.next_id}>"


#: The ambient allocator used by ``Flow()`` construction when no scope is
#: active. Module-level so legacy callers keep working unchanged.
_current_allocator = FlowIdAllocator()


def current_flow_id_allocator() -> FlowIdAllocator:
    """The allocator ``Flow()`` construction is currently drawing from."""
    return _current_allocator


@contextmanager
def use_flow_id_allocator(allocator: FlowIdAllocator) -> Iterator[FlowIdAllocator]:
    """Scope ``Flow()`` id allocation to ``allocator`` within the block."""
    global _current_allocator
    previous = _current_allocator
    _current_allocator = allocator
    try:
        yield allocator
    finally:
        _current_allocator = previous


def _next_flow_id() -> int:
    return _current_allocator.allocate()


@dataclass(frozen=True)
class Flow:
    """An immutable description of a point-to-point transfer.

    Parameters
    ----------
    src, dst:
        Host names in the topology. Must differ: a zero-hop "transfer"
        carries no network traffic and is modelled as a compute dependency
        instead.
    size:
        Payload in bytes; must be positive.
    group_id:
        Identifier of the EchelonFlow (or Coflow) this flow belongs to, or
        ``None`` for an ungrouped flow.
    index_in_group:
        Position ``j`` of this flow within its EchelonFlow; determines its
        ideal finish time ``d_j`` through the arrangement function.
    job_id:
        Identifier of the training job that emitted the flow (multi-tenant
        scheduling and reporting).
    tag:
        Free-form label for tracing ("fwd act mb=2 s0->s1", ...).
    """

    src: str
    dst: str
    size: float
    flow_id: int = field(default_factory=_next_flow_id)
    group_id: Optional[str] = None
    index_in_group: int = 0
    job_id: Optional[str] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"flow size must be positive, got {self.size!r}")
        if self.src == self.dst:
            raise ValueError(
                f"flow endpoints must differ, got src == dst == {self.src!r}"
            )

    @property
    def finish_epsilon(self) -> float:
        """Remaining-bytes threshold below which the flow counts as done.

        Relative tolerance: draining a multi-gigabyte flow at line rate
        accumulates float error well above any fixed absolute epsilon.
        The single definition is shared by :attr:`FlowState.finished` and
        the network model's finish-time index, so "who finishes when" can
        never disagree between the two.
        """
        return max(EPS, 1e-9 * self.size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        group = f" [{self.group_id}#{self.index_in_group}]" if self.group_id else ""
        return f"Flow<{self.flow_id} {self.src}->{self.dst} {self.size:g}B{group}>"


@dataclass
class FlowState:
    """Mutable transfer state of one flow inside the network model."""

    flow: Flow
    start_time: float
    remaining: float
    rate: float = 0.0
    finish_time: Optional[float] = None
    #: Ideal finish time ``d_j`` assigned by the EchelonFlow machinery;
    #: ``None`` until the flow's group has a reference time.
    ideal_finish_time: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.remaining <= self.flow.finish_epsilon

    @property
    def transferred(self) -> float:
        return self.flow.size - self.remaining

    def advance(self, dt: float) -> None:
        """Drain ``rate * dt`` bytes. Clamps at zero remaining."""
        if dt < -EPS:
            raise ValueError(f"cannot advance by negative time {dt!r}")
        self.remaining = max(0.0, self.remaining - self.rate * dt)

    def time_to_finish(self) -> float:
        """Time until completion at the current rate (``inf`` if idle)."""
        if self.finished:
            return 0.0
        if self.rate <= EPS:
            return float("inf")
        return self.remaining / self.rate

    def tardiness_at(self, finish_time: float) -> float:
        """Flow tardiness (Def. 3.2, Eq. 1) for a given actual finish time.

        Tardiness may be negative when the flow beats its ideal finish time;
        the paper's objective only ever *minimizes the maximum*, so negative
        values are informative rather than rewarded.
        """
        if self.ideal_finish_time is None:
            raise ValueError(
                f"flow {self.flow.flow_id} has no ideal finish time assigned"
            )
        return finish_time - self.ideal_finish_time
