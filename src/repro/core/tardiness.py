"""Tardiness metrics and scheduling objectives (Eqs. 1-4).

Definitions reproduced from the paper:

* **Flow tardiness** (Def. 3.2, Eq. 1): ``t_f = e - d``, the actual finish
  time exceeding the ideal finish time. Unlike flow completion time (FCT),
  tardiness is anchored on the *arrangement*, so after a transient delay the
  next EchelonFlow can recover the formation -- an FCT objective cannot
  (ablation E14 demonstrates this).
* **EchelonFlow tardiness** (Def. 3.3, Eq. 2): ``t_H = max_j (e_j - d_j)``.
* **Single-EF objective** (Eq. 3): minimize ``t_H``.
* **Multi-EF objective** (Eq. 4): minimize ``sum_i t_{H_i}`` (optionally
  weighted).

On NP-hardness (Property 3): Coflow scheduling is NP-hard even on a single
big switch [Chowdhury et al., SIGCOMM '14, via concurrent open shop]; since
Coflow is the Eq.-5 special case of EchelonFlow (Property 2), any algorithm
solving EchelonFlow tardiness minimization exactly would solve Coflow CCT
minimization exactly, so EchelonFlow scheduling is NP-hard as well. The
schedulers in :mod:`repro.scheduling` are therefore heuristics (adapted MADD,
Property 4), and :mod:`repro.scheduling.oracle` pays exponential cost to
verify optimality on small instances only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .echelonflow import EchelonFlow


@dataclass(frozen=True)
class FlowOutcome:
    """Measured result of one flow under some schedule."""

    flow_id: int
    group_id: Optional[str]
    start_time: float
    finish_time: float
    ideal_finish_time: Optional[float]

    @property
    def completion_time(self) -> float:
        """Classic FCT: finish minus the flow's own start."""
        return self.finish_time - self.start_time

    @property
    def tardiness(self) -> float:
        """Eq. 1; requires an ideal finish time."""
        if self.ideal_finish_time is None:
            raise ValueError(f"flow {self.flow_id} has no ideal finish time")
        return self.finish_time - self.ideal_finish_time


@dataclass(frozen=True)
class TardinessReport:
    """Summary of Eq. 2-4 quantities over a set of EchelonFlows."""

    per_echelonflow: Mapping[str, float]
    total: float
    weighted_total: float
    worst: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rows = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.per_echelonflow.items()))
        return f"TardinessReport(total={self.total:.4g}, worst={self.worst:.4g}; {rows})"


def evaluate_tardiness(
    echelonflows: Iterable[EchelonFlow],
    actual_finish_times: Dict[int, float],
) -> TardinessReport:
    """Compute the Eq. 2 tardiness of each EchelonFlow and Eq. 4 aggregates."""
    per_ef: Dict[str, float] = {}
    total = 0.0
    weighted_total = 0.0
    worst = float("-inf")
    for echelonflow in echelonflows:
        value = echelonflow.tardiness(actual_finish_times)
        per_ef[echelonflow.ef_id] = value
        total += value
        weighted_total += echelonflow.weight * value
        worst = max(worst, value)
    if not per_ef:
        worst = 0.0
    return TardinessReport(
        per_echelonflow=per_ef, total=total, weighted_total=weighted_total, worst=worst
    )


class SchedulingObjective:
    """An objective ranks flows by urgency; used for the E14 ablation.

    ``urgency(now, remaining, start, ideal)`` returns a deadline-like value:
    smaller means more urgent. Schedulers that order or weight flows consult
    the objective so that the tardiness-vs-FCT comparison is a one-line swap.
    """

    name = "abstract"

    def urgency(
        self,
        now: float,
        remaining: float,
        start_time: float,
        ideal_finish_time: Optional[float],
    ) -> float:
        raise NotImplementedError


class TardinessObjective(SchedulingObjective):
    """Urgency anchored on the arrangement's ideal finish time (Eq. 1).

    Flows behind the formation (ideal finish in the past) become maximally
    urgent, which is what lets a delayed pipeline catch back up.
    """

    name = "tardiness"

    def urgency(
        self,
        now: float,
        remaining: float,
        start_time: float,
        ideal_finish_time: Optional[float],
    ) -> float:
        if ideal_finish_time is None:
            return now + remaining
        return ideal_finish_time


class CompletionTimeObjective(SchedulingObjective):
    """Urgency anchored on each flow's own start time (classic FCT).

    Under this objective a delayed flow's target simply shifts later -- the
    schedule never tries to recover the computation arrangement. The paper's
    Def. 3.2 discussion ("If optimizing with flow completion time, after
    flows delay, later EchelonFlows cannot recover the arrangement") is
    exactly the failure mode this objective exhibits in ablation E14.
    """

    name = "fct"

    def urgency(
        self,
        now: float,
        remaining: float,
        start_time: float,
        ideal_finish_time: Optional[float],
    ) -> float:
        return start_time + remaining


def max_tardiness(outcomes: Sequence[FlowOutcome]) -> float:
    """Eq. 2 over raw outcomes."""
    if not outcomes:
        return 0.0
    return max(outcome.tardiness for outcome in outcomes)


def sum_tardiness_by_group(outcomes: Sequence[FlowOutcome]) -> Dict[str, float]:
    """Group outcomes by EchelonFlow and compute Eq. 2 per group."""
    groups: Dict[str, List[FlowOutcome]] = {}
    for outcome in outcomes:
        if outcome.group_id is None:
            continue
        groups.setdefault(outcome.group_id, []).append(outcome)
    return {group: max_tardiness(members) for group, members in groups.items()}
