"""Unit conventions and helpers used throughout the library.

The simulator is unit-agnostic but the convention everywhere is:

* time        -- seconds (floats)
* data        -- bytes (floats; fluid model, fractional bytes are fine)
* bandwidth   -- bytes per second

Helpers below convert from the units papers usually quote (Gbps, MB, ...)
into the canonical ones.
"""

from __future__ import annotations

#: Numerical tolerance for time / rate comparisons inside the simulator.
EPS = 1e-9

#: A tolerance suitable for comparing accumulated byte counters.
BYTE_EPS = 1e-6

KB = 1024.0
MB = 1024.0 * KB
GB = 1024.0 * MB

KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def gbps(value: float) -> float:
    """Convert gigabits per second into bytes per second."""
    return value * GIGA / 8.0


def mbps(value: float) -> float:
    """Convert megabits per second into bytes per second."""
    return value * MEGA / 8.0


def bytes_per_second_to_gbps(rate: float) -> float:
    """Convert bytes per second back into gigabits per second."""
    return rate * 8.0 / GIGA


def megabytes(value: float) -> float:
    """Convert mebibytes into bytes."""
    return value * MB


def gigabytes(value: float) -> float:
    """Convert gibibytes into bytes."""
    return value * GB


def milliseconds(value: float) -> float:
    """Convert milliseconds into seconds."""
    return value * 1e-3


def microseconds(value: float) -> float:
    """Convert microseconds into seconds."""
    return value * 1e-6


def approx_equal(a: float, b: float, tol: float = EPS) -> bool:
    """Tolerant float comparison with absolute *and* relative slack."""
    return abs(a - b) <= max(tol, tol * max(abs(a), abs(b)))


def approx_leq(a: float, b: float, tol: float = EPS) -> bool:
    """Tolerant ``a <= b`` with absolute and relative slack."""
    return a <= b + max(tol, tol * max(abs(a), abs(b)))
