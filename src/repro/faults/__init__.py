"""Chaos injection: runtime link faults, rerouting, graceful degradation.

The paper's recalibration story (Fig. 6b, Section 5) is about what happens
when reality deviates from the nominal arrangement. This package makes
deviation happen *mid-run*, deterministically:

* :class:`FaultSchedule` / :func:`parse_fault_spec` -- declarative timed
  faults (``link_down`` / ``degrade`` / ``flap`` / ``crash_scheduler``)
  parsed from spec strings or JSON.
* :class:`FaultInjector` -- replays a schedule against one engine via
  ``FAULT`` events: capacity mutation through the incremental core,
  route blocking + in-flight flow migration, crash poison pills.
* :class:`ResilientScheduler` -- wraps any scheduler so a crash or an
  infeasible allocation degrades one invocation to fair sharing instead
  of aborting the run.

Engines take the whole subsystem as ``Engine(..., faults="spec")``; the
CLI exposes it as ``--faults`` on fig2/run/run-spec/cluster. See
``docs/robustness.md``.
"""

from .injector import FaultInjector, find_resilient
from .resilient import ResilientScheduler, SchedulerCrash
from .schedule import (
    FaultEvent,
    FaultSchedule,
    FaultSpecError,
    parse_fault_spec,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpecError",
    "ResilientScheduler",
    "SchedulerCrash",
    "find_resilient",
    "parse_fault_spec",
]
