"""Replays a :class:`FaultSchedule` against one engine, deterministically.

The injector arms one ``EventKind.FAULT`` event per schedule entry at
attach time. When an event fires it mutates the live network -- capacity
changes flow through :meth:`NetworkModel.set_link_capacity` (which keeps
the residual accounting and finish heap consistent and rescales in-flight
flows), downed links are blocked in the router and crossing flows are
migrated to surviving paths via :meth:`NetworkModel.reroute_flows` -- and
the engine reschedules with the ``fault`` trigger cause. Restores return
links to their *nominal* capacity and unblock routes; flows migrated away
keep their new paths (per-flow path pinning, as real ECMP fabrics do),
while stranded flows simply resume.

``crash_scheduler`` events arm a poison pill on the run's
:class:`~repro.faults.ResilientScheduler`; attaching a schedule containing
crashes to an engine without one raises immediately, since nothing would
contain the crash.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .schedule import _CONTROL_ACTIONS, FaultEvent, FaultSchedule, parse_fault_spec
from .resilient import ResilientScheduler


def find_resilient(scheduler) -> Optional[ResilientScheduler]:
    """Locate a ResilientScheduler in a wrapper chain (or ``None``)."""
    layer = scheduler
    seen = set()
    while layer is not None and id(layer) not in seen:
        if isinstance(layer, ResilientScheduler):
            return layer
        seen.add(id(layer))
        layer = getattr(layer, "inner", None)
    return None


class FaultInjector:
    """Binds a fault schedule to one engine run.

    Injectors are single-use: each engine needs its own (the shared,
    immutable schedule is the reusable part). ``fired`` accumulates one
    record dict per applied event, mirroring the obs ``fault`` events.
    """

    def __init__(self, schedule) -> None:
        if isinstance(schedule, str):
            schedule = parse_fault_spec(schedule)
        if not isinstance(schedule, FaultSchedule):
            raise TypeError(
                f"expected a FaultSchedule or spec string, got {schedule!r}"
            )
        self.schedule = schedule
        self.engine = None
        self.fired: List[Dict] = []
        #: id(armed Event) -> (Event, FaultEvent). Lets snapshot/fork
        #: (repro.simulator.state) recognize which pending FAULT events
        #: are this injector's and re-arm them against a forked engine;
        #: holding the Event strongly keeps ids stable.
        self._armed: Dict[int, Tuple] = {}

    def attach(self, engine) -> None:
        """Validate the schedule against the engine and arm its events."""
        if self.engine is not None:
            raise ValueError(
                "FaultInjector is already attached; build one per engine"
            )
        for key in self.schedule.link_keys():
            engine.topology.link(*key)  # raises KeyError on unknown links
        if self.schedule.has_crashes and find_resilient(engine.scheduler) is None:
            raise ValueError(
                "crash_scheduler faults require a ResilientScheduler in the "
                "scheduler chain (wrap with repro.faults.ResilientScheduler)"
            )
        if (
            self.schedule.has_control_faults
            and getattr(engine, "control_plane", None) is None
        ):
            raise ValueError(
                "control-plane faults (crash_agent / crash_coordinator / "
                "partition_control / rpc_noise) require a ControlPlaneRuntime "
                "on the engine (schedule with repro.system.runtime, or drop "
                "the control clauses)"
            )
        self.engine = engine
        for event in self.schedule:
            armed = engine.schedule_fault(
                event.time, lambda ev=event: self._fire(ev)
            )
            if armed is not None:
                self._armed[id(armed)] = (armed, event)

    # ------------------------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        engine = self.engine
        now = engine.now
        record: Dict = {
            "time": now,
            "action": event.action,
            "links": [list(key) for key in event.links],
        }
        if event.action == "crash_scheduler":
            resilient = find_resilient(engine.scheduler)
            resilient.arm_crash(reason=f"injected crash_scheduler@{event.time:g}")
        elif event.action in _CONTROL_ACTIONS:
            if event.target is not None:
                record["target"] = event.target
            if event.spec is not None:
                record["spec"] = event.spec
            engine.control_plane.apply_fault(event)
        else:
            record["capacities"] = self._apply_link_event(event, record)
        self.fired.append(record)
        if engine.obs is not None:
            notify = getattr(engine.obs, "on_fault", None)
            if notify is not None:
                notify(record, now)
        if engine.check is not None:
            audit = getattr(engine.check, "on_fault", None)
            if audit is not None:
                audit(engine, now)

    def _apply_link_event(self, event: FaultEvent, record: Dict) -> Dict:
        engine = self.engine
        network = engine.network
        router = network.router
        capacities: Dict[str, float] = {}
        for key in event.links:
            link = engine.topology.link(*key)
            if event.action == "link_down":
                target = 0.0
            elif event.action == "degrade":
                target = link.nominal_capacity * event.factor
            else:  # link_restore
                target = link.nominal_capacity
            network.set_link_capacity(key, target)
            capacities["->".join(key)] = target
        if event.action == "link_down":
            blocker = getattr(router, "block_links", None)
            if blocker is not None:
                blocker(event.links)
            migrated, stranded = network.reroute_flows(event.links)
            record["migrated"] = migrated
            record["stranded"] = stranded
        elif event.action == "link_restore":
            unblocker = getattr(router, "unblock_links", None)
            if unblocker is not None:
                unblocker(event.links)
        return capacities
