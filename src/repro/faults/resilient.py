"""Graceful scheduler degradation: contain crashes, fall back to fair.

:class:`ResilientScheduler` wraps any scheduler and guarantees the run
keeps making progress: an exception from the inner ``allocate``, an
allocation the network would reject as infeasible, or an injected
``crash_scheduler`` poison pill all degrade that single invocation to the
fallback policy (weighted fair sharing by default -- the allocation a
switch fabric converges to with no coordinator at all). Each degradation
is recorded on the wrapper and logged as a ``scheduler_fallback`` obs
event; the inner scheduler is retried fresh on the next invocation.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

from ..scheduling.base import Scheduler, SchedulerView
from ..scheduling.fairshare import FairSharingScheduler


class SchedulerCrash(RuntimeError):
    """The poison pill raised by an injected ``crash_scheduler`` fault."""


class ResilientScheduler(Scheduler):
    """Wraps a scheduler with containment and fair-sharing fallback.

    ``fallback_records`` keeps one dict per degraded invocation
    (``{"time", "kind", "scheduler", "error"}`` with ``kind`` one of
    ``crash`` / ``exception`` / ``infeasible``);
    ``last_allocation_was_fallback`` flags the most recent invocation so
    the differential twin oracle knows not to replay a contained crash.
    """

    def __init__(
        self, inner: Scheduler, fallback: Optional[Scheduler] = None
    ) -> None:
        self.inner = inner
        self.fallback = fallback if fallback is not None else FairSharingScheduler()
        self.name = f"resilient({inner.name})"
        self.fallback_invocations = 0
        self.fallback_records: List[Dict] = []
        self.last_allocation_was_fallback = False
        self._engine = None
        self._pending_crashes: List[str] = []
        self._pin_until: Optional[float] = None

    @property
    def work_conserving(self) -> bool:
        # The promise must hold on every invocation, whichever policy
        # produced it.
        return self.inner.work_conserving and self.fallback.work_conserving

    def on_attached(self, engine) -> None:
        self._engine = engine

    def arm_crash(self, reason: str = "injected crash") -> None:
        """Poison the next invocation (the ``crash_scheduler`` fault)."""
        self._pending_crashes.append(reason)

    def pin_fallback(self, until: float) -> None:
        """Mitigation hook: serve the fallback policy until sim-time ``until``.

        While pinned, every invocation degrades with kind ``"pinned"``
        (which detectors and the twin oracle treat as intentional, not a
        symptom) instead of trusting a scheduler that just crashed.
        Pinning extends, never shortens, an existing pin.
        """
        self._pin_until = (
            until if self._pin_until is None else max(self._pin_until, until)
        )

    def unpin_fallback(self) -> None:
        self._pin_until = None

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        self.last_allocation_was_fallback = False
        if self._pending_crashes:
            reason = self._pending_crashes.pop(0)
            return self._degrade(view, SchedulerCrash(reason), "crash")
        if self._pin_until is not None:
            if view.now < self._pin_until:
                return self._degrade(view, None, "pinned")
            self._pin_until = None
        try:
            rates = self.inner.allocate(view)
        except Exception as exc:  # noqa: BLE001 - containment is the point
            return self._degrade(view, exc, "exception")
        if not view.network.validate_rates(rates):
            return self._degrade(view, None, "infeasible")
        return rates

    def _degrade(
        self, view: SchedulerView, exc: Optional[BaseException], kind: str
    ) -> Dict[int, float]:
        self.last_allocation_was_fallback = True
        self.fallback_invocations += 1
        record = {
            "time": view.now,
            "kind": kind,
            "scheduler": self.inner.name,
            "error": repr(exc) if exc is not None else None,
        }
        self.fallback_records.append(record)
        engine = self._engine
        if engine is not None and engine.obs is not None:
            notify = getattr(engine.obs, "on_scheduler_fallback", None)
            if notify is not None:
                notify(record, view.now)
        return self.fallback.allocate(view)

    def fork(self) -> "ResilientScheduler":
        """Fork for a forked engine: compose the inner scheduler's own
        ``fork`` (so a wrapped MemoizingScheduler shares its cache) and
        drop the engine handle -- the engine fork re-runs ``on_attached``.
        """
        clone = type(self)(
            self.inner.fork()
            if hasattr(self.inner, "fork")
            else copy.deepcopy(self.inner),
            copy.deepcopy(self.fallback),
        )
        clone._pending_crashes = list(self._pending_crashes)
        clone._pin_until = self._pin_until
        clone.last_allocation_was_fallback = self.last_allocation_was_fallback
        clone.fallback_invocations = self.fallback_invocations
        clone.fallback_records = list(self.fallback_records)
        return clone

    def __deepcopy__(self, memo):
        # The twin oracle deepcopies engine.scheduler to shadow-replay an
        # invocation; copying the engine handle would drag the entire
        # engine (network, trace, event queue) along. The clone keeps the
        # scheduling state and drops the logging handle.
        clone = type(self)(
            copy.deepcopy(self.inner, memo),
            copy.deepcopy(self.fallback, memo),
        )
        clone._pending_crashes = list(self._pending_crashes)
        clone._pin_until = self._pin_until
        clone.last_allocation_was_fallback = self.last_allocation_was_fallback
        memo[id(self)] = clone
        return clone
