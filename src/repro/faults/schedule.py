"""Declarative fault schedules: what breaks, when, and for how long.

A :class:`FaultSchedule` is an immutable, time-sorted list of primitive
:class:`FaultEvent` actions. Schedules are built from a compact spec string::

    link_down:h1-h2@2.5+1.0; degrade:h2-h3@4.0,factor=0.5;
    flap:h0-h1@1.0,period=0.2,count=6; crash_scheduler@3.0

or from JSON (see :meth:`FaultSchedule.from_json`). Grammar per clause::

    action[:linkspec]@time[+duration][,key=value...]

* ``linkspec`` -- ``a-b`` hits both directions of a duplex link pair,
  ``a->b`` only the directed link.
* ``link_down`` -- capacity drops to 0 at ``time``; with ``+duration`` the
  link restores afterwards, without it the outage is permanent.
* ``degrade`` -- capacity drops to ``factor`` x nominal (0 < factor < 1);
  optional ``+duration`` restores it.
* ``flap`` -- ``count`` down/restore cycles of length ``period`` starting
  at ``time`` (down for the first half of each cycle). An optional
  ``factor`` makes it a *brown-out* flap: each cycle degrades to
  ``factor`` x nominal instead of failing stop, so traffic stays on the
  sick link instead of being rerouted off it.
* ``crash_scheduler`` -- poison the next scheduler invocation after
  ``time`` (requires a :class:`~repro.faults.ResilientScheduler`).

Control-plane actions (these require a
:class:`~repro.system.runtime.ControlPlaneRuntime` attached to the
engine; see docs/control_plane.md)::

    crash_agent@2.0+1.0,agent=job1; crash_coordinator@3.0+0.5;
    partition_control@4.0+1.0; rpc_noise@1.0,drop=0.1,delay=0.002

* ``crash_agent`` -- the named agent (``agent=<job id>``) stops sending
  and receiving control messages at ``time``; with ``+duration`` it
  restarts afterwards and re-syncs with the coordinator.
* ``crash_coordinator`` -- the coordinator process dies (in-memory
  registry lost); with ``+duration`` it restarts, recovers from its last
  checkpoint, and replays the post-checkpoint request log.
* ``partition_control`` -- the control network partitions: the named
  agent (``agent=``, or every agent when omitted) cannot reach the
  coordinator; ``+duration`` heals the partition. Data-plane traffic is
  unaffected -- only the scheduling control loop degrades.
* ``rpc_noise`` -- swap the control channel to a degraded one described
  by inline RPC-spec keys (``drop`` / ``delay`` / ``dup`` / ``timeout``
  / ``retries`` / ``backoff`` / ``seed``, see
  :mod:`repro.system.runtime.rpc`); ``+duration`` restores the channel
  the run started with.

Compound clauses (``flap``, ``+duration``) expand at parse time into
primitive paired events (``link_down`` / ``link_restore``,
``crash_agent`` / ``agent_restore``, ...), so the injector replays a
flat, deterministic timeline. Overlapping clauses on one link resolve by
time order: the latest action wins, and every restore returns the link
to its *nominal* (construction-time) capacity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

_LINK_ACTIONS = ("link_down", "link_restore", "degrade")
#: Control-plane primitives (PR 10). Appended *after* the original
#: actions: the schedule's sort key indexes into ``_ACTIONS``, so
#: appending preserves every pre-existing same-timestamp ordering.
_CONTROL_ACTIONS = (
    "crash_agent",
    "agent_restore",
    "crash_coordinator",
    "coordinator_restore",
    "partition_control",
    "partition_heal",
    "rpc_noise",
    "rpc_restore",
)
_ACTIONS = _LINK_ACTIONS + ("crash_scheduler",) + _CONTROL_ACTIONS
#: Actions that *end* a fault rather than cause one (skipped by
#: ``ground_truth``).
_RESTORE_ACTIONS = frozenset(
    {
        "link_restore",
        "agent_restore",
        "coordinator_restore",
        "partition_heal",
        "rpc_restore",
    }
)
#: Clause action -> paired restore primitive for ``+duration``.
_CONTROL_RESTORE = {
    "crash_agent": "agent_restore",
    "crash_coordinator": "coordinator_restore",
    "partition_control": "partition_heal",
    "rpc_noise": "rpc_restore",
}
#: Primitive action -> localization kind for ``ground_truth``.
_CONTROL_KINDS = {
    "crash_agent": "agent",
    "crash_coordinator": "coordinator",
    "partition_control": "control",
    "rpc_noise": "control",
}
#: Control actions that carry (or may carry) an ``agent=`` target.
_TARGETED_ACTIONS = frozenset(
    {"crash_agent", "agent_restore", "partition_control", "partition_heal"}
)
#: Inline RPC-channel keys an ``rpc_noise`` clause accepts (mirrors
#: :func:`repro.system.runtime.rpc.parse_rpc_spec`).
_RPC_KEYS = ("drop", "delay", "dup", "timeout", "retries", "backoff", "seed")


class FaultSpecError(ValueError):
    """A fault spec string or JSON document failed to parse."""


@dataclass(frozen=True)
class FaultEvent:
    """One primitive timed fault action.

    ``links`` holds directed ``(src, dst)`` keys (a duplex ``a-b`` spec
    expands to both directions); ``factor`` is set for ``degrade`` only.
    Control-plane actions carry no links; ``target`` names the agent a
    ``crash_agent``/``partition_control`` hits (``None`` partitions every
    agent) and ``spec`` holds an ``rpc_noise`` clause's channel grammar.
    """

    time: float
    action: str
    links: Tuple[Tuple[str, str], ...] = ()
    factor: Optional[float] = None
    target: Optional[str] = None
    spec: Optional[str] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultSpecError(f"fault time must be >= 0, got {self.time}")
        if self.action not in _ACTIONS:
            raise FaultSpecError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )
        if self.action in _LINK_ACTIONS and not self.links:
            raise FaultSpecError(f"{self.action} fault needs at least one link")
        if self.action not in _LINK_ACTIONS and self.links:
            raise FaultSpecError(f"{self.action} takes no link spec")
        if self.action == "degrade":
            if self.factor is None or not (0.0 < self.factor < 1.0):
                raise FaultSpecError(
                    f"degrade needs 0 < factor < 1, got {self.factor}"
                )
        elif self.factor is not None:
            raise FaultSpecError(f"{self.action} does not take a factor")
        if self.target is not None and self.action not in _TARGETED_ACTIONS:
            raise FaultSpecError(f"{self.action} does not take agent=")
        if self.action in ("crash_agent", "agent_restore") and not self.target:
            raise FaultSpecError(f"{self.action} requires agent=<job id>")
        if self.spec is not None and self.action != "rpc_noise":
            raise FaultSpecError(f"{self.action} does not take an RPC spec")
        if self.action == "rpc_noise" and not self.spec:
            raise FaultSpecError(
                "rpc_noise requires channel parameters "
                "(e.g. rpc_noise@1.0,drop=0.1,delay=0.002)"
            )

    def describe(self) -> str:
        links = ",".join(f"{s}->{d}" for s, d in self.links)
        extra = f" factor={self.factor}" if self.factor is not None else ""
        if self.target is not None:
            extra += f" agent={self.target}"
        if self.spec is not None:
            extra += f" spec={self.spec}"
        return f"{self.action}@{self.time:g} {links}{extra}".rstrip()


def _parse_linkspec(text: str) -> Tuple[Tuple[str, str], ...]:
    text = text.strip()
    if "->" in text:
        src, _, dst = text.partition("->")
        src, dst = src.strip(), dst.strip()
        if not src or not dst:
            raise FaultSpecError(f"bad directed link spec {text!r}")
        return ((src, dst),)
    if "-" in text:
        a, _, b = text.partition("-")
        a, b = a.strip(), b.strip()
        if not a or not b:
            raise FaultSpecError(f"bad link spec {text!r}")
        return ((a, b), (b, a))
    raise FaultSpecError(
        f"bad link spec {text!r}: expected 'a-b' (duplex) or 'a->b' (directed)"
    )


def _parse_float(value: str, what: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise FaultSpecError(f"bad {what} {value!r}") from None


def _expand_clause(
    action: str,
    links: Tuple[Tuple[str, str], ...],
    time: float,
    duration: Optional[float],
    params: Dict[str, str],
) -> List[FaultEvent]:
    def reject_unknown(allowed: Sequence[str]) -> None:
        unknown = sorted(set(params) - set(allowed))
        if unknown:
            raise FaultSpecError(
                f"unknown parameter(s) {unknown} for {action!r}"
            )

    if action == "crash_scheduler":
        reject_unknown(())
        if links:
            raise FaultSpecError("crash_scheduler takes no link spec")
        if duration is not None:
            raise FaultSpecError("crash_scheduler takes no duration")
        return [FaultEvent(time=time, action="crash_scheduler")]

    if action == "link_down":
        reject_unknown(())
        events = [FaultEvent(time=time, action="link_down", links=links)]
        if duration is not None:
            if duration <= 0:
                raise FaultSpecError(f"duration must be > 0, got {duration}")
            events.append(
                FaultEvent(time=time + duration, action="link_restore", links=links)
            )
        return events

    if action == "degrade":
        reject_unknown(("factor",))
        if "factor" not in params:
            raise FaultSpecError("degrade requires factor=<0..1>")
        factor = _parse_float(params["factor"], "factor")
        events = [
            FaultEvent(time=time, action="degrade", links=links, factor=factor)
        ]
        if duration is not None:
            if duration <= 0:
                raise FaultSpecError(f"duration must be > 0, got {duration}")
            events.append(
                FaultEvent(time=time + duration, action="link_restore", links=links)
            )
        return events

    if action == "flap":
        reject_unknown(("period", "count", "factor"))
        if duration is not None:
            raise FaultSpecError("flap uses period/count, not a duration")
        if "period" not in params or "count" not in params:
            raise FaultSpecError("flap requires period=<s> and count=<n>")
        period = _parse_float(params["period"], "period")
        if period <= 0:
            raise FaultSpecError(f"flap period must be > 0, got {period}")
        try:
            count = int(params["count"])
        except ValueError:
            raise FaultSpecError(f"bad count {params['count']!r}") from None
        if count < 1:
            raise FaultSpecError(f"flap count must be >= 1, got {count}")
        # Optional factor turns a fail-stop flap (link_down cycles) into
        # a brown-out flap: the link stays up but cycles between degraded
        # and nominal capacity, the signature of a failing optic. Flows
        # are NOT auto-rerouted off a degraded link (it still carries
        # traffic), which is exactly what makes brown-outs the case
        # where a watch-loop cordon earns its keep.
        factor = None
        if "factor" in params:
            factor = _parse_float(params["factor"], "factor")
        events: List[FaultEvent] = []
        for i in range(count):
            start = time + i * period
            if factor is None:
                events.append(
                    FaultEvent(time=start, action="link_down", links=links)
                )
            else:
                events.append(
                    FaultEvent(
                        time=start, action="degrade", links=links, factor=factor
                    )
                )
            events.append(
                FaultEvent(
                    time=start + period / 2.0, action="link_restore", links=links
                )
            )
        return events

    if action in _CONTROL_RESTORE:
        if links:
            raise FaultSpecError(
                f"{action} takes no link spec; name agents with agent=<id>"
            )
        target: Optional[str] = None
        spec: Optional[str] = None
        if action == "crash_agent":
            reject_unknown(("agent",))
            if "agent" not in params:
                raise FaultSpecError("crash_agent requires agent=<job id>")
            target = params["agent"]
        elif action == "crash_coordinator":
            reject_unknown(())
        elif action == "partition_control":
            reject_unknown(("agent",))
            target = params.get("agent")
        else:  # rpc_noise
            reject_unknown(_RPC_KEYS + ("spec",))
            if "spec" in params:
                if len(params) > 1:
                    raise FaultSpecError(
                        "rpc_noise takes either spec=... or inline channel "
                        "keys, not both"
                    )
                spec = params["spec"]
            else:
                spec = ",".join(f"{k}={v}" for k, v in params.items())
            if not spec:
                raise FaultSpecError(
                    "rpc_noise requires channel parameters "
                    "(e.g. rpc_noise@1.0,drop=0.1,delay=0.002)"
                )
            # Deferred import: repro.system.runtime sits on top of faults.
            from ..system.runtime.rpc import RpcSpecError, parse_rpc_spec

            try:
                parse_rpc_spec(spec)
            except RpcSpecError as exc:
                raise FaultSpecError(f"bad rpc_noise parameters: {exc}") from None
        events = [
            FaultEvent(time=time, action=action, target=target, spec=spec)
        ]
        if duration is not None:
            if duration <= 0:
                raise FaultSpecError(f"duration must be > 0, got {duration}")
            events.append(
                FaultEvent(
                    time=time + duration,
                    action=_CONTROL_RESTORE[action],
                    target=target,
                )
            )
        return events

    raise FaultSpecError(
        f"unknown fault action {action!r}; expected link_down, degrade, "
        f"flap, crash_scheduler, crash_agent, crash_coordinator, "
        f"partition_control, or rpc_noise"
    )


def _parse_clause(clause: str) -> List[FaultEvent]:
    if "@" not in clause:
        raise FaultSpecError(f"fault clause {clause!r} is missing '@time'")
    before, after = clause.split("@", 1)
    before = before.strip()
    if ":" in before:
        action, _, linkpart = before.partition(":")
        action = action.strip()
        links = _parse_linkspec(linkpart)
    else:
        action, links = before, ()
    parts = [p.strip() for p in after.split(",")]
    timepart, params_parts = parts[0], parts[1:]
    params: Dict[str, str] = {}
    for part in params_parts:
        if "=" not in part:
            raise FaultSpecError(f"bad parameter {part!r} in clause {clause!r}")
        key, _, value = part.partition("=")
        params[key.strip()] = value.strip()
    if "+" in timepart:
        time_text, _, duration_text = timepart.partition("+")
        time = _parse_float(time_text, "time")
        duration: Optional[float] = _parse_float(duration_text, "duration")
    else:
        time = _parse_float(timepart, "time")
        duration = None
    return _expand_clause(action, links, time, duration, params)


def parse_fault_spec(spec: str) -> "FaultSchedule":
    """Parse a ``;``-separated fault spec string into a schedule."""
    events: List[FaultEvent] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        events.extend(_parse_clause(clause))
    if not events:
        raise FaultSpecError(f"fault spec {spec!r} contains no clauses")
    return FaultSchedule(events)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered sequence of primitive fault events.

    One schedule can arm any number of engines (each via its own
    :class:`~repro.faults.FaultInjector`); it carries no runtime state.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = tuple(
            sorted(events, key=lambda e: (e.time, _ACTIONS.index(e.action)))
        )
        object.__setattr__(self, "events", ordered)

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        return parse_fault_spec(spec)

    @classmethod
    def from_json(cls, document) -> "FaultSchedule":
        """Build a schedule from JSON (a string, list, or ``{"faults": [...]}``).

        Each entry is either a primitive event (``{"time", "action",
        "links": [["a","b"], ...], "factor"}``) or a clause mirroring the
        string grammar (``{"action", "link": "a-b", "time", "duration",
        "factor", "period", "count"}``) which expands exactly like its
        spec-string counterpart.
        """
        if isinstance(document, str):
            document = json.loads(document)
        if isinstance(document, dict):
            document = document.get("faults", [])
        if not isinstance(document, list):
            raise FaultSpecError(
                f"fault JSON must be a list or {{'faults': [...]}}, "
                f"got {type(document).__name__}"
            )
        events: List[FaultEvent] = []
        for entry in document:
            if not isinstance(entry, dict):
                raise FaultSpecError(f"bad fault entry {entry!r}")
            if "links" in entry:
                events.append(
                    FaultEvent(
                        time=float(entry["time"]),
                        action=str(entry["action"]),
                        links=tuple(
                            (str(s), str(d)) for s, d in entry["links"]
                        ),
                        factor=(
                            float(entry["factor"])
                            if entry.get("factor") is not None
                            else None
                        ),
                        target=(
                            str(entry["target"])
                            if entry.get("target") is not None
                            else None
                        ),
                        spec=(
                            str(entry["spec"])
                            if entry.get("spec") is not None
                            else None
                        ),
                    )
                )
                continue
            action = str(entry.get("action", ""))
            links = _parse_linkspec(entry["link"]) if "link" in entry else ()
            params = {
                key: str(entry[key])
                for key in ("factor", "period", "count", "agent", "spec")
                if entry.get(key) is not None
            }
            duration = (
                float(entry["duration"])
                if entry.get("duration") is not None
                else None
            )
            events.extend(
                _expand_clause(
                    action, links, float(entry["time"]), duration, params
                )
            )
        if not events:
            raise FaultSpecError("fault JSON contains no events")
        return cls(events)

    def to_json(self) -> str:
        """Serialize as a flat list of primitive events (round-trippable)."""
        return json.dumps(
            [
                {
                    "time": event.time,
                    "action": event.action,
                    "links": [list(key) for key in event.links],
                    **(
                        {"factor": event.factor}
                        if event.factor is not None
                        else {}
                    ),
                    **(
                        {"target": event.target}
                        if event.target is not None
                        else {}
                    ),
                    **({"spec": event.spec} if event.spec is not None else {}),
                }
                for event in self.events
            ]
        )

    def link_keys(self) -> List[Tuple[str, str]]:
        """Every directed link key any event touches, sorted."""
        return sorted({key for event in self.events for key in event.links})

    def validate_links(self, topology) -> None:
        """Check every targeted link exists in ``topology``.

        Raises :class:`FaultSpecError` naming the first missing link, so
        a typo'd ``--faults`` spec dies at build time instead of firing
        a no-op (or crashing) mid-run.
        """
        for src, dst in self.link_keys():
            if not topology.has_link(src, dst):
                keys = sorted(link.key for link in topology.links())
                shown = ", ".join(f"{s}->{d}" for s, d in keys[:12])
                if len(keys) > 12:
                    shown += f", ... ({len(keys)} links)"
                raise FaultSpecError(
                    f"fault spec targets unknown link {src}->{dst} "
                    f"(topology {topology.name!r} has: {shown})"
                )

    def ground_truth(self) -> List[Dict]:
        """Grader-facing labels: one entry per distinct injected cause.

        Groups the primitive timeline by ``(action, target set)`` and
        skips restore actions (a restore ends a fault, it does not
        cause one), so a flap's many down/restore pairs collapse into a
        single ``link_down`` entry carrying its first onset and cycle
        count. ``crash_scheduler`` maps to localization kind
        ``"scheduler"``; link actions to kind ``"link"`` with directed
        ``src->dst`` target keys; control-plane actions to kinds
        ``"agent"`` / ``"coordinator"`` / ``"control"`` with
        ``agent:<id>`` targets where one was named. This is the *only*
        sanctioned bridge between the chaos layer and the watch loop's
        scoring -- the detectors and localizer never see it (see
        :mod:`repro.obs.watch.stream`).
        """
        grouped: Dict[Tuple[str, Tuple[str, ...]], Dict] = {}
        for event in self.events:
            if event.action in _RESTORE_ACTIONS:
                continue
            if event.action in _CONTROL_KINDS:
                kind = _CONTROL_KINDS[event.action]
                if event.target is not None:
                    targets: Tuple[str, ...] = (f"agent:{event.target}",)
                elif event.action == "crash_coordinator":
                    targets = ("coordinator",)
                else:
                    targets = ("control",)
            else:
                kind = (
                    "scheduler" if event.action == "crash_scheduler" else "link"
                )
                targets = tuple(sorted(f"{s}->{d}" for s, d in event.links))
            key = (event.action, targets)
            entry = grouped.get(key)
            if entry is None:
                grouped[key] = {
                    "kind": kind,
                    "action": event.action,
                    "targets": list(targets) or ["scheduler"],
                    "time": event.time,
                    "count": 1,
                }
            else:
                entry["time"] = min(entry["time"], event.time)
                entry["count"] += 1
        return sorted(
            grouped.values(), key=lambda e: (e["time"], e["action"])
        )

    @property
    def has_crashes(self) -> bool:
        return any(e.action == "crash_scheduler" for e in self.events)

    @property
    def has_control_faults(self) -> bool:
        """True when any event targets the control plane (agent /
        coordinator / partition / RPC channel); such schedules need a
        :class:`~repro.system.runtime.ControlPlaneRuntime` on the engine."""
        return any(e.action in _CONTROL_ACTIONS for e in self.events)

    def control_events(self) -> List[FaultEvent]:
        """The control-plane subset of the timeline, in order."""
        return [e for e in self.events if e.action in _CONTROL_ACTIONS]

    def agent_targets(self) -> List[str]:
        """Every agent id a control event names, sorted."""
        return sorted(
            {e.target for e in self.events if e.target is not None}
        )

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)
