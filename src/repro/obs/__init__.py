"""Observability: metrics, profiling, timelines, and trace export.

The layer every performance claim in this repo is measured with:

* :class:`MetricsRegistry` -- labeled counters/gauges/histograms with
  snapshot and merge (:mod:`repro.obs.registry`);
* :class:`Instrumentation` -- engine/network observer recording link
  utilization timelines, event counts, and live EchelonFlow tardiness
  (:mod:`repro.obs.instrumentation`);
* :class:`ProfiledScheduler` -- invocation profiling middleware for any
  scheduler (:mod:`repro.obs.profiling`);
* exporters -- JSONL event logs (:mod:`repro.obs.jsonl`), metrics
  reports (:mod:`repro.obs.report`), and Perfetto-loadable Chrome
  traces (:mod:`repro.obs.chrome`).

Instrumentation is strictly opt-in: an engine constructed without an
:class:`Instrumentation` pays one ``is None`` check per hook site.
"""

from .chrome import chrome_trace_dict, export_chrome_trace
from .instrumentation import Instrumentation, LinkTimeline
from .jsonl import (
    JsonlEventLog,
    iter_jsonl,
    read_jsonl,
    summarize_events,
    summarize_jsonl,
)
from .profiling import InvocationRecord, ProfiledScheduler, rate_vector_churn
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .report import build_metrics_report, write_metrics_report

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Instrumentation",
    "LinkTimeline",
    "ProfiledScheduler",
    "InvocationRecord",
    "rate_vector_churn",
    "JsonlEventLog",
    "iter_jsonl",
    "read_jsonl",
    "summarize_events",
    "summarize_jsonl",
    "chrome_trace_dict",
    "export_chrome_trace",
    "build_metrics_report",
    "write_metrics_report",
]
