"""Chrome trace-event (Perfetto-loadable) export with live metrics.

Builds on :func:`repro.analysis.export.chrome_trace_events` -- compute
spans per device, flow lifetimes per link -- and, when an
:class:`~repro.obs.instrumentation.Instrumentation` is supplied, adds:

* one counter track ("C" events) per observed link plotting its
  utilization fraction over time, and
* instant events for scheduler invocations, colour-coded by trigger
  cause via the event name.

Open the output at https://ui.perfetto.dev (or ``chrome://tracing``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..analysis.export import chrome_trace_events
from ..simulator.trace import SimulationTrace
from .instrumentation import Instrumentation

#: Trace-event timestamps are microseconds; our traces are seconds.
_US = 1e6

#: pid for the synthetic "network utilization" process row.
_UTILIZATION_PID = 3000
#: pid for the synthetic "scheduler" process row.
_SCHEDULER_PID = 3500


def _utilization_counters(instrumentation: Instrumentation) -> List[Dict]:
    timeline = instrumentation.link_timeline
    if timeline is None:
        return []
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _UTILIZATION_PID,
            "args": {"name": "link utilization"},
        }
    ]
    for key in sorted(timeline.segments):
        series = timeline.utilization_series(key)
        if not series:
            continue
        previous_end = None
        for start, end, utilization in series:
            if previous_end is not None and start > previous_end:
                # The link went idle between segments.
                events.append(
                    {
                        "name": key,
                        "ph": "C",
                        "pid": _UTILIZATION_PID,
                        "ts": previous_end * _US,
                        "args": {"utilization": 0.0},
                    }
                )
            events.append(
                {
                    "name": key,
                    "ph": "C",
                    "pid": _UTILIZATION_PID,
                    "ts": start * _US,
                    "args": {"utilization": utilization},
                }
            )
            previous_end = end
        if previous_end is not None:
            events.append(
                {
                    "name": key,
                    "ph": "C",
                    "pid": _UTILIZATION_PID,
                    "ts": previous_end * _US,
                    "args": {"utilization": 0.0},
                }
            )
    return events


def _scheduler_instants(instrumentation: Instrumentation) -> List[Dict]:
    log = instrumentation.event_log
    if log is None:
        return []
    events: List[Dict] = []
    header_emitted = False
    for record in log.events:
        if record.get("ev") != "reschedule":
            continue
        if not header_emitted:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": _SCHEDULER_PID,
                    "args": {"name": "scheduler invocations"},
                }
            )
            header_emitted = True
        events.append(
            {
                "name": f"reschedule:{record.get('cause', 'unknown')}",
                "cat": "scheduler",
                "ph": "i",
                "s": "p",
                "pid": _SCHEDULER_PID,
                "tid": 0,
                "ts": record["t"] * _US,
                "args": {"active_flows": record.get("active_flows")},
            }
        )
    return events


def chrome_trace_dict(
    trace: SimulationTrace,
    instrumentation: Optional[Instrumentation] = None,
) -> Dict:
    """The full trace-event document as plain data."""
    events = chrome_trace_events(trace)
    if instrumentation is not None:
        events.extend(_utilization_counters(instrumentation))
        events.extend(_scheduler_instants(instrumentation))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"end_time_s": trace.end_time},
    }


def export_chrome_trace(
    trace: SimulationTrace,
    path: str,
    instrumentation: Optional[Instrumentation] = None,
) -> None:
    """Write a Perfetto-loadable trace JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace_dict(trace, instrumentation), handle)
