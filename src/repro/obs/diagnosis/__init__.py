"""Diagnosis: turn recorded runs into explanations.

Four capabilities over :class:`RunArtifacts` (normalized from a saved
JSONL events log or an in-memory trace + Instrumentation -- never by
re-simulating):

* :func:`critical_path` / :func:`critical_paths` -- the chain of tasks
  that determined each job's JCT, with per-node wait and slack;
* :func:`attribute_run` -- Eq. 1/2 tardiness decomposed into upstream
  lateness, per-contender contention on the bottleneck link, and the
  scheduler-decision residual, with an exact-sum guarantee;
* :func:`blame_matrix` -- seconds of delay job i imposed on job j, per
  link and aggregate;
* :func:`diff_runs` -- two runs of one workload diffed per job, stage,
  and link (the automated Fig. 2 "Coflow is worse than fair sharing"
  diagnosis).

``diagnose()`` bundles the first three into one JSON-able report; the
CLI surfaces everything as ``repro diagnose`` and ``repro diff``.
"""

from __future__ import annotations

from typing import Dict

from .artifacts import FlowFact, RunArtifacts, TaskFact
from .attribution import (
    FlowAttribution,
    attribute_flow,
    attribute_run,
    bottleneck_of,
    overlap_integral,
)
from .blame import blame_matrix
from .critical_path import critical_path, critical_paths
from .diff import diff_runs
from .render import render_diagnosis, render_diff

#: Bumped when the diagnosis report layout changes incompatibly.
DIAGNOSIS_VERSION = 1


def diagnose(artifacts: RunArtifacts, top: int = 20) -> Dict:
    """The full diagnosis report for one run (JSON-able).

    ``top`` bounds the per-flow attribution list (worst tardiness
    first); critical paths, EchelonFlow attribution, and the blame
    matrix are always complete.
    """
    attribution = attribute_run(artifacts)
    flows = [
        attr
        for attr in attribution["flows"]
        if attr.tardiness is not None
    ]
    flows.sort(key=lambda attr: (-attr.tardiness, attr.flow_id))
    robustness = {
        "faults": list(artifacts.faults),
        "scheduler_fallbacks": list(artifacts.scheduler_fallbacks),
        "reroutes": {
            str(fid): count
            for fid, count in sorted(artifacts.reroutes.items())
        },
    }
    return {
        "version": DIAGNOSIS_VERSION,
        "run": {
            "source": artifacts.source,
            "end_time": artifacts.end_time,
            "flows": len(artifacts.flows),
            "tasks": len(artifacts.tasks),
            "jobs": artifacts.jobs(),
        },
        "critical_paths": critical_paths(artifacts),
        "attribution": {
            "flows": [attr.to_dict() for attr in flows[:top]],
            "echelonflows": attribution["echelonflows"],
            "coverage": attribution["coverage"],
        },
        "blame": blame_matrix(attribution["flows"]),
        "robustness": robustness,
    }


__all__ = [
    "DIAGNOSIS_VERSION",
    "FlowAttribution",
    "FlowFact",
    "RunArtifacts",
    "TaskFact",
    "attribute_flow",
    "attribute_run",
    "blame_matrix",
    "bottleneck_of",
    "critical_path",
    "critical_paths",
    "diagnose",
    "diff_runs",
    "overlap_integral",
    "render_diagnosis",
    "render_diff",
]
