"""Normalized run artifacts: the single input shape for diagnosis.

Diagnosis must run purely from recorded artifacts -- a saved JSONL
events log (``--events-out``) or the in-memory trace + instrumentation
of a run that just finished -- without re-simulating anything. This
module normalizes both sources into one :class:`RunArtifacts` value:
per-flow facts (endpoints, sizes, deadlines, pinned paths, allocated-
rate intervals) and per-task facts (dependency edges, devices,
durations, flow memberships), plus job arrival/completion times.

The JSONL log is the self-contained on-disk artifact: ``flow_injected``
events carry the pinned path, ``flow_rates`` events carry the rate
segments, and ``task_finished`` events carry the dependency edges --
none of which the plain trace JSON records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..jsonl import read_jsonl


@dataclass
class FlowFact:
    """Everything diagnosis knows about one flow."""

    flow_id: int
    src: Optional[str] = None
    dst: Optional[str] = None
    size: Optional[float] = None
    group: Optional[str] = None
    index: int = 0
    job: Optional[str] = None
    tag: str = ""
    start: Optional[float] = None
    finish: Optional[float] = None
    ideal_finish: Optional[float] = None
    #: Pinned path as ((link key, capacity), ...); empty when unrecorded.
    path: Tuple[Tuple[str, float], ...] = ()
    #: Allocated-rate history as [start, end, rate] spans (nonzero only).
    segments: List[List[float]] = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        return self.finish is not None

    @property
    def tardiness(self) -> Optional[float]:
        if self.finish is None or self.ideal_finish is None:
            return None
        return self.finish - self.ideal_finish

    @property
    def stage(self) -> str:
        """Human-stable label: the tag, else group#index, else the id."""
        if self.tag:
            return self.tag
        if self.group is not None:
            return f"{self.group}#{self.index}"
        return f"flow{self.flow_id}"

    @property
    def structural_key(self) -> Tuple:
        """Id-free identity, stable across runs of the same workload.

        Flow ids come from a global counter, so two runs of one workload
        number their flows differently; cross-run matching (run-diff)
        keys on what the flow *is* instead.
        """
        return (
            self.src,
            self.dst,
            self.size,
            self.group or "",
            self.index,
            self.job or "",
            self.tag,
        )


@dataclass
class TaskFact:
    """One completed DAG task, with the edges diagnosis walks."""

    task_id: str
    job: Optional[str]
    kind: str
    completed: float
    device: Optional[str] = None
    duration: float = 0.0
    deps: Tuple[str, ...] = ()
    flow_ids: Tuple[int, ...] = ()


@dataclass
class RunArtifacts:
    """One run, normalized for diagnosis; see module docstring."""

    flows: Dict[int, FlowFact] = field(default_factory=dict)
    #: (job id, task id) -> TaskFact.
    tasks: Dict[Tuple[Optional[str], str], TaskFact] = field(
        default_factory=dict
    )
    job_arrivals: Dict[str, float] = field(default_factory=dict)
    job_completions: Dict[str, float] = field(default_factory=dict)
    #: Injected fault records, in firing order (chaos layer).
    faults: List[Dict] = field(default_factory=list)
    #: Scheduler fallback records (graceful degradation events).
    scheduler_fallbacks: List[Dict] = field(default_factory=list)
    #: flow id -> number of mid-run path migrations.
    reroutes: Dict[int, int] = field(default_factory=dict)
    end_time: float = 0.0
    source: str = "events"
    meta: Dict = field(default_factory=dict)

    # -- derived views --------------------------------------------------

    def delivered_flows(self) -> List[FlowFact]:
        return [
            self.flows[fid]
            for fid in sorted(self.flows)
            if self.flows[fid].delivered
        ]

    def flows_of_job(self, job: Optional[str]) -> List[FlowFact]:
        return [f for f in self.delivered_flows() if f.job == job]

    def tasks_of_job(self, job: Optional[str]) -> Dict[str, TaskFact]:
        return {
            task_id: fact
            for (job_id, task_id), fact in self.tasks.items()
            if job_id == job
        }

    def jobs(self) -> List[str]:
        """Every job id seen, in deterministic order."""
        seen = set()
        for fact in self.tasks.values():
            if fact.job is not None:
                seen.add(fact.job)
        for flow in self.flows.values():
            if flow.job is not None:
                seen.add(flow.job)
        seen.update(self.job_arrivals)
        seen.update(self.job_completions)
        return sorted(seen)

    def job_completion(self, job: str) -> Optional[float]:
        """Completion time: recorded event, else last task, else last flow."""
        if job in self.job_completions:
            return self.job_completions[job]
        times = [
            fact.completed
            for (job_id, _), fact in self.tasks.items()
            if job_id == job
        ]
        if times:
            return max(times)
        finishes = [
            f.finish for f in self.flows.values()
            if f.job == job and f.finish is not None
        ]
        return max(finishes) if finishes else None

    def flows_on_link(self) -> Dict[str, List[FlowFact]]:
        """link key -> delivered flows whose pinned path crosses it."""
        out: Dict[str, List[FlowFact]] = {}
        for flow in self.delivered_flows():
            for key, _capacity in flow.path:
                out.setdefault(key, []).append(flow)
        return out

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Dict], source: str = "events") -> "RunArtifacts":
        """Normalize a JSONL event stream (see repro.obs.jsonl)."""
        artifacts = cls(source=source)
        flows = artifacts.flows
        end = 0.0
        for event in events:
            kind = event.get("ev")
            t = event.get("t")
            if isinstance(t, (int, float)):
                end = max(end, t)
            if kind == "flow_injected":
                fact = flows.setdefault(
                    event["flow_id"], FlowFact(flow_id=event["flow_id"])
                )
                fact.src = event.get("src")
                fact.dst = event.get("dst")
                fact.size = event.get("size")
                fact.group = event.get("group")
                fact.index = event.get("index", 0)
                fact.job = event.get("job")
                fact.tag = event.get("tag", "") or ""
                fact.start = t
                path = event.get("path")
                if path:
                    fact.path = tuple(
                        (str(key), float(capacity)) for key, capacity in path
                    )
            elif kind == "flow_finished":
                fact = flows.setdefault(
                    event["flow_id"], FlowFact(flow_id=event["flow_id"])
                )
                # flow_finished repeats the identity fields, so a log whose
                # ring evicted the injection event still yields a full fact.
                fact.src = event.get("src", fact.src)
                fact.dst = event.get("dst", fact.dst)
                fact.size = event.get("size", fact.size)
                fact.group = event.get("group", fact.group)
                fact.index = event.get("index", fact.index)
                fact.job = event.get("job", fact.job)
                fact.tag = event.get("tag", fact.tag) or ""
                if event.get("start") is not None:
                    fact.start = event["start"]
                fact.finish = event.get("finish")
                fact.ideal_finish = event.get("ideal_finish")
            elif kind == "flow_rates":
                fact = flows.setdefault(
                    event["flow_id"], FlowFact(flow_id=event["flow_id"])
                )
                fact.segments = [list(s) for s in event.get("segments", ())]
            elif kind == "task_finished":
                fact = TaskFact(
                    task_id=event["task"],
                    job=event.get("job"),
                    kind=event.get("kind", "compute"),
                    completed=t,
                    device=event.get("device"),
                    duration=event.get("duration", 0.0) or 0.0,
                    deps=tuple(event.get("deps", ())),
                    flow_ids=tuple(event.get("flow_ids", ())),
                )
                artifacts.tasks[(fact.job, fact.task_id)] = fact
            elif kind == "job_arrival":
                artifacts.job_arrivals[event.get("job")] = t
            elif kind == "job_completed":
                artifacts.job_completions[event.get("job")] = t
            elif kind == "fault":
                artifacts.faults.append(
                    {k: v for k, v in event.items() if k != "ev"}
                )
            elif kind == "scheduler_fallback":
                artifacts.scheduler_fallbacks.append(
                    {k: v for k, v in event.items() if k != "ev"}
                )
            elif kind == "flow_rerouted":
                flow_id = event.get("flow_id")
                if flow_id is not None:
                    artifacts.reroutes[flow_id] = (
                        artifacts.reroutes.get(flow_id, 0) + 1
                    )
        artifacts.end_time = end
        return artifacts

    @classmethod
    def from_jsonl(cls, path: str) -> "RunArtifacts":
        return cls.from_events(read_jsonl(path), source=path)

    @classmethod
    def from_run(cls, trace, instrumentation=None) -> "RunArtifacts":
        """Normalize an in-memory trace (+ optional Instrumentation).

        Without instrumentation only the trace's facts are available:
        flows lack paths/rate segments (attribution degrades to the
        upstream term) and tasks lack dependency edges (no critical
        path). With it, everything the events log would carry is here.
        """
        artifacts = cls(source="run")
        recorder = getattr(instrumentation, "rate_recorder", None)
        task_meta = getattr(instrumentation, "task_meta", {}) or {}
        for record in trace.flow_records:
            flow = record.flow
            fact = FlowFact(
                flow_id=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                size=flow.size,
                group=flow.group_id,
                index=flow.index_in_group,
                job=flow.job_id,
                tag=flow.tag,
                start=record.start,
                finish=record.finish,
                ideal_finish=record.ideal_finish,
            )
            if recorder is not None:
                fact.path = recorder.paths.get(flow.flow_id, ())
                fact.segments = recorder.rates_of(flow.flow_id)
            artifacts.flows[flow.flow_id] = fact
        for event in trace.task_events:
            meta = task_meta.get((event.job_id, event.task_id))
            artifacts.tasks[(event.job_id, event.task_id)] = TaskFact(
                task_id=event.task_id,
                job=event.job_id,
                kind=event.kind,
                completed=event.time,
                device=getattr(meta, "device", None),
                duration=getattr(meta, "duration", 0.0) or 0.0,
                deps=tuple(getattr(meta, "deps", ())),
                flow_ids=tuple(
                    flow.flow_id for flow in getattr(meta, "flows", ())
                ),
            )
        if instrumentation is not None:
            artifacts.job_arrivals = dict(
                getattr(instrumentation, "job_arrivals", {}) or {}
            )
            artifacts.job_completions = dict(
                getattr(instrumentation, "job_completions", {}) or {}
            )
            artifacts.faults = [
                dict(r)
                for r in getattr(instrumentation, "fault_events", ()) or ()
            ]
            artifacts.scheduler_fallbacks = [
                dict(r)
                for r in getattr(
                    instrumentation, "scheduler_fallbacks", ()
                ) or ()
            ]
            artifacts.reroutes = dict(
                getattr(instrumentation, "reroutes", {}) or {}
            )
        artifacts.end_time = trace.end_time
        if recorder is not None and recorder.evicted_flows:
            artifacts.meta["evicted_flows"] = recorder.evicted_flows
        return artifacts
