"""Tardiness attribution: *why* was this flow (EchelonFlow) late?

The paper defines a flow's tardiness as ``T_j = e_j - d_j`` (Eq. 1,
actual finish minus ideal finish) and an EchelonFlow's tardiness as the
max over its members (Eq. 2). This module decomposes each delivered
flow's tardiness into three exactly-summing components:

``upstream``
    ``(start + size/C) - d`` where ``C`` is the flow's bottleneck
    capacity (the min-capacity hop of its pinned path): the tardiness
    the flow would have shown had it run alone at full bottleneck rate
    from the moment it actually started. Captures late injection --
    upstream compute/dependency lateness relative to the recalibrated
    deadline (the Fig. 6 story). Negative when the flow started with
    slack in hand.

``contention[g]``
    ``(1/C) * integral of r_g(t) dt`` over the flow's lifetime, for
    every other flow ``g`` sharing the bottleneck link: seconds of the
    victim's ideal-rate time that contender ``g``'s allocation consumed.

``residual``
    ``(1/C) * integral of (C - sum of all allocations on the bottleneck
    link) dt`` over the flow's lifetime: bottleneck bandwidth the
    scheduler left idle while the flow was active -- the scheduler-
    decision residual (often bandwidth the flow could not use because a
    *different* hop of its path was the binding constraint, or because
    the scheduler deliberately throttled it).

The identity is exact, not approximate: the flow delivers its full size
over its lifetime, so ``(1/C) * integral of r_f dt = size/C``, and
``duration = size/C + sum(contention) + residual`` follows by splitting
``C`` into own rate + contenders + idle. Hence::

    tardiness = upstream + sum(contention.values()) + residual

up to the network's relative finish epsilon. Each component is computed
*independently* from the recorded rate segments (nothing is derived by
subtraction), so the sum is a real consistency check on the recording --
the property test in ``tests/test_diagnosis.py`` exercises it across
paradigms and schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .artifacts import FlowFact, RunArtifacts

#: Components must re-add to the total within this (relative) tolerance.
SUM_TOL = 1e-6


@dataclass
class FlowAttribution:
    """One flow's tardiness, decomposed; see module docstring."""

    flow_id: int
    stage: str
    job: Optional[str]
    group: Optional[str]
    start: float
    finish: float
    ideal_finish: Optional[float]
    tardiness: Optional[float]
    bottleneck: Optional[str]
    bottleneck_capacity: Optional[float]
    #: ``None`` when the flow has no recorded path (no deadline math).
    upstream: Optional[float] = None
    stretch: Optional[float] = None
    #: contender stage label -> seconds of delay imposed on this flow.
    contention: Dict[str, float] = field(default_factory=dict)
    #: contender job id -> seconds (same mass, job granularity).
    contention_by_job: Dict[str, float] = field(default_factory=dict)
    residual: Optional[float] = None
    #: upstream + sum(contention) + residual; ~= tardiness when exact.
    explained: Optional[float] = None

    @property
    def contention_total(self) -> float:
        return sum(self.contention.values())

    def to_dict(self) -> Dict:
        return {
            "flow_id": self.flow_id,
            "stage": self.stage,
            "job": self.job,
            "group": self.group,
            "start": self.start,
            "finish": self.finish,
            "ideal_finish": self.ideal_finish,
            "tardiness": self.tardiness,
            "bottleneck": self.bottleneck,
            "bottleneck_capacity": self.bottleneck_capacity,
            "upstream": self.upstream,
            "stretch": self.stretch,
            "contention": dict(
                sorted(self.contention.items(), key=lambda kv: -kv[1])
            ),
            "contention_by_job": dict(sorted(self.contention_by_job.items())),
            "contention_total": self.contention_total,
            "residual": self.residual,
            "explained": self.explained,
        }


def bottleneck_of(flow: FlowFact) -> Optional[Tuple[str, float]]:
    """The min-capacity hop of the flow's pinned path (first on ties)."""
    if not flow.path:
        return None
    return min(flow.path, key=lambda hop: (hop[1], hop[0]))


def overlap_integral(segments, lo: float, hi: float) -> float:
    """Integral of a piecewise-constant rate over the window [lo, hi]."""
    total = 0.0
    for start, end, rate in segments:
        left = start if start > lo else lo
        right = end if end < hi else hi
        if right > left:
            total += rate * (right - left)
    return total


def attribute_flow(
    flow: FlowFact,
    on_link: Dict[str, List[FlowFact]],
) -> FlowAttribution:
    """Decompose one delivered flow's tardiness (see module docstring).

    ``on_link`` maps link key -> delivered flows crossing it (from
    :meth:`RunArtifacts.flows_on_link`). Flows without a recorded path
    or rate segments degrade to the bare Eq. 1 numbers.
    """
    out = FlowAttribution(
        flow_id=flow.flow_id,
        stage=flow.stage,
        job=flow.job,
        group=flow.group,
        start=flow.start if flow.start is not None else 0.0,
        finish=flow.finish if flow.finish is not None else 0.0,
        ideal_finish=flow.ideal_finish,
        tardiness=flow.tardiness,
        bottleneck=None,
        bottleneck_capacity=None,
    )
    hop = bottleneck_of(flow)
    if hop is None or flow.finish is None or flow.start is None:
        return out
    key, capacity = hop
    out.bottleneck = key
    out.bottleneck_capacity = capacity
    if capacity <= 0 or flow.size is None:
        return out
    lo, hi = flow.start, flow.finish
    duration = hi - lo
    ideal_duration = flow.size / capacity
    out.stretch = duration - ideal_duration
    if flow.ideal_finish is not None:
        out.upstream = (lo + ideal_duration) - flow.ideal_finish

    # Every recorded allocation on the bottleneck link during [lo, hi]:
    # contenders get named shares, the flow's own share re-derives its
    # ideal duration, and what no one used is the residual.
    used = 0.0
    for other in on_link.get(key, ()):
        if other.flow_id == flow.flow_id:
            used += overlap_integral(other.segments, lo, hi)
            continue
        share = overlap_integral(other.segments, lo, hi)
        if share <= 0.0:
            continue
        used += share
        seconds = share / capacity
        out.contention[other.stage] = (
            out.contention.get(other.stage, 0.0) + seconds
        )
        job = other.job or "?"
        out.contention_by_job[job] = (
            out.contention_by_job.get(job, 0.0) + seconds
        )
    out.residual = duration - used / capacity
    if out.upstream is not None:
        out.explained = out.upstream + out.contention_total + out.residual
    return out


def attribute_run(artifacts: RunArtifacts) -> Dict:
    """Attribution for every delivered flow, plus the Eq. 2 group view.

    Returns ``{"flows": [FlowAttribution...], "echelonflows": {group:
    {...}}, "coverage": {...}}``. The EchelonFlow entry reports the
    straggler member (the max-tardiness flow that *defines* the group's
    tardiness under Eq. 2) and its decomposition.
    """
    on_link = artifacts.flows_on_link()
    attributions = [
        attribute_flow(flow, on_link) for flow in artifacts.delivered_flows()
    ]
    by_group: Dict[str, List[FlowAttribution]] = {}
    for attribution in attributions:
        if attribution.group is not None and attribution.tardiness is not None:
            by_group.setdefault(attribution.group, []).append(attribution)
    echelonflows: Dict[str, Dict] = {}
    for group, members in sorted(by_group.items()):
        straggler = max(members, key=lambda a: (a.tardiness, a.flow_id))
        echelonflows[group] = {
            "members": len(members),
            "tardiness": straggler.tardiness,
            "straggler": straggler.stage,
            "straggler_attribution": straggler.to_dict(),
        }
    with_rates = sum(1 for a in attributions if a.residual is not None)
    coverage = {
        "flows": len(attributions),
        "with_rate_data": with_rates,
        "evicted_flows": artifacts.meta.get("evicted_flows", 0),
    }
    return {
        "flows": attributions,
        "echelonflows": echelonflows,
        "coverage": coverage,
    }
