"""The job x job contention blame matrix.

``blame[i][j]`` is the number of seconds of delay job ``i`` imposed on
job ``j``: the sum, over job ``j``'s delivered flows, of the contention
component attributed to job ``i``'s flows on each victim's bottleneck
link (see :mod:`repro.obs.diagnosis.attribution`). The diagonal is
self-inflicted contention -- in the Fig. 2 example the single job's
later micro-batch flows stealing bandwidth from the earlier one.

A per-link breakdown keys the same mass by the victim's bottleneck
link, so "who hurt whom" and "where" are answered together.
"""

from __future__ import annotations

from typing import Dict, List

from .attribution import FlowAttribution


def blame_matrix(attributions: List[FlowAttribution]) -> Dict:
    """Aggregate and per-link blame from per-flow attributions.

    Returns ``{"aggregate": {blamed: {victim: seconds}}, "links":
    {link: {blamed: {victim: seconds}}}, "worst": [...]}`` with jobs in
    sorted order and a ranked flat view for reporting.
    """
    aggregate: Dict[str, Dict[str, float]] = {}
    links: Dict[str, Dict[str, Dict[str, float]]] = {}
    for attribution in attributions:
        victim = attribution.job or "?"
        link = attribution.bottleneck
        for blamed, seconds in attribution.contention_by_job.items():
            if seconds <= 0.0:
                continue
            row = aggregate.setdefault(blamed, {})
            row[victim] = row.get(victim, 0.0) + seconds
            if link is not None:
                link_row = links.setdefault(link, {}).setdefault(blamed, {})
                link_row[victim] = link_row.get(victim, 0.0) + seconds
    worst = sorted(
        (
            {"blamed": blamed, "victim": victim, "seconds": seconds}
            for blamed, row in aggregate.items()
            for victim, seconds in row.items()
        ),
        key=lambda entry: -entry["seconds"],
    )
    return {
        "aggregate": {
            blamed: dict(sorted(row.items()))
            for blamed, row in sorted(aggregate.items())
        },
        "links": {
            link: {
                blamed: dict(sorted(row.items()))
                for blamed, row in sorted(rows.items())
            }
            for link, rows in sorted(links.items())
        },
        "worst": worst,
    }
