"""Critical-path extraction: where did the iteration time go?

Walks the dependency structure recorded in the run artifacts backwards
from the task that completed last in each job, always following the
*determining* predecessor -- the thing that had to finish before the
current node could make progress:

* a **compute** node's determiner is whichever finished latest of (a)
  its DAG dependencies and (b) the task that held its device until the
  moment it started (per-device serialization is a real dependency even
  though no DAG edge records it);
* a **comm** node's determiner is its straggler member flow (the one
  whose delivery completed the task), and the flow's own determiner is
  the comm task's DAG dependencies;
* a **barrier** costs nothing and passes through to its latest dep.

Each node carries ``duration`` (time it actively ran), ``wait`` (gap
between its determiner finishing and the node starting -- queueing that
no single predecessor explains), and ``slack`` (how much later the
runner-up predecessor finished vs. the chosen one: the margin by which
this edge, and not another, is critical). Waits + durations along the
path sum to the job's JCT measured from its arrival.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .artifacts import RunArtifacts, TaskFact

#: Two completion times closer than this count as "the same instant".
_TIME_TOL = 1e-9


def _start_of(fact: TaskFact, artifacts: RunArtifacts) -> float:
    """When the node began actively running."""
    if fact.kind == "compute":
        return fact.completed - fact.duration
    if fact.kind == "comm" and fact.flow_ids:
        starts = [
            artifacts.flows[fid].start
            for fid in fact.flow_ids
            if fid in artifacts.flows
            and artifacts.flows[fid].start is not None
        ]
        if starts:
            return min(starts)
    return fact.completed


def _device_predecessor(
    fact: TaskFact, start: float, tasks: Dict[str, TaskFact]
) -> Optional[TaskFact]:
    """The same-device compute task whose completion released our slot."""
    if fact.kind != "compute" or fact.device is None:
        return None
    tol = _TIME_TOL * max(1.0, abs(start))
    best: Optional[TaskFact] = None
    for other in tasks.values():
        if other is fact or other.kind != "compute":
            continue
        if other.device != fact.device:
            continue
        if abs(other.completed - start) <= tol:
            if best is None or other.task_id < best.task_id:
                best = other
    return best


def critical_path(artifacts: RunArtifacts, job: str) -> Dict:
    """The chain of nodes that determined ``job``'s completion time.

    Returns a JSON-able dict; ``{"available": False}`` when the
    artifacts carry no dependency edges for the job (e.g. a trace
    recorded without instrumentation).
    """
    tasks = artifacts.tasks_of_job(job)
    if not tasks:
        return {"job": job, "available": False, "reason": "no task facts"}
    if all(not fact.deps for fact in tasks.values()) and len(tasks) > 1:
        return {
            "job": job,
            "available": False,
            "reason": "task facts carry no dependency edges",
        }

    terminal = max(tasks.values(), key=lambda f: (f.completed, f.task_id))
    arrival = artifacts.job_arrivals.get(job)
    nodes: List[Dict] = []
    current: Optional[TaskFact] = terminal
    visited = set()

    while current is not None and current.task_id not in visited:
        visited.add(current.task_id)
        start = _start_of(current, artifacts)
        node: Dict = {
            "kind": current.kind,
            "id": current.task_id,
            "start": start,
            "end": current.completed,
            "duration": current.completed - start,
        }
        if current.kind == "comm" and current.flow_ids:
            members = [
                artifacts.flows[fid]
                for fid in current.flow_ids
                if fid in artifacts.flows
                and artifacts.flows[fid].finish is not None
            ]
            if members:
                straggler = max(members, key=lambda f: (f.finish, f.flow_id))
                node["straggler_flow"] = straggler.stage
                node["straggler_finish"] = straggler.finish

        # Rank the candidate determiners: DAG deps, then (for compute)
        # the device-serialization predecessor when deps alone leave an
        # unexplained gap before our start.
        candidates = [
            tasks[dep] for dep in current.deps if dep in tasks
        ]
        chosen: Optional[TaskFact] = None
        edge = "start"
        if candidates:
            candidates.sort(key=lambda f: (-f.completed, f.task_id))
            chosen = candidates[0]
            edge = "dep"
            node["slack"] = (
                chosen.completed - candidates[1].completed
                if len(candidates) > 1
                else None
            )
        gap = start - (chosen.completed if chosen is not None else (arrival or 0.0))
        if current.kind == "compute" and gap > _TIME_TOL * max(1.0, abs(start)):
            holder = _device_predecessor(current, start, tasks)
            if holder is not None and (
                chosen is None or holder.completed > chosen.completed
            ):
                chosen = holder
                edge = "device"
                gap = start - holder.completed
        node["wait"] = max(0.0, gap)
        node["via"] = edge
        nodes.append(node)
        current = chosen

    nodes.reverse()
    first_start = nodes[0]["start"] if nodes else 0.0
    origin = arrival if arrival is not None else first_start
    completion = terminal.completed
    return {
        "job": job,
        "available": True,
        "arrival": origin,
        "completion": completion,
        "jct": completion - origin,
        "nodes": nodes,
        "total_duration": sum(n["duration"] for n in nodes),
        "total_wait": sum(n["wait"] for n in nodes),
    }


def critical_paths(artifacts: RunArtifacts) -> Dict[str, Dict]:
    """Critical path of every job in the artifacts."""
    return {job: critical_path(artifacts, job) for job in artifacts.jobs()}
