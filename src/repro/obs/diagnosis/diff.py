"""Run-diff: why did scheduler B beat scheduler A on this workload?

Compares two runs of the *same workload* (matched flow-by-flow on
structural identity, since flow ids are run-local) and attributes each
job's JCT delta down to stages and links:

* per-job JCT delta (positive = run B slower);
* per-flow/stage finish delta, split into ``start_delta`` (the flow was
  injected later -- upstream effects) and ``stretch_delta`` (the flow
  was in the network longer than its ideal duration -- scheduling
  effects), with the contention component diffed per contender stage;
* per-group (EchelonFlow) completion delta;
* per-link busy-seconds delta from the recorded rate segments.

This automates the paper's Fig. 2 diagnosis: diffing the Coflow run
against fair sharing shows the later micro-batch flows' contention on
the earlier ones growing -- Coflow's all-finish-together allocation
serializes the pipeline where fair sharing lets the head micro-batch
out early.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .artifacts import FlowFact, RunArtifacts
from .attribution import FlowAttribution, attribute_run


def _match_flows(
    a: RunArtifacts, b: RunArtifacts
) -> Tuple[List[Tuple[FlowFact, FlowFact]], List[FlowFact], List[FlowFact]]:
    """Pair flows across runs by structural key (start order on dups)."""

    def bucket(artifacts: RunArtifacts) -> Dict:
        out: Dict = {}
        for flow in artifacts.delivered_flows():
            out.setdefault(flow.structural_key, []).append(flow)
        for flows in out.values():
            flows.sort(key=lambda f: (f.start or 0.0, f.flow_id))
        return out

    buckets_a, buckets_b = bucket(a), bucket(b)
    matched: List[Tuple[FlowFact, FlowFact]] = []
    only_a: List[FlowFact] = []
    only_b: List[FlowFact] = []
    for key in sorted(set(buckets_a) | set(buckets_b), key=repr):
        flows_a = buckets_a.get(key, [])
        flows_b = buckets_b.get(key, [])
        paired = min(len(flows_a), len(flows_b))
        matched.extend(zip(flows_a[:paired], flows_b[:paired]))
        only_a.extend(flows_a[paired:])
        only_b.extend(flows_b[paired:])
    return matched, only_a, only_b


def _delta_map(
    left: Dict[str, float], right: Dict[str, float]
) -> Dict[str, float]:
    """right - left per key, dropping exact zeros."""
    out = {}
    for key in set(left) | set(right):
        delta = right.get(key, 0.0) - left.get(key, 0.0)
        if delta != 0.0:
            out[key] = delta
    return dict(sorted(out.items(), key=lambda kv: -abs(kv[1])))


def _link_busy(artifacts: RunArtifacts) -> Dict[str, float]:
    """Per-link utilization-seconds (rate integral / capacity)."""
    busy: Dict[str, float] = {}
    for flow in artifacts.delivered_flows():
        carried = sum((end - start) * rate for start, end, rate in flow.segments)
        if carried <= 0.0:
            continue
        for key, capacity in flow.path:
            if capacity > 0:
                busy[key] = busy.get(key, 0.0) + carried / capacity
    return busy


def diff_runs(a: RunArtifacts, b: RunArtifacts, top: int = 20) -> Dict:
    """The run-diff report; see module docstring. JSON-able."""
    attribution_a = {
        attr.flow_id: attr for attr in attribute_run(a)["flows"]
    }
    attribution_b = {
        attr.flow_id: attr for attr in attribute_run(b)["flows"]
    }
    matched, only_a, only_b = _match_flows(a, b)

    stages: List[Dict] = []
    group_finish_a: Dict[str, float] = {}
    group_finish_b: Dict[str, float] = {}
    for flow_a, flow_b in matched:
        attr_a: Optional[FlowAttribution] = attribution_a.get(flow_a.flow_id)
        attr_b: Optional[FlowAttribution] = attribution_b.get(flow_b.flow_id)
        row: Dict = {
            "stage": flow_a.stage,
            "job": flow_a.job,
            "group": flow_a.group,
            "finish_a": flow_a.finish,
            "finish_b": flow_b.finish,
            "delta": flow_b.finish - flow_a.finish,
            "start_delta": (flow_b.start or 0.0) - (flow_a.start or 0.0),
        }
        if (
            attr_a is not None
            and attr_b is not None
            and attr_a.stretch is not None
            and attr_b.stretch is not None
        ):
            row["stretch_delta"] = attr_b.stretch - attr_a.stretch
            row["contention_delta"] = _delta_map(
                attr_a.contention, attr_b.contention
            )
            row["contention_delta_total"] = (
                attr_b.contention_total - attr_a.contention_total
            )
            if attr_a.residual is not None and attr_b.residual is not None:
                row["residual_delta"] = attr_b.residual - attr_a.residual
            row["bottleneck"] = attr_b.bottleneck or attr_a.bottleneck
        stages.append(row)
        if flow_a.group is not None and flow_a.finish is not None:
            group_finish_a[flow_a.group] = max(
                group_finish_a.get(flow_a.group, float("-inf")), flow_a.finish
            )
        if flow_b.group is not None and flow_b.finish is not None:
            group_finish_b[flow_b.group] = max(
                group_finish_b.get(flow_b.group, float("-inf")), flow_b.finish
            )
    stages.sort(key=lambda row: -abs(row["delta"]))

    jobs: Dict[str, Dict] = {}
    for job in sorted(set(a.jobs()) | set(b.jobs())):
        jct_a = a.job_completion(job)
        jct_b = b.job_completion(job)
        entry: Dict = {"jct_a": jct_a, "jct_b": jct_b}
        if jct_a is not None and jct_b is not None:
            entry["delta"] = jct_b - jct_a
            entry["winner"] = (
                "tie" if jct_a == jct_b else ("a" if jct_a < jct_b else "b")
            )
        jobs[job] = entry

    groups = {
        group: {
            "finish_a": group_finish_a.get(group),
            "finish_b": group_finish_b.get(group),
            "delta": group_finish_b[group] - group_finish_a[group],
        }
        for group in sorted(set(group_finish_a) & set(group_finish_b))
    }

    deltas = [entry.get("delta") for entry in jobs.values()]
    deltas = [d for d in deltas if d is not None]
    return {
        "jobs": jobs,
        "verdict": {
            "end_time_a": a.end_time,
            "end_time_b": b.end_time,
            "jobs_faster_in_a": sum(1 for d in deltas if d > 0),
            "jobs_faster_in_b": sum(1 for d in deltas if d < 0),
        },
        "flows": {
            "matched": len(matched),
            "only_a": len(only_a),
            "only_b": len(only_b),
        },
        "stages": stages[:top],
        "groups": groups,
        "links": _delta_map(_link_busy(a), _link_busy(b)),
    }
