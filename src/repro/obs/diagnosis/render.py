"""ASCII rendering of diagnosis and run-diff reports for the CLI."""

from __future__ import annotations

from typing import Dict, List

from ...analysis.tables import format_table


def _fmt_components(components: Dict[str, float], limit: int = 3) -> str:
    parts = [
        f"{name}={seconds:.3g}"
        for name, seconds in list(components.items())[:limit]
    ]
    if len(components) > limit:
        parts.append("...")
    return ", ".join(parts) if parts else "-"


def render_diagnosis(report: Dict, top: int = 10) -> str:
    """Human-readable view of a ``diagnose()`` report."""
    sections: List[str] = []

    paths = report.get("critical_paths", {})
    for job, path in sorted(paths.items()):
        if not path.get("available"):
            sections.append(
                f"critical path [{job}]: unavailable "
                f"({path.get('reason', 'unknown')})"
            )
            continue
        rows = [
            [
                node["kind"],
                node["id"],
                node["start"],
                node["end"],
                node["duration"],
                node["wait"],
                node["via"],
                node.get("straggler_flow", "-"),
            ]
            for node in path["nodes"]
        ]
        sections.append(
            format_table(
                ["kind", "task", "start", "end", "duration", "wait", "via",
                 "straggler"],
                rows,
                title=(
                    f"critical path [{job}]: jct {path['jct']:.4g}s = "
                    f"{path['total_duration']:.4g}s running + "
                    f"{path['total_wait']:.4g}s waiting"
                ),
            )
        )

    attribution = report.get("attribution", {})
    ef_rows = [
        [
            group,
            entry["tardiness"],
            entry["straggler"],
            entry["straggler_attribution"].get("upstream"),
            entry["straggler_attribution"].get("contention_total"),
            entry["straggler_attribution"].get("residual"),
        ]
        for group, entry in sorted(
            attribution.get("echelonflows", {}).items(),
            key=lambda kv: -(kv[1]["tardiness"] or 0.0),
        )[:top]
    ]
    if ef_rows:
        sections.append(
            format_table(
                ["echelonflow", "tardiness", "straggler", "upstream",
                 "contention", "residual"],
                ef_rows,
                title="EchelonFlow tardiness attribution (Eq. 2 stragglers)",
            )
        )
    flow_rows = [
        [
            entry["stage"],
            entry["job"] or "-",
            entry["tardiness"],
            entry["upstream"],
            entry["contention_total"],
            entry["residual"],
            _fmt_components(entry["contention"]),
        ]
        for entry in attribution.get("flows", [])[:top]
    ]
    if flow_rows:
        sections.append(
            format_table(
                ["flow", "job", "tardiness", "upstream", "contention",
                 "residual", "top contenders"],
                flow_rows,
                title="per-flow tardiness attribution (Eq. 1, worst first)",
            )
        )

    blame = report.get("blame", {})
    blame_rows = [
        [entry["blamed"], entry["victim"], entry["seconds"]]
        for entry in blame.get("worst", [])[:top]
    ]
    if blame_rows:
        sections.append(
            format_table(
                ["blamed job", "victim job", "seconds of delay"],
                blame_rows,
                title="contention blame (aggregate over bottleneck links)",
            )
        )

    robustness = report.get("robustness", {})
    fault_rows = [
        [
            fault.get("time", fault.get("t")),
            fault.get("action"),
            " ".join(
                f"{src}->{dst}" for src, dst in fault.get("links", ())
            ) or "-",
            _fmt_components(fault.get("capacities") or {}),
            len(fault.get("migrated", ())) or "-",
            len(fault.get("stranded", ())) or "-",
        ]
        for fault in robustness.get("faults", [])[:top]
    ]
    if fault_rows:
        sections.append(
            format_table(
                ["time", "action", "links", "new capacity", "migrated",
                 "stranded"],
                fault_rows,
                title="injected faults (chaos layer)",
            )
        )
    fallback_rows = [
        [
            record.get("time", record.get("t")),
            record.get("kind"),
            record.get("scheduler", "-"),
            record.get("error", "-"),
        ]
        for record in robustness.get("scheduler_fallbacks", [])[:top]
    ]
    if fallback_rows:
        sections.append(
            format_table(
                ["time", "kind", "scheduler", "error"],
                fallback_rows,
                title="scheduler fallbacks (graceful degradation)",
            )
        )

    coverage = attribution.get("coverage")
    if coverage:
        sections.append(
            f"coverage: {coverage['with_rate_data']}/{coverage['flows']} "
            f"flows with rate data, {coverage['evicted_flows']} evicted"
        )
    return "\n\n".join(sections) if sections else "nothing to diagnose"


def render_diff(report: Dict, top: int = 10) -> str:
    """Human-readable view of a ``diff_runs()`` report."""
    sections: List[str] = []
    job_rows = [
        [
            job,
            entry.get("jct_a"),
            entry.get("jct_b"),
            entry.get("delta"),
            entry.get("winner", "-"),
        ]
        for job, entry in sorted(report.get("jobs", {}).items())
    ]
    if job_rows:
        sections.append(
            format_table(
                ["job", "jct A", "jct B", "delta (B-A)", "winner"],
                job_rows,
                title="per-job completion times",
            )
        )
    stage_rows = [
        [
            row["stage"],
            row.get("finish_a"),
            row.get("finish_b"),
            row.get("delta"),
            row.get("start_delta"),
            row.get("stretch_delta", "-"),
            _fmt_components(row.get("contention_delta", {})),
        ]
        for row in report.get("stages", [])[:top]
    ]
    if stage_rows:
        sections.append(
            format_table(
                ["stage", "finish A", "finish B", "delta", "start d",
                 "stretch d", "contention delta (B-A)"],
                stage_rows,
                title="per-stage finish deltas (largest first)",
            )
        )
    link_rows = [
        [link, delta]
        for link, delta in list(report.get("links", {}).items())[:top]
    ]
    if link_rows:
        sections.append(
            format_table(
                ["link", "busy-seconds delta (B-A)"],
                link_rows,
                title="per-link load deltas",
            )
        )
    flows = report.get("flows", {})
    verdict = report.get("verdict", {})
    sections.append(
        f"matched {flows.get('matched', 0)} flows "
        f"(only in A: {flows.get('only_a', 0)}, only in B: "
        f"{flows.get('only_b', 0)}); end time A={verdict.get('end_time_a')} "
        f"B={verdict.get('end_time_b')}"
    )
    return "\n\n".join(sections)
