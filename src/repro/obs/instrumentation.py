"""Run-time instrumentation: what the engine records when observed.

An :class:`Instrumentation` object plugs into the engine (and, through
it, the network model) and passively records:

* per-link utilization/saturation timelines, sampled on every fluid
  advance and merged into piecewise-constant segments;
* per-round event counts and scheduler invocations by trigger cause
  (arrival / departure / compute / tick / timer);
* per-EchelonFlow *live* tardiness, appended the moment each member
  flow delivers -- the running view of Eq. 1-4 rather than the
  post-hoc report;
* optional structured JSONL events for offline analysis.

Everything funnels into a :class:`~repro.obs.registry.MetricsRegistry`
so reports and merges come for free. The engine holds ``None`` when not
observed and guards each hook with one attribute check, which keeps the
un-instrumented hot path allocation-free.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Tuple

from .jsonl import JsonlEventLog
from .registry import MetricsRegistry

#: Rates closer than this (relative) are merged into one timeline segment.
_RATE_TOL = 1e-9

#: Default bound on retained per-flow rate segments (see FlowRateRecorder).
DEFAULT_RATE_CAPACITY = 200_000


class LinkTimeline:
    """Piecewise-constant utilization history of every observed link.

    Samples arrive as (now, dt, rate-per-link); consecutive samples at
    the same rate coalesce, so a flow draining steadily for a thousand
    engine rounds costs one segment, not a thousand.
    """

    def __init__(self) -> None:
        #: link key "src->dst" -> list of [start, end, rate] segments.
        self.segments: Dict[str, List[List[float]]] = {}
        self.capacities: Dict[str, float] = {}

    @staticmethod
    def link_key(src: str, dst: str) -> str:
        return f"{src}->{dst}"

    def record(self, now: float, dt: float, usage: Mapping) -> None:
        """Record one fluid advance: ``usage`` maps Link -> total rate.

        ``usage`` now comes straight from the network's incrementally
        maintained residual accounting; its per-link float accumulators
        can drift a few ulp below zero on a busy link that just emptied,
        so tiny negatives are clamped rather than plotted.
        """
        if dt <= 0:
            return
        end = now + dt
        for link, rate in usage.items():
            if rate < 0.0:
                rate = 0.0
            key = self.link_key(link.src, link.dst)
            self.capacities[key] = link.capacity
            series = self.segments.setdefault(key, [])
            if series:
                last = series[-1]
                if (
                    abs(last[1] - now) <= _RATE_TOL
                    and abs(last[2] - rate) <= _RATE_TOL * max(1.0, abs(rate))
                ):
                    last[1] = end
                    continue
            series.append([now, end, rate])

    def utilization_series(self, key: str) -> List[Tuple[float, float, float]]:
        """(start, end, utilization-fraction) segments of one link."""
        capacity = self.capacities.get(key)
        if not capacity:
            return []
        return [(s, e, r / capacity) for s, e, r in self.segments.get(key, [])]

    def stats(self, horizon: Optional[float] = None) -> Dict[str, Dict[str, float]]:
        """Per-link peak/mean utilization and busy time.

        ``mean_utilization`` is time-weighted over ``horizon`` (the run
        length); when omitted, over the link's own observed window.
        """
        out: Dict[str, Dict[str, float]] = {}
        for key, series in sorted(self.segments.items()):
            capacity = self.capacities[key]
            peak = 0.0
            byte_integral = 0.0
            busy = 0.0
            observed_end = 0.0
            for start, end, rate in series:
                duration = end - start
                peak = max(peak, rate / capacity)
                byte_integral += rate * duration
                if rate > 0:
                    busy += duration
                observed_end = max(observed_end, end)
            window = horizon if horizon and horizon > 0 else observed_end
            out[key] = {
                "capacity": capacity,
                "peak_utilization": peak,
                "mean_utilization": (
                    byte_integral / (capacity * window) if window > 0 else 0.0
                ),
                "busy_seconds": busy,
                "bytes_carried": byte_integral,
            }
        return out


class FlowRateRecorder:
    """Bounded-memory per-flow allocated-rate interval history.

    The tardiness-attribution math in :mod:`repro.obs.diagnosis` needs to
    know, for every flow, *when it held which rate*: contention is the
    integral of a contender's rate over the victim's lifetime. The
    recorder listens to the network's ``on_rates_applied`` hook (fired
    only for flows whose rate actually changed, so recording cost tracks
    the dirty set, not the active set) and keeps one coalesced
    ``[start, end, rate]`` segment list per flow, plus the flow's pinned
    path as ``(link key, capacity)`` pairs.

    Memory is bounded by ``capacity`` *total segments*: once exceeded,
    the oldest-*finished* flows are evicted FIFO (in-flight flows are
    never dropped, so a live attribution query is always complete).
    ``evicted_flows`` counts the casualties so downstream consumers can
    report degraded coverage instead of silently wrong sums.
    """

    def __init__(self, capacity: int = DEFAULT_RATE_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: flow id -> [[start, end, rate], ...], nonzero-rate spans only.
        self.segments: Dict[int, List[List[float]]] = {}
        #: flow id -> ((link key, capacity), ...) of its pinned path.
        self.paths: Dict[int, Tuple[Tuple[str, float], ...]] = {}
        #: flow id -> [since, rate] of the currently-open span.
        self._open: Dict[int, List[float]] = {}
        self._finished: deque = deque()
        self.total_segments = 0
        self.evicted_flows = 0

    def on_admitted(
        self, flow_id: int, path: Tuple[Tuple[str, float], ...], now: float
    ) -> None:
        self.paths[flow_id] = path
        self.segments[flow_id] = []
        self._open[flow_id] = [now, 0.0]

    def _close(self, flow_id: int, now: float) -> None:
        span = self._open[flow_id]
        since, rate = span
        if now > since and rate > 0.0:
            series = self.segments[flow_id]
            if series and series[-1][1] == since and series[-1][2] == rate:
                series[-1][1] = now
            else:
                series.append([since, now, rate])
                self.total_segments += 1

    def on_rate_change(self, flow_id: int, now: float, rate: float) -> None:
        span = self._open.get(flow_id)
        if span is None:
            return
        self._close(flow_id, now)
        span[0] = now
        span[1] = rate

    def on_finished(self, flow_id: int, finish: float) -> Optional[List[List[float]]]:
        """Seal a flow's history; returns its segments (pre-eviction)."""
        if flow_id not in self._open:
            return None
        self._close(flow_id, finish)
        del self._open[flow_id]
        self._finished.append(flow_id)
        series = self.segments[flow_id]
        while self.total_segments > self.capacity and self._finished:
            victim = self._finished.popleft()
            self.total_segments -= len(self.segments.pop(victim, ()))
            self.paths.pop(victim, None)
            self.evicted_flows += 1
        return series

    def rates_of(self, flow_id: int) -> List[List[float]]:
        """Recorded ``[start, end, rate]`` spans of one flow (or [])."""
        return list(self.segments.get(flow_id, ()))


class Instrumentation:
    """Observer attached to an engine run; see module docstring.

    Parameters
    ----------
    registry:
        Accumulation target; a fresh one is created when omitted.
    sample_links:
        Record per-link utilization timelines (the dominant memory cost;
        disable for huge runs where only counters matter).
    event_log:
        A :class:`JsonlEventLog` to stream structured events into, or
        ``None`` for no log.
    log_link_samples:
        Also mirror link utilization samples into the event log (off by
        default: one event per engine round gets bulky).
    record_rates:
        Keep per-flow allocated-rate intervals in a
        :class:`FlowRateRecorder` (the input to tardiness attribution in
        :mod:`repro.obs.diagnosis`). On by default; the cost is O(rate
        changes), bounded by ``rate_capacity`` retained segments.
    rate_capacity:
        Total-segment bound for the rate recorder; oldest-finished flows
        are evicted first once exceeded.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sample_links: bool = True,
        event_log: Optional[JsonlEventLog] = None,
        log_link_samples: bool = False,
        record_rates: bool = True,
        rate_capacity: int = DEFAULT_RATE_CAPACITY,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.link_timeline = LinkTimeline() if sample_links else None
        self.event_log = event_log
        self.log_link_samples = log_link_samples
        self.rate_recorder = (
            FlowRateRecorder(rate_capacity) if record_rates else None
        )
        #: group id -> [(finish time, tardiness)] in delivery order.
        self.tardiness_series: Dict[str, List[Tuple[float, float]]] = {}
        #: (job id, task id) -> the completed Task (deps, device, flows);
        #: feeds critical-path extraction without re-walking the DAGs.
        self.task_meta: Dict[Tuple[Optional[str], str], object] = {}
        self.job_arrivals: Dict[str, float] = {}
        self.job_completions: Dict[str, float] = {}
        #: flow id -> ((link key, capacity), ...) pinned at admission;
        #: kept only until the flow_injected event consumes it.
        self._pending_paths: Dict[int, Tuple[Tuple[str, float], ...]] = {}
        #: Applied fault records, in firing order (mirrors obs "fault"
        #: events; feeds the diagnosis layer's fault section).
        self.fault_events: List[Dict] = []
        #: ResilientScheduler degradation records, in occurrence order.
        self.scheduler_fallbacks: List[Dict] = []
        #: Control-plane runtime records (quarantine, failover, degraded
        #: mode, ...), in emission order.
        self.control_events: List[Dict] = []
        #: flow id -> number of fault-driven path migrations.
        self.reroutes: Dict[int, int] = {}
        self.rounds = 0

    # -- engine-facing hooks -------------------------------------------

    def on_flow_injected(self, flow, now: float) -> None:
        self.registry.counter("flows_injected_total").inc()
        if self.event_log is not None:
            path = self._pending_paths.pop(flow.flow_id, None)
            if path is None and self.rate_recorder is not None:
                path = self.rate_recorder.paths.get(flow.flow_id)
            self.event_log.append(
                "flow_injected",
                now,
                flow_id=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                size=flow.size,
                group=flow.group_id,
                index=flow.index_in_group,
                job=flow.job_id,
                tag=flow.tag,
                path=None if path is None else [list(hop) for hop in path],
            )

    def on_flow_finished(self, record, now: float) -> None:
        flow = record.flow
        self.registry.counter("flows_delivered_total").inc()
        self.registry.counter("flow_bytes_delivered_total").inc(flow.size)
        self.registry.histogram("flow_completion_seconds").observe(
            record.completion_time
        )
        tardiness = record.tardiness
        if tardiness is not None and flow.group_id is not None:
            self.tardiness_series.setdefault(flow.group_id, []).append(
                (record.finish, tardiness)
            )
            self.registry.histogram(
                "flow_tardiness_seconds", group=flow.group_id
            ).observe(tardiness)
        if self.event_log is not None:
            self.event_log.append(
                "flow_finished",
                now,
                flow_id=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                size=flow.size,
                group=flow.group_id,
                index=flow.index_in_group,
                job=flow.job_id,
                tag=flow.tag,
                start=record.start,
                finish=record.finish,
                ideal_finish=record.ideal_finish,
                tardiness=tardiness,
            )
        if self.rate_recorder is not None:
            segments = self.rate_recorder.on_finished(
                flow.flow_id, record.finish
            )
            if self.event_log is not None and segments is not None:
                self.event_log.append(
                    "flow_rates",
                    now,
                    flow_id=flow.flow_id,
                    segments=[list(s) for s in segments],
                )

    def on_compute_span(self, span) -> None:
        self.registry.counter("compute_spans_total", device=span.device).inc()
        self.registry.counter("compute_busy_seconds_total").inc(span.duration)

    def on_reschedule(
        self, now: float, cause: str, active_flows: int
    ) -> None:
        # Named distinctly from the ProfiledScheduler's
        # "scheduler_invocations_total" so a shared registry never
        # double-counts when both layers observe the same engine.
        self.registry.counter("engine_reschedules_total", cause=cause).inc()
        self.registry.gauge("active_flows").set(active_flows)
        self.registry.histogram(
            "scheduler_active_flows",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
        ).observe(active_flows)
        if self.event_log is not None:
            self.event_log.append(
                "reschedule", now, cause=cause, active_flows=active_flows
            )

    def on_round(self, now: float, n_events: int, n_finished_flows: int) -> None:
        self.rounds += 1
        self.registry.counter("engine_rounds_total").inc()
        if n_events:
            self.registry.counter("engine_events_total").inc(n_events)
        if n_finished_flows:
            self.registry.counter("engine_flow_completions_total").inc(
                n_finished_flows
            )

    def on_job_arrival(self, job_id: str, now: float) -> None:
        self.registry.counter("jobs_arrived_total").inc()
        self.job_arrivals[job_id] = now
        if self.event_log is not None:
            self.event_log.append("job_arrival", now, job=job_id)

    def on_job_completed(self, job_id: str, now: float) -> None:
        self.registry.counter("jobs_completed_total").inc()
        self.job_completions[job_id] = now
        if self.event_log is not None:
            self.event_log.append("job_completed", now, job=job_id)

    def on_task_complete(self, task, now: float) -> None:
        """Any task (compute/comm/barrier) completed in a job DAG.

        The recorded dependency edges and flow memberships make the
        events log a self-contained artifact for critical-path
        extraction (the trace's TaskEvent carries neither).
        """
        self.registry.counter(
            "tasks_completed_total", kind=task.kind.value
        ).inc()
        self.task_meta[(task.job_id, task.task_id)] = task
        if self.event_log is not None:
            self.event_log.append(
                "task_finished",
                now,
                task=task.task_id,
                kind=task.kind.value,
                job=task.job_id,
                device=task.device,
                duration=task.duration,
                deps=list(task.deps),
                flow_ids=[flow.flow_id for flow in task.flows],
            )

    def on_fault(self, record: Dict, now: float) -> None:
        """A :class:`repro.faults.FaultInjector` event fired."""
        self.registry.counter(
            "faults_injected_total", action=record.get("action", "unknown")
        ).inc()
        self.fault_events.append(dict(record))
        if self.event_log is not None:
            self.event_log.append("fault", now, **record)

    def on_scheduler_fallback(self, record: Dict, now: float) -> None:
        """A ResilientScheduler degraded one invocation to its fallback."""
        self.registry.counter(
            "scheduler_fallbacks_total", kind=record.get("kind", "unknown")
        ).inc()
        self.scheduler_fallbacks.append(dict(record))
        if self.event_log is not None:
            self.event_log.append("scheduler_fallback", now, **record)

    def on_control_event(self, record: Dict, now: float) -> None:
        """The control-plane runtime logged a lifecycle event.

        ``record["kind"]`` names it (``quarantine``, ``readopt``,
        ``resync``, ``failover``, ``degraded_enter``, ``degraded_exit``,
        ``checkpoint``, ``registration_deferred``); the rest of the
        record carries event-specific fields.
        """
        self.registry.counter(
            "control_events_total", kind=record.get("kind", "unknown")
        ).inc()
        self.control_events.append(dict(record))
        if self.event_log is not None:
            self.event_log.append("control", now, **record)

    # -- network-facing hooks (NetworkModel.observer) -------------------

    def on_flow_admitted(self, flow, path, now: float) -> None:
        """The network pinned ``path`` for a freshly injected flow."""
        if self.rate_recorder is None and self.event_log is None:
            return
        key_path = tuple(
            (LinkTimeline.link_key(link.src, link.dst), link.capacity)
            for link in path
        )
        if self.rate_recorder is not None:
            self.rate_recorder.on_admitted(flow.flow_id, key_path, now)
        elif self.event_log is not None:
            self._pending_paths[flow.flow_id] = key_path

    def on_rates_applied(self, now: float, changed) -> None:
        """``changed`` is the network's (flow id, state, new rate) list."""
        recorder = self.rate_recorder
        if recorder is not None:
            for flow_id, _state, rate in changed:
                recorder.on_rate_change(flow_id, now, rate)

    def on_flow_rerouted(self, flow_id: int, old_path, new_path, now: float) -> None:
        """A fault migrated an in-flight flow onto a new path."""
        self.registry.counter("flows_rerouted_total").inc()
        self.reroutes[flow_id] = self.reroutes.get(flow_id, 0) + 1
        key_path = tuple(
            (LinkTimeline.link_key(link.src, link.dst), link.capacity)
            for link in new_path
        )
        if self.rate_recorder is not None:
            # The migrated flow restarts at rate 0 on the new path; close
            # its open span so no old-path rate bleeds past the fault.
            self.rate_recorder.on_rate_change(flow_id, now, 0.0)
            if flow_id in self.rate_recorder.paths:
                self.rate_recorder.paths[flow_id] = key_path
        elif self.event_log is not None and flow_id in self._pending_paths:
            self._pending_paths[flow_id] = key_path
        if self.event_log is not None:
            self.event_log.append(
                "flow_rerouted",
                now,
                flow_id=flow_id,
                old_path=[
                    LinkTimeline.link_key(link.src, link.dst)
                    for link in old_path
                ],
                new_path=[
                    LinkTimeline.link_key(link.src, link.dst)
                    for link in new_path
                ],
            )

    def on_network_advance(self, now: float, dt: float, usage: Mapping) -> None:
        """``usage`` maps :class:`~repro.topology.graph.Link` -> rate."""
        if self.link_timeline is not None:
            self.link_timeline.record(now, dt, usage)
        if self.event_log is not None and self.log_link_samples and usage:
            # ``caps`` mirrors the live capacity per sampled link so
            # offline consumers (the watch loop's degrade telemetry) can
            # recover absolute rates and spot capacity drops; utilization
            # alone is blind to a link renegotiating to a lower speed.
            links: Dict[str, float] = {}
            caps: Dict[str, float] = {}
            for link, rate in usage.items():
                key = LinkTimeline.link_key(link.src, link.dst)
                capacity = link.capacity
                links[key] = rate / capacity if capacity > 0 else 0.0
                caps[key] = capacity
            self.event_log.append(
                "link_sample", now, dt=dt, links=links, caps=caps
            )

    # -- derived views --------------------------------------------------

    def link_stats(self, horizon: Optional[float] = None) -> Dict[str, Dict[str, float]]:
        if self.link_timeline is None:
            return {}
        return self.link_timeline.stats(horizon)

    def reschedules_by_cause(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for labels in self.registry.labels_of("engine_reschedules_total"):
            cause = labels.get("cause", "unknown")
            counts[cause] = counts.get(cause, 0) + int(
                self.registry.counter_value(
                    "engine_reschedules_total", cause=cause
                )
            )
        return dict(sorted(counts.items()))

    def worst_tardiness_by_group(self) -> Dict[str, float]:
        return {
            group: max(t for _, t in series)
            for group, series in sorted(self.tardiness_series.items())
            if series
        }
