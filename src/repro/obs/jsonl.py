"""Structured JSONL event logging and offline summarisation.

Every instrumented run can stream its lifecycle events -- flow
injections/deliveries, scheduler invocations, network advances -- to an
append-only log, one JSON object per line. The format is deliberately
flat ({"ev": kind, "t": sim-time, ...fields}) so logs grep well and load
into pandas/jq without a schema. ``summarize_events`` recovers the
headline numbers from a saved log, powering ``python -m repro obs``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional


class JsonlEventLog:
    """An in-memory structured event log, written out as JSONL.

    Events accumulate as plain dicts; ``write`` (or ``dump``) serialises
    one object per line. When ``capacity`` is set the log keeps only the
    most recent events (a ring), bounding memory on very long runs.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: List[Dict] = []
        #: Events appended over the lifetime (>= len(events) with a ring).
        self.total_appended = 0

    def append(self, ev: str, t: float, **fields) -> None:
        record = {"ev": ev, "t": t}
        record.update(fields)
        self.events.append(record)
        self.total_appended += 1
        if self.capacity is not None and len(self.events) > self.capacity:
            del self.events[: len(self.events) - self.capacity]

    def __len__(self) -> int:
        return len(self.events)

    def dump(self) -> str:
        return "".join(
            json.dumps(event, sort_keys=True, default=str) + "\n"
            for event in self.events
        )

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.dump())


def read_jsonl(path: str) -> List[Dict]:
    """Load a JSONL event log; blank lines are skipped."""
    events = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})")
    return events


def percentile(values: List[float], q: float) -> float:
    """Exact nearest-rank percentile of ``values`` (0 <= q <= 1)."""
    if not values:
        raise ValueError("percentile of empty list")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


def summarize_events(events: Iterable[Dict]) -> Dict:
    """Headline statistics of a JSONL event stream.

    Returns counts per event kind, the simulated time span, scheduler
    invocations by trigger cause (plus wall-clock latency percentiles
    when ``scheduler_invocation`` events are present), flow delivery/
    tardiness aggregates, and per-link peak utilization when
    ``link_sample`` events are present.
    """
    by_kind: Dict[str, int] = {}
    causes: Dict[str, int] = {}
    t_min = float("inf")
    t_max = float("-inf")
    flows_delivered = 0
    tardiness: List[float] = []
    latencies: List[float] = []
    link_peak: Dict[str, float] = {}
    for event in events:
        kind = event.get("ev", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            t_min = min(t_min, t)
            t_max = max(t_max, t)
        if kind == "reschedule":
            cause = event.get("cause", "unknown")
            causes[cause] = causes.get(cause, 0) + 1
        elif kind == "scheduler_invocation":
            value = event.get("wall_clock")
            if isinstance(value, (int, float)):
                latencies.append(value)
        elif kind == "flow_finished":
            flows_delivered += 1
            value = event.get("tardiness")
            if isinstance(value, (int, float)):
                tardiness.append(value)
        elif kind == "link_sample":
            for link, utilization in (event.get("links") or {}).items():
                link_peak[link] = max(link_peak.get(link, 0.0), utilization)
    summary: Dict = {
        "events": sum(by_kind.values()),
        "by_kind": dict(sorted(by_kind.items())),
        "time_span": None
        if t_min == float("inf")
        else {"start": t_min, "end": t_max},
        "scheduler": {
            "invocations": sum(causes.values()),
            "by_cause": dict(sorted(causes.items())),
        },
        "flows": {"delivered": flows_delivered},
    }
    if latencies:
        summary["scheduler"]["latency_seconds"] = {
            "count": len(latencies),
            "mean": sum(latencies) / len(latencies),
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
            "max": max(latencies),
        }
    if tardiness:
        summary["flows"]["worst_tardiness"] = max(tardiness)
        summary["flows"]["mean_tardiness"] = sum(tardiness) / len(tardiness)
    if link_peak:
        summary["links"] = {
            "count": len(link_peak),
            "peak_utilization": dict(
                sorted(link_peak.items(), key=lambda kv: -kv[1])
            ),
        }
    return summary


def summarize_jsonl(path: str) -> Dict:
    return summarize_events(read_jsonl(path))
