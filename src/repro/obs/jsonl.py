"""Structured JSONL event logging and offline summarisation.

Every instrumented run can stream its lifecycle events -- flow
injections/deliveries, scheduler invocations, network advances -- to an
append-only log, one JSON object per line. The format is deliberately
flat ({"ev": kind, "t": sim-time, ...fields}) so logs grep well and load
into pandas/jq without a schema. ``summarize_events`` recovers the
headline numbers from a saved log, powering ``python -m repro obs``.

The log is also the *live* feed for the online watch loop
(:mod:`repro.obs.watch`): subscribers registered with
:meth:`JsonlEventLog.subscribe` see every event the moment it is
appended, before any capacity eviction, so streaming detectors never
miss an event even when the on-disk ring is bounded.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, Iterator, List, Optional


class JsonlEventLog:
    """An in-memory structured event log, written out as JSONL.

    Events accumulate as plain dicts; ``write`` (or ``dump``) serialises
    one object per line. When ``capacity`` is set the log keeps only the
    most recent events (a ring), bounding memory on very long runs.
    ``stream_to`` additionally spills every record to a JSONL file as it
    is appended (buffered, flushed every ``flush_every`` records and on
    :meth:`close`), so ring eviction never loses the on-disk history --
    the combination gives O(capacity) memory with a complete log.

    Coalescing policy under eviction
    --------------------------------
    When the capacity bound evicts events, the dropped records are
    *coalesced* rather than silently discarded: per-kind counts and the
    evicted time span accumulate in :attr:`evicted_by_kind` /
    :attr:`evicted_span`, and :meth:`dump` prepends one synthetic
    ``log_truncated`` event describing what the ring dropped. Consumers
    replaying a truncated log (``repro obs`` / ``repro watch``) can
    therefore tell a short run from a clipped one, and windowed
    statistics know their left edge is soft. Live subscribers are
    notified on append -- strictly before eviction -- so the online
    watch loop sees the complete stream regardless of ``capacity``.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        stream_to: Optional[str] = None,
        flush_every: int = 512,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if flush_every <= 0:
            raise ValueError(f"flush_every must be positive, got {flush_every}")
        self.capacity = capacity
        self.events: List[Dict] = []
        #: Events appended over the lifetime (>= len(events) with a ring).
        self.total_appended = 0
        #: Per-kind counts of ring-evicted events (coalesced history).
        self.evicted_by_kind: Dict[str, int] = {}
        #: [first, last] event time of everything evicted, or None.
        self.evicted_span: Optional[List[float]] = None
        self._subscribers: List[Callable[[Dict], None]] = []
        #: Streaming spill: every record is serialised to this path the
        #: moment it is appended, so a ring-bounded log still persists
        #: the complete stream with O(capacity) memory. Buffered writes
        #: are flushed every ``flush_every`` records and on :meth:`close`.
        self.stream_path = stream_to
        self._flush_every = flush_every
        self._unflushed = 0
        self._stream = open(stream_to, "w") if stream_to else None

    def subscribe(self, callback: Callable[[Dict], None]) -> None:
        """Register a live consumer; called with every appended record.

        Callbacks fire synchronously on :meth:`append`, before capacity
        eviction, and must treat the record as read-only.
        """
        self._subscribers.append(callback)

    def append(self, ev: str, t: float, **fields) -> None:
        record = {"ev": ev, "t": t}
        record.update(fields)
        self.events.append(record)
        self.total_appended += 1
        if self._stream is not None:
            self._stream.write(
                json.dumps(record, sort_keys=True, default=str) + "\n"
            )
            self._unflushed += 1
            if self._unflushed >= self._flush_every:
                self._stream.flush()
                self._unflushed = 0
        for callback in self._subscribers:
            callback(record)
        if self.capacity is not None and len(self.events) > self.capacity:
            for victim in self.events[: len(self.events) - self.capacity]:
                kind = victim.get("ev", "?")
                self.evicted_by_kind[kind] = self.evicted_by_kind.get(kind, 0) + 1
                vt = victim.get("t")
                if isinstance(vt, (int, float)):
                    if self.evicted_span is None:
                        self.evicted_span = [vt, vt]
                    else:
                        self.evicted_span[0] = min(self.evicted_span[0], vt)
                        self.evicted_span[1] = max(self.evicted_span[1], vt)
            del self.events[: len(self.events) - self.capacity]

    def __len__(self) -> int:
        return len(self.events)

    def _truncation_event(self) -> Optional[Dict]:
        if not self.evicted_by_kind:
            return None
        record: Dict = {
            "ev": "log_truncated",
            "t": self.evicted_span[1] if self.evicted_span else 0.0,
            "evicted": sum(self.evicted_by_kind.values()),
            "by_kind": dict(sorted(self.evicted_by_kind.items())),
        }
        if self.evicted_span is not None:
            record["span"] = list(self.evicted_span)
        return record

    def dump(self) -> str:
        head = self._truncation_event()
        prefix = (
            json.dumps(head, sort_keys=True, default=str) + "\n" if head else ""
        )
        return prefix + "".join(
            json.dumps(event, sort_keys=True, default=str) + "\n"
            for event in self.events
        )

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.dump())

    def close(self) -> None:
        """Flush and close the streaming spill file (idempotent)."""
        if self._stream is not None:
            self._stream.flush()
            self._stream.close()
            self._stream = None
            self._unflushed = 0

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_jsonl(path: str) -> Iterator[Dict]:
    """Stream a JSONL event log one record at a time.

    The streaming twin of :func:`read_jsonl`: nothing is materialized
    beyond the current line, so replaying multi-gigabyte logs through the
    watch loop costs O(1) memory. Blank lines are skipped; malformed
    lines raise with path:lineno context.
    """
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})")


def read_jsonl(path: str) -> List[Dict]:
    """Load a JSONL event log fully into memory (see :func:`iter_jsonl`)."""
    return list(iter_jsonl(path))


def percentile(values: Iterable[float], q: float) -> float:
    """Exact nearest-rank percentile of ``values`` (0 <= q <= 1).

    Accepts any iterable (it is materialized once); raises ``ValueError``
    on an empty input or an out-of-range ``q`` instead of silently
    clamping, so streaming callers surface bad windows early.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile q must be in [0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty list")
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


def summarize_events(events: Iterable[Dict]) -> Dict:
    """Headline statistics of a JSONL event stream.

    Returns counts per event kind, the simulated time span, scheduler
    invocations by trigger cause (plus wall-clock latency percentiles
    when ``scheduler_invocation`` events are present), flow delivery/
    tardiness aggregates, per-link peak utilization when ``link_sample``
    events are present, and -- whenever the chaos/watch layers left
    traces -- a ``robustness`` section surfacing faults, scheduler
    fallbacks, reroutes (migrated vs stranded flows), and anomalies
    instead of burying them in the raw ``by_kind`` counts.
    """
    by_kind: Dict[str, int] = {}
    causes: Dict[str, int] = {}
    t_min = float("inf")
    t_max = float("-inf")
    flows_delivered = 0
    tardiness: List[float] = []
    latencies: List[float] = []
    link_peak: Dict[str, float] = {}
    fault_actions: Dict[str, int] = {}
    fault_first: Optional[float] = None
    fault_last: Optional[float] = None
    fallback_kinds: Dict[str, int] = {}
    reroutes = 0
    migrated_flows = 0
    stranded_flows = 0
    anomaly_detectors: Dict[str, int] = {}
    control_kinds: Dict[str, int] = {}
    truncated: Optional[Dict] = None
    for event in events:
        kind = event.get("ev", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            t_min = min(t_min, t)
            t_max = max(t_max, t)
        if kind == "reschedule":
            cause = event.get("cause", "unknown")
            causes[cause] = causes.get(cause, 0) + 1
        elif kind == "scheduler_invocation":
            value = event.get("wall_clock")
            if isinstance(value, (int, float)):
                latencies.append(value)
        elif kind == "flow_finished":
            flows_delivered += 1
            value = event.get("tardiness")
            if isinstance(value, (int, float)):
                tardiness.append(value)
        elif kind == "link_sample":
            for link, utilization in (event.get("links") or {}).items():
                link_peak[link] = max(link_peak.get(link, 0.0), utilization)
        elif kind == "fault":
            action = event.get("action", "unknown")
            fault_actions[action] = fault_actions.get(action, 0) + 1
            if isinstance(t, (int, float)):
                fault_first = t if fault_first is None else min(fault_first, t)
                fault_last = t if fault_last is None else max(fault_last, t)
            migrated_flows += len(event.get("migrated") or ())
            stranded_flows += len(event.get("stranded") or ())
        elif kind == "scheduler_fallback":
            fb = event.get("kind", "unknown")
            fallback_kinds[fb] = fallback_kinds.get(fb, 0) + 1
        elif kind == "flow_rerouted":
            reroutes += 1
        elif kind == "anomaly":
            detector = event.get("detector", "unknown")
            anomaly_detectors[detector] = anomaly_detectors.get(detector, 0) + 1
        elif kind == "control":
            ck = event.get("kind", "unknown")
            control_kinds[ck] = control_kinds.get(ck, 0) + 1
        elif kind == "log_truncated":
            truncated = {
                "evicted": event.get("evicted", 0),
                "by_kind": event.get("by_kind", {}),
                "span": event.get("span"),
            }
    summary: Dict = {
        "events": sum(by_kind.values()),
        "by_kind": dict(sorted(by_kind.items())),
        "time_span": None
        if t_min == float("inf")
        else {"start": t_min, "end": t_max},
        "scheduler": {
            "invocations": sum(causes.values()),
            "by_cause": dict(sorted(causes.items())),
        },
        "flows": {"delivered": flows_delivered},
    }
    if latencies:
        summary["scheduler"]["latency_seconds"] = {
            "count": len(latencies),
            "mean": sum(latencies) / len(latencies),
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
            "max": max(latencies),
        }
    if tardiness:
        summary["flows"]["worst_tardiness"] = max(tardiness)
        summary["flows"]["mean_tardiness"] = sum(tardiness) / len(tardiness)
    if link_peak:
        summary["links"] = {
            "count": len(link_peak),
            "peak_utilization": dict(
                sorted(link_peak.items(), key=lambda kv: -kv[1])
            ),
        }
    if fault_actions or fallback_kinds or reroutes or anomaly_detectors:
        robustness: Dict = {
            "faults": sum(fault_actions.values()),
            "fault_actions": dict(sorted(fault_actions.items())),
            "scheduler_fallbacks": sum(fallback_kinds.values()),
            "fallback_kinds": dict(sorted(fallback_kinds.items())),
            "flow_reroutes": reroutes,
            "migrated_flows": migrated_flows,
            "stranded_flows": stranded_flows,
        }
        if fault_first is not None:
            robustness["first_fault_time"] = fault_first
            robustness["last_fault_time"] = fault_last
        if anomaly_detectors:
            robustness["anomalies"] = sum(anomaly_detectors.values())
            robustness["anomaly_detectors"] = dict(
                sorted(anomaly_detectors.items())
            )
        summary["robustness"] = robustness
    if control_kinds:
        summary["control_plane"] = {
            "events": sum(control_kinds.values()),
            "event_kinds": dict(sorted(control_kinds.items())),
        }
    if truncated is not None:
        summary["truncated"] = truncated
    return summary


def summarize_jsonl(path: str) -> Dict:
    return summarize_events(iter_jsonl(path))
