"""Scheduler-invocation profiling middleware.

The paper's Section 5 concern is coordinator *cost*: algorithms "rerun
per EchelonFlow arrival/departure or per scheduling interval", so the
scalability question is how often the coordinator runs, how long each
run takes, and how much the answer actually changes between runs.

:class:`ProfiledScheduler` wraps any :class:`~repro.scheduling.base.Scheduler`
without touching its algorithm: each ``allocate`` call is timed
(wall-clock), sized (flows considered), attributed to its trigger cause
(propagated by the engine through ``SchedulerView.trigger_cause``), and
diffed against the previous allocation to measure rate-vector churn --
the fraction of the rate vector that changed, which bounds how much
agent reconfiguration the decision implies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from ..scheduling.base import Scheduler, SchedulerView
from .registry import MetricsRegistry

#: Rates within this relative tolerance count as unchanged.
_CHURN_REL_TOL = 1e-9


@dataclass(frozen=True)
class InvocationRecord:
    """One profiled ``allocate`` call."""

    at: float
    cause: str
    wall_clock: float
    flows_considered: int
    #: Flows whose rate changed (incl. newly added ones at nonzero rate).
    rates_changed: int
    #: rates_changed / max(1, flows in the new allocation).
    churn: float


def rate_vector_churn(
    previous: Mapping[int, float], current: Mapping[int, float]
) -> int:
    """Count entries of ``current`` that differ from ``previous``.

    A flow absent from ``previous`` counts as changed only if its new
    rate is nonzero (an idle newcomer needs no agent action); a flow that
    vanished is the departure that triggered the rerun and is not
    re-counted here.
    """
    changed = 0
    for flow_id, rate in current.items():
        old = previous.get(flow_id)
        if old is None:
            if rate > 0.0:
                changed += 1
        elif abs(rate - old) > _CHURN_REL_TOL * max(1.0, abs(old), abs(rate)):
            changed += 1
    return changed


class ProfiledScheduler(Scheduler):
    """Transparent profiling wrapper around another scheduler."""

    name = "profiled"

    def __init__(
        self,
        inner: Scheduler,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
        keep_records: bool = True,
        event_log=None,
    ) -> None:
        """``event_log``: an optional :class:`~repro.obs.jsonl.JsonlEventLog`
        receiving one ``scheduler_invocation`` event per ``allocate`` call
        (wall-clock, cause, flows, churn), so saved logs can answer the
        latency-percentile question offline (``repro obs``)."""
        self.inner = inner
        self.registry = registry if registry is not None else MetricsRegistry()
        self.clock = clock
        self.keep_records = keep_records
        self.event_log = event_log
        self.records: List[InvocationRecord] = []
        self.invocations = 0
        self.total_wall_clock = 0.0
        self._last_rates: Dict[int, float] = {}
        self.name = f"profiled({inner.name})"

    @property
    def work_conserving(self) -> bool:
        """Profiling is transparent: the inner contract passes through."""
        return getattr(self.inner, "work_conserving", False)

    def fork(self) -> "ProfiledScheduler":
        """Fork for a forked engine: the inner scheduler forks, telemetry
        detaches (fresh registry, no event log -- a fork's profile is its
        own) and the churn baseline carries over so the first post-fork
        invocation measures churn against the same previous allocation an
        uninterrupted run would."""
        twin = ProfiledScheduler(
            self.inner.fork() if hasattr(self.inner, "fork") else self.inner,
            registry=None,
            clock=self.clock,
            keep_records=self.keep_records,
            event_log=None,
        )
        twin._last_rates = dict(self._last_rates)
        return twin

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        cause = getattr(view, "trigger_cause", None) or "unknown"
        flows = view.network.active_count
        t0 = self.clock()
        rates = self.inner.allocate(view)
        elapsed = max(0.0, self.clock() - t0)

        self.invocations += 1
        self.total_wall_clock += elapsed
        changed = rate_vector_churn(self._last_rates, rates)
        churn = changed / max(1, len(rates))
        self._last_rates = dict(rates)

        self.registry.counter("scheduler_invocations_total", cause=cause).inc()
        self.registry.histogram("scheduler_wall_clock_seconds").observe(elapsed)
        self.registry.histogram(
            "scheduler_flows_considered",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
        ).observe(flows)
        self.registry.histogram(
            "scheduler_rate_churn",
            buckets=(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
        ).observe(churn)
        if self.keep_records:
            self.records.append(
                InvocationRecord(
                    at=view.now,
                    cause=cause,
                    wall_clock=elapsed,
                    flows_considered=flows,
                    rates_changed=changed,
                    churn=churn,
                )
            )
        if self.event_log is not None:
            self.event_log.append(
                "scheduler_invocation",
                view.now,
                cause=cause,
                wall_clock=elapsed,
                flows=flows,
                churn=churn,
            )
        return rates

    # -- derived views --------------------------------------------------

    def by_cause(self) -> Dict[str, int]:
        """Invocation counts keyed by trigger cause."""
        counts: Dict[str, int] = {}
        for labels in self.registry.labels_of("scheduler_invocations_total"):
            cause = labels.get("cause", "unknown")
            counts[cause] = counts.get(cause, 0) + int(
                self.registry.counter_value(
                    "scheduler_invocations_total", cause=cause
                )
            )
        return dict(sorted(counts.items()))

    def mean_wall_clock(self) -> float:
        return self.total_wall_clock / self.invocations if self.invocations else 0.0

    def mean_churn(self) -> float:
        hist = self.registry.histogram(
            "scheduler_rate_churn",
            buckets=(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
        )
        return hist.mean

    def summary(self) -> Dict:
        """Plain-data profile: the scheduler section of a metrics report."""
        return {
            "scheduler": self.inner.name,
            "invocations": self.invocations,
            "by_cause": self.by_cause(),
            "wall_clock_seconds": self.registry.histogram(
                "scheduler_wall_clock_seconds"
            ).summary(),
            "flows_considered": self.registry.histogram(
                "scheduler_flows_considered",
                buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
            ).summary(),
            "rate_churn": self.registry.histogram(
                "scheduler_rate_churn",
                buckets=(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
            ).summary(),
        }
