"""A zero-dependency labeled metrics registry.

The registry is the accumulation point for everything the observability
layer measures: counters (monotone totals), gauges (last-write-wins
levels), and histograms (bucketed distributions with exact count/sum/
min/max). Metrics are identified by a name plus a set of string labels,
Prometheus-style, so one series family ("scheduler_invocations_total")
fans out per trigger cause without pre-declaring the label values.

Registries snapshot to plain JSON-able dicts and merge pairwise, which
lets sharded or replicated runs combine their measurements into one
report (counters add, gauges take the other's latest, histograms sum
bucket-wise).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds: a log-ish ladder wide enough for
#: both sub-millisecond scheduler wall-clocks and multi-second tardiness.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotone total. ``inc`` with a negative amount is an error."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A last-write-wins level (active flows, queue depth, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A bucketed distribution with exact count/sum/min/max.

    Buckets are cumulative-style upper bounds (``le``); an implicit +inf
    bucket catches the overflow. ``quantile`` interpolates within the
    winning bucket, which is exact enough for reporting (the raw samples
    are deliberately not retained, keeping memory O(buckets)).
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +inf overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile from the buckets (exact min/max at 0/1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if seen + n >= target:
                lo = self.bounds[i - 1] if i > 0 else self.min
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi < lo:
                    return self.max
                return lo + (hi - lo) * (target - seen) / n
            seen += n
        return self.max

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Labeled counters/gauges/histograms with snapshot and merge."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- series accessors (create on first touch) ----------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter()
        return series

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge()
        return series

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: str
    ) -> Histogram:
        key = (name, _label_key(labels))
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = Histogram(buckets)
        return series

    # -- reading --------------------------------------------------------

    def counter_value(self, name: str, **labels: str) -> float:
        return self._counters[(name, _label_key(labels))].value

    def counter_total(self, name: str) -> float:
        """Sum of a counter family across every label combination."""
        return sum(
            c.value for (n, _), c in self._counters.items() if n == name
        )

    def labels_of(self, name: str) -> List[Dict[str, str]]:
        """Every label set under which ``name`` has been recorded."""
        out = []
        for table in (self._counters, self._gauges, self._histograms):
            for (n, labels) in table:
                if n == name:
                    out.append(dict(labels))
        return out

    def snapshot(self) -> Dict:
        """Plain-data view of every series (json.dumps-able)."""

        def rows(table, render):
            by_name: Dict[str, List[Dict]] = {}
            for (name, labels), series in sorted(table.items()):
                by_name.setdefault(name, []).append(
                    {"labels": dict(labels), **render(series)}
                )
            return by_name

        return {
            "counters": rows(self._counters, lambda c: {"value": c.value}),
            "gauges": rows(self._gauges, lambda g: {"value": g.value}),
            "histograms": rows(self._histograms, lambda h: h.summary()),
        }

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place and return self.

        Counters add; gauges adopt the other's value (last write wins);
        histograms require identical bucket bounds and sum bucket-wise.
        """
        for key, counter in other._counters.items():
            self._counters.setdefault(key, Counter()).inc(counter.value)
        for key, gauge in other._gauges.items():
            self._gauges.setdefault(key, Gauge()).set(gauge.value)
        for key, hist in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = Histogram(hist.bounds)
            if mine.bounds != hist.bounds:
                raise ValueError(
                    f"cannot merge histogram {key[0]!r}: bucket bounds differ"
                )
            mine.count += hist.count
            mine.total += hist.total
            mine.min = min(mine.min, hist.min)
            mine.max = max(mine.max, hist.max)
            for i, n in enumerate(hist.bucket_counts):
                mine.bucket_counts[i] += n
        return self
