"""The metrics-summary report: one JSON document per observed run.

Collects everything the acceptance bar asks for -- scheduler invocation
counts by trigger cause, per-link peak/mean utilization, per-EchelonFlow
tardiness summaries -- plus flow/compute aggregates and the raw registry
snapshot, into a single json.dumps-able dict. The CLI writes it to
``--metrics-out``; benchmarks diff it against the committed baselines in
``benchmarks/results/``.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..simulator.trace import SimulationTrace
from .instrumentation import Instrumentation
from .profiling import ProfiledScheduler

#: Bumped when the report layout changes incompatibly.
REPORT_VERSION = 1


def _tardiness_summaries(trace: SimulationTrace) -> Dict[str, Dict]:
    """Per-EchelonFlow tardiness stats straight from the flow records."""
    by_group: Dict[str, Dict] = {}
    for record in trace.flow_records:
        group = record.flow.group_id
        if group is None or record.tardiness is None:
            continue
        entry = by_group.setdefault(
            group,
            {
                "flows": 0,
                "worst_tardiness": float("-inf"),
                "sum_tardiness": 0.0,
                "last_finish": 0.0,
            },
        )
        entry["flows"] += 1
        entry["worst_tardiness"] = max(entry["worst_tardiness"], record.tardiness)
        entry["sum_tardiness"] += record.tardiness
        entry["last_finish"] = max(entry["last_finish"], record.finish)
    for entry in by_group.values():
        entry["mean_tardiness"] = entry["sum_tardiness"] / entry["flows"]
    return dict(sorted(by_group.items()))


def _flow_aggregates(trace: SimulationTrace) -> Dict:
    records = trace.flow_records
    if not records:
        return {"delivered": 0}
    completion_times = sorted(r.completion_time for r in records)
    n = len(completion_times)
    return {
        "delivered": n,
        "bytes": sum(r.flow.size for r in records),
        "mean_completion_seconds": sum(completion_times) / n,
        "p99_completion_seconds": completion_times[
            min(n - 1, int(0.99 * n))
        ],
    }


def _robustness_section(instrumentation: Instrumentation) -> Dict:
    """Fault/fallback/reroute aggregates (mirrors the JSONL summarizer's
    ``robustness`` section so report and log summaries agree)."""
    faults = instrumentation.fault_events
    fallbacks = instrumentation.scheduler_fallbacks
    reroutes = instrumentation.reroutes
    if not faults and not fallbacks and not reroutes:
        return {}
    actions: Dict[str, int] = {}
    migrated = stranded = 0
    times = []
    for record in faults:
        action = record.get("action", "unknown")
        actions[action] = actions.get(action, 0) + 1
        # Link-event records carry the migrated/stranded flow-id lists.
        migrated += len(record.get("migrated") or ())
        stranded += len(record.get("stranded") or ())
        t = record.get("time")
        if isinstance(t, (int, float)):
            times.append(t)
    kinds: Dict[str, int] = {}
    for record in fallbacks:
        kind = record.get("kind", "unknown")
        kinds[kind] = kinds.get(kind, 0) + 1
    section: Dict = {
        "faults": len(faults),
        "fault_actions": dict(sorted(actions.items())),
        "scheduler_fallbacks": len(fallbacks),
        "fallback_kinds": dict(sorted(kinds.items())),
        "flow_reroutes": sum(reroutes.values()),
        "migrated_flows": migrated,
        "stranded_flows": stranded,
    }
    if times:
        section["first_fault_time"] = min(times)
        section["last_fault_time"] = max(times)
    return section


def _control_plane_section(instrumentation: Instrumentation) -> Dict:
    """Control-plane runtime aggregates (mirrors the JSONL summarizer's
    ``control_plane`` section so report and log summaries agree)."""
    events = getattr(instrumentation, "control_events", None) or []
    if not events:
        return {}
    kinds: Dict[str, int] = {}
    for record in events:
        kind = record.get("kind", "unknown")
        kinds[kind] = kinds.get(kind, 0) + 1
    return {
        "events": len(events),
        "event_kinds": dict(sorted(kinds.items())),
    }


def build_metrics_report(
    trace: SimulationTrace,
    instrumentation: Optional[Instrumentation] = None,
    profiler: Optional[ProfiledScheduler] = None,
    scheduler_invocations: Optional[int] = None,
    extra: Optional[Dict] = None,
    sanitizer=None,
) -> Dict:
    """Assemble the metrics-summary document for one run.

    Every section degrades gracefully: without a profiler the scheduler
    section falls back to the engine's raw invocation count; without
    instrumentation the link section is empty.  ``sanitizer`` is the
    engine's :class:`~repro.check.sanitizer.Sanitizer` (``engine.check``)
    when the run was sanitized; its violation counts land in a
    ``sanitizer`` section so reports from checked runs are self-describing.
    """
    report: Dict = {
        "version": REPORT_VERSION,
        "run": {
            "end_time": trace.end_time,
            "compute_spans": len(trace.compute_spans),
            "task_events": len(trace.task_events),
        },
        "flows": _flow_aggregates(trace),
        "echelonflows": _tardiness_summaries(trace),
    }
    if profiler is not None:
        report["scheduler"] = profiler.summary()
    else:
        scheduler_section: Dict = {}
        if scheduler_invocations is not None:
            scheduler_section["invocations"] = scheduler_invocations
        if instrumentation is not None:
            by_cause = instrumentation.reschedules_by_cause()
            if by_cause:
                scheduler_section.setdefault(
                    "invocations", sum(by_cause.values())
                )
                scheduler_section["by_cause"] = by_cause
        if scheduler_section:
            report["scheduler"] = scheduler_section
    if instrumentation is not None:
        report["links"] = instrumentation.link_stats(horizon=trace.end_time)
        report["registry"] = instrumentation.registry.snapshot()
        if getattr(instrumentation, "rate_recorder", None) is not None:
            # Deferred import: diagnosis sits on top of this module's layer.
            from .diagnosis import RunArtifacts, attribute_run, blame_matrix

            artifacts = RunArtifacts.from_run(trace, instrumentation)
            attribution = attribute_run(artifacts)
            report["diagnosis"] = {
                "echelonflows": attribution["echelonflows"],
                "blame": blame_matrix(attribution["flows"])["aggregate"],
                "coverage": attribution["coverage"],
            }
        robustness = _robustness_section(instrumentation)
        if robustness:
            report["robustness"] = robustness
        control = _control_plane_section(instrumentation)
        if control:
            report["control_plane"] = control
        if instrumentation.tardiness_series:
            report["live_tardiness"] = {
                group: {
                    "samples": len(series),
                    "worst": max(t for _, t in series),
                    "final": series[-1][1],
                }
                for group, series in sorted(
                    instrumentation.tardiness_series.items()
                )
            }
    if sanitizer is not None:
        report["sanitizer"] = sanitizer.report()
    if extra:
        report.update(extra)
    return report


def write_metrics_report(report: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
