"""Online AIOps watch loop: stream -> detect -> localize -> mitigate.

The watch layer closes the observability loop the diagnosis layer left
open: instead of explaining a run after the fact, it consumes the live
obs event feed *during* the run (or replays a saved JSONL log with
bit-for-bit identical results), raises structured ``anomaly`` events
from streaming detectors, ranks root-cause candidates on each one, and
can mitigate confident localizations on the live engine. The scenario
suite and grader quantify the whole pipeline -- detection latency,
localization accuracy, false positives on clean runs, recovered JCT --
via ``repro aiops score``. See docs/aiops.md.
"""

from .channel import (
    NoiseSpec,
    NoiseSpecError,
    TelemetryChannel,
    parse_noise_spec,
)
from .detectors import (
    Detector,
    JctForecastDetector,
    LinkCapacityDetector,
    StormDetector,
    TardinessDriftDetector,
    WatchConfig,
    default_detectors,
    noise_hardened_config,
)
from .localize import Localizer
from .mitigate import Mitigator
from .scenarios import (
    FAULT_KINDS,
    MULTI_FAULT_KINDS,
    MULTI_PARADIGMS,
    MULTI_SMOKE_PARADIGMS,
    PARADIGM_KEYS,
    SMOKE_KINDS,
    SMOKE_PARADIGMS,
    Scenario,
    build_scenarios,
    make_engine,
    nominal_jct,
)
from .score import (
    AIOPS_SCORE_VERSION,
    aiops_score,
    grade_fault_sets,
    grade_scenario,
    render_score,
    run_scenario,
    scenario_seed,
)
from .stream import LinkHealth, StreamState
from .watch import WatchLoop
from .window import SlidingWindow

__all__ = [
    "AIOPS_SCORE_VERSION",
    "Detector",
    "FAULT_KINDS",
    "JctForecastDetector",
    "LinkCapacityDetector",
    "LinkHealth",
    "Localizer",
    "MULTI_FAULT_KINDS",
    "MULTI_PARADIGMS",
    "MULTI_SMOKE_PARADIGMS",
    "Mitigator",
    "NoiseSpec",
    "NoiseSpecError",
    "PARADIGM_KEYS",
    "SMOKE_KINDS",
    "SMOKE_PARADIGMS",
    "Scenario",
    "SlidingWindow",
    "StormDetector",
    "StreamState",
    "TardinessDriftDetector",
    "TelemetryChannel",
    "WatchConfig",
    "WatchLoop",
    "aiops_score",
    "build_scenarios",
    "default_detectors",
    "grade_fault_sets",
    "grade_scenario",
    "make_engine",
    "noise_hardened_config",
    "nominal_jct",
    "parse_noise_spec",
    "render_score",
    "run_scenario",
    "scenario_seed",
]
