"""Degraded-telemetry channel model for the watch loop.

Real clusters never deliver the pristine event feed the simulator
produces: collectors sample, agents drop batches under load, the
transport delays and reorders, and at-least-once delivery duplicates.
:class:`TelemetryChannel` models that degradation as a deterministic,
seeded transform between a run's :class:`~repro.obs.jsonl.JsonlEventLog`
and the :class:`~repro.obs.watch.watch.WatchLoop`:

* **sampling** -- keep 1-in-``sample`` of the high-volume telemetry
  kinds (``link_sample`` / ``flow_rates``), via a deterministic counter
  (no randomness spent, so sampled-out events never shift the RNG
  stream);
* **drop** -- i.i.d. loss at probability ``drop`` plus *bursty* loss: a
  Gilbert-Elliott-style two-state gate that enters a loss burst with
  probability ``burst`` per eligible event and then drops ``burst_len``
  consecutive eligible events;
* **delay / jitter** -- each delivered event is held for a uniform
  extra latency in ``[0, delay]`` sim-seconds and released when a later
  event's timestamp passes its release point, giving *bounded*
  reordering (an event never arrives more than ``delay`` after its
  origin time);
* **duplication** -- with probability ``dup`` a second copy is
  delivered, with its own independently drawn delay.

Determinism contract: the channel's decisions are a pure function of
``(spec, seed, input event sequence)``. Heartbeats, loop-emitted
records, and ``fault`` markers pass through untouched *and consume no
randomness*, so a live run (where the loop's own anomaly records are
appended mid-stream) and an offline replay of the saved log walk the
identical RNG path -- which is what keeps the PR 6 live == replay
bit-for-bit guarantee intact per ``(spec, seed)``.

Spec grammar (``parse_noise_spec``)::

    sample=4,drop=0.1,burst=0.02x5,delay=0.001,dup=0.01,seed=7

``off`` (or an empty string / ``None``) is the identity channel. Keys
may appear in any order; unknown keys raise :class:`NoiseSpecError`.
``burst=PxL`` sets the burst-entry probability ``P`` and burst length
``L``; ``delay`` is in sim-seconds (scale it to the workload -- the
scenario grid uses a fraction of the heartbeat period).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: Record kinds the channel never degrades and never spends RNG on:
#: loop-emitted records (skipped by the loop anyway), heartbeats (the
#: watch clock -- losing it would decouple live from replay cadence),
#: ground-truth fault markers (not telemetry; detectors never parse
#: them, and the mitigator's restore hook must see every one), and
#: ring-eviction markers.
PASSTHROUGH_KINDS = frozenset(
    {
        "anomaly",
        "localization",
        "mitigation",
        "log_truncated",
        "watch_heartbeat",
        "fault",
    }
)

#: High-volume telemetry kinds the 1-in-k sampler applies to.
SAMPLED_KINDS = frozenset({"link_sample", "flow_rates"})


class NoiseSpecError(ValueError):
    """A noise spec string failed to parse."""


@dataclass(frozen=True)
class NoiseSpec:
    """Declarative description of one degraded-telemetry channel."""

    #: Keep 1-in-``sample`` of ``link_sample``/``flow_rates`` events.
    sample: int = 1
    #: i.i.d. loss probability for every degradable event.
    drop: float = 0.0
    #: Probability of *entering* a loss burst per eligible event.
    burst: float = 0.0
    #: Consecutive eligible events a burst drops once entered.
    burst_len: int = 4
    #: Maximum extra delivery latency (sim-seconds); uniform jitter.
    delay: float = 0.0
    #: Probability an event is delivered twice.
    dup: float = 0.0
    #: RNG seed; same (spec, seed, stream) -> same degraded stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sample < 1:
            raise NoiseSpecError(f"sample must be >= 1, got {self.sample}")
        for name in ("drop", "burst", "dup"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise NoiseSpecError(
                    f"{name} must be a probability in [0, 1], got {value}"
                )
        if self.burst_len < 1:
            raise NoiseSpecError(
                f"burst_len must be >= 1, got {self.burst_len}"
            )
        if self.delay < 0.0:
            raise NoiseSpecError(f"delay must be >= 0, got {self.delay}")

    @property
    def is_noop(self) -> bool:
        """True when the channel is the identity transform."""
        return (
            self.sample == 1
            and self.drop == 0.0
            and self.burst == 0.0
            and self.delay == 0.0
            and self.dup == 0.0
        )

    def describe(self) -> str:
        """Round-trippable spec string (``off`` for the identity)."""
        if self.is_noop:
            return "off"
        parts: List[str] = []
        if self.sample > 1:
            parts.append(f"sample={self.sample}")
        if self.drop:
            parts.append(f"drop={self.drop:g}")
        if self.burst:
            parts.append(f"burst={self.burst:g}x{self.burst_len}")
        if self.delay:
            parts.append(f"delay={self.delay:g}")
        if self.dup:
            parts.append(f"dup={self.dup:g}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


def parse_noise_spec(
    spec: Optional[str], seed: Optional[int] = None
) -> NoiseSpec:
    """Parse ``key=value,...`` into a :class:`NoiseSpec`.

    ``seed`` (when given) overrides any ``seed=`` in the string, so CLI
    ``--seed`` composes with ``--noise`` specs copied from reports.
    """
    fields: Dict[str, object] = {}
    text = (spec or "").strip()
    if text and text != "off":
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise NoiseSpecError(
                    f"bad noise parameter {part!r} (expected key=value)"
                )
            key, _, value = part.partition("=")
            key, value = key.strip(), value.strip()
            try:
                if key == "sample":
                    fields["sample"] = int(value)
                elif key in ("drop", "delay", "dup"):
                    fields[key] = float(value)
                elif key == "burst":
                    prob, sep, length = value.partition("x")
                    fields["burst"] = float(prob)
                    if sep:
                        fields["burst_len"] = int(length)
                elif key == "seed":
                    fields["seed"] = int(value)
                else:
                    raise NoiseSpecError(
                        f"unknown noise key {key!r}; expected sample, drop, "
                        f"burst, delay, dup, or seed"
                    )
            except ValueError as exc:
                if isinstance(exc, NoiseSpecError):
                    raise
                raise NoiseSpecError(
                    f"bad value {value!r} for noise key {key!r}"
                ) from None
    if seed is not None:
        fields["seed"] = seed
    return NoiseSpec(**fields)


class TelemetryChannel:
    """One seeded, deterministic degraded-telemetry channel.

    Sits between an event source and any number of subscribers::

        channel = TelemetryChannel("sample=4,drop=0.1", seed=7)
        channel.subscribe(loop.observe)
        log.subscribe(channel.send)
        ...engine.run()...
        channel.flush()   # release anything still jittering in flight

    The channel is single-use per stream: feeding two runs through one
    instance entangles their RNG draws. Build a fresh channel (same
    spec, same seed) for the replay side of a live/replay comparison.
    """

    def __init__(
        self,
        spec: Optional[object] = None,
        seed: Optional[int] = None,
    ) -> None:
        if isinstance(spec, NoiseSpec):
            base = spec
            if seed is not None:
                base = NoiseSpec(
                    sample=spec.sample,
                    drop=spec.drop,
                    burst=spec.burst,
                    burst_len=spec.burst_len,
                    delay=spec.delay,
                    dup=spec.dup,
                    seed=seed,
                )
            self.spec = base
        else:
            self.spec = parse_noise_spec(spec, seed)
        self._rng = random.Random(self.spec.seed)
        self._subscribers: List[Callable[[Dict], None]] = []
        #: Per-kind counters for the 1-in-k sampler.
        self._sample_counts: Dict[str, int] = {}
        #: Remaining events the current loss burst will eat.
        self._burst_left = 0
        #: Delay buffer: (release time, seq, event).
        self._buffer: List[Tuple[float, int, Dict]] = []
        self._seq = 0
        self._clock = float("-inf")
        self.stats: Dict[str, int] = {
            "seen": 0,
            "delivered": 0,
            "passthrough": 0,
            "sampled_out": 0,
            "dropped": 0,
            "dropped_burst": 0,
            "duplicated": 0,
            "delayed": 0,
        }

    # -- wiring ---------------------------------------------------------

    def subscribe(self, callback: Callable[[Dict], None]) -> None:
        """Register a downstream consumer of the degraded stream."""
        self._subscribers.append(callback)

    def _deliver(self, event: Dict) -> None:
        self.stats["delivered"] += 1
        for callback in self._subscribers:
            callback(event)

    # -- the transform --------------------------------------------------

    def send(self, event: Dict) -> None:
        """Feed one source event through the channel."""
        self.stats["seen"] += 1
        kind = event.get("ev")
        t = event.get("t")
        if isinstance(t, (int, float)):
            self._clock = max(self._clock, t)
        # Every arrival advances the clock and releases due buffered
        # events *first*, so reordering stays bounded by the jitter.
        self._release(self._clock)
        if kind in PASSTHROUGH_KINDS:
            self.stats["passthrough"] += 1
            self._deliver(event)
            return
        spec = self.spec
        if spec.is_noop:
            self._deliver(event)
            return
        if spec.sample > 1 and kind in SAMPLED_KINDS:
            count = self._sample_counts.get(kind, 0)
            self._sample_counts[kind] = count + 1
            if count % spec.sample:
                self.stats["sampled_out"] += 1
                return
        # Loss: the burst gate first (it models the collector falling
        # over, which no amount of per-event luck survives), then the
        # i.i.d. coin. Both are drawn for every eligible event so the
        # RNG stream stays aligned whatever the outcomes are.
        if spec.burst > 0.0:
            entered = self._rng.random() < spec.burst
            if self._burst_left > 0:
                self._burst_left -= 1
                self.stats["dropped_burst"] += 1
                return
            if entered:
                self._burst_left = spec.burst_len - 1
                self.stats["dropped_burst"] += 1
                return
        if spec.drop > 0.0 and self._rng.random() < spec.drop:
            self.stats["dropped"] += 1
            return
        copies = 1
        if spec.dup > 0.0 and self._rng.random() < spec.dup:
            copies = 2
            self.stats["duplicated"] += 1
        for _ in range(copies):
            if spec.delay > 0.0:
                jitter = self._rng.uniform(0.0, spec.delay)
            else:
                jitter = 0.0
            if jitter > 0.0 and isinstance(t, (int, float)):
                self.stats["delayed"] += 1
                heapq.heappush(
                    self._buffer, (t + jitter, self._seq, event)
                )
                self._seq += 1
            else:
                self._deliver(event)

    def _release(self, now: float) -> None:
        buffer = self._buffer
        while buffer and buffer[0][0] <= now:
            _, _, event = heapq.heappop(buffer)
            self._deliver(event)

    def flush(self) -> None:
        """Release everything still in the delay buffer (end of run)."""
        self._release(float("inf"))

    # -- reporting ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Events currently held in the delay buffer."""
        return len(self._buffer)

    def report(self) -> Dict:
        """JSON-able summary of what the channel did to the stream."""
        return {"spec": self.spec.describe(), **self.stats}
