"""Streaming anomaly detectors over the live obs event feed.

Four detector families, each reasoning over bounded sliding windows of
the :class:`~repro.obs.watch.stream.StreamState` and emitting structured
``anomaly`` records (``{"ev": "anomaly", "t", "detector", "onset",
"confidence", "evidence"}``):

* :class:`TardinessDriftDetector` -- live Eq. 1/2 residuals: per-group
  tardiness at group completion, windowed against a calibration
  baseline; a mid-run fault shows up as the window mean breaking away
  from the run's own steady state.
* :class:`LinkCapacityDetector` -- per-link utilization/capacity
  collapse straight from ``link_sample`` telemetry: a sampled link whose
  capacity drops below its observed nominal enters a degraded episode.
* :class:`StormDetector` -- scheduler-fallback and reroute storms:
  ``scheduler_fallback`` / ``flow_rerouted`` bursts that a healthy run
  never produces (mitigation-pinned fallbacks are excluded).
* :class:`JctForecastDetector` -- JCT-forecast divergence: the
  inter-delivery gap watchdog. When flows are outstanding but nothing
  has delivered for far longer than the run's own worst observed gap,
  the JCT forecast is diverging; the anomaly carries the projected JCT.

Thresholds are *self-calibrating* (ratios against the run's own early
samples) rather than absolute, so one configuration covers workloads
whose timescales differ by orders of magnitude. A detector only alarms
after its calibration quota is met, and each alarm opens an episode that
must clear before the same detector re-fires -- both properties the
clean-sweep false-positive tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .stream import StreamState
from .window import SlidingWindow


@dataclass
class WatchConfig:
    """Tuning knobs for every detector (defaults are FP-safe on the
    clean paradigm x scheduler sweep -- see tests/test_watch.py)."""

    #: Group-tardiness samples used as the drift baseline.
    drift_calibration: int = 3
    #: Recent group-tardiness samples the drift window holds.
    drift_window: int = 2
    #: Window mean must exceed baseline mean by this ratio...
    drift_ratio: float = 3.0
    #: ...plus this fraction of the mean calibration group duration.
    drift_floor_frac: float = 0.75
    #: Relative capacity drop that opens a link-collapse episode.
    capacity_drop_tol: float = 0.02
    #: A loaded-but-quiet link stint must exceed this multiple of the
    #: longest completed benign stint...
    stall_factor: float = 2.5
    #: ...and also this many heartbeat periods, before it alarms.
    stall_beats: float = 4.0
    #: Fallback / reroute events within the storm window that alarm.
    fallback_threshold: int = 1
    reroute_threshold: int = 1
    #: Storm windows are count-bounded (events, not seconds).
    storm_window: int = 64
    #: Deliveries required before the JCT watchdog may alarm.
    jct_warmup: int = 6
    #: Open inter-delivery gap vs the worst observed gap so far.
    jct_gap_factor: float = 4.0
    #: Minimum confidence a localization needs to trigger mitigation.
    mitigation_min_score: float = 0.4
    #: Lift a cordon when the fabric reports the link restored (port-up),
    #: re-arming it for the next flap cycle; see Mitigator.on_fault.
    uncordon_on_restore: bool = True
    #: Port-flap damping: the lift waits this multiple of the link's
    #: last outage after the restore, and a re-down cancels it.
    uncordon_holddown_factor: float = 1.5
    #: Duplex directions share their observed nominal capacity (every
    #: stock fabric is symmetric); see StreamState.
    pair_symmetry: bool = True

    # -- noise hardening (defaults preserve the noise-free behaviour
    # bit-for-bit; see docs/aiops.md "Telemetry noise model") ----------
    #: Distinct degraded sightings before a capacity-drop episode opens
    #: (1 = alarm on first sight, the pre-noise behaviour). Raise on
    #: channels that duplicate or delay samples.
    capacity_confirm: int = 1
    #: Anomalies below this confidence are suppressed loop-wide:
    #: episodes become confidence-weighted instead of hard-thresholded.
    min_confidence: float = 0.0
    #: Multiplier on the quiet-stint alarm bar; >1 buys false-positive
    #: margin when sampling stretches apparent stints.
    quiet_margin: float = 1.0
    #: Additive quiet-stint slack, in units of the link's *observed*
    #: mean inter-sample gap. Sighting lag is additive -- a busy link
    #: can silently miss several 1-in-k sampled sightings in a row --
    #: so a multiplier alone cannot absorb it. Self-calibrating: on a
    #: dense (noise-free) feed the observed gap is tiny.
    quiet_slack: float = 0.0

    # -- multi-fault localization (see Localizer) ----------------------
    #: Candidates below this score never enter a localization's
    #: ``fault_set`` (the ranked set of *distinct* concurrent causes).
    #: Sits above the score a benign quiet stint can reach (~0.47 for a
    #: lone parked flow at max staleness) but below every real-fault
    #: signature (capacity drops >= 0.7 on the grid, crash = 1.0,
    #: elected quiet subjects ~0.8+).
    set_min_score: float = 0.5
    #: Maximum distinct causes one localization claims.
    set_max: int = 3
    #: Contention-vs-fault discriminator: a link sampled busy within
    #: this fraction of the run's elapsed time, at >= this utilization,
    #: with no capacity drop, is *exonerated* (its apparent collapse is
    #: a hot neighbour, not a sick link) and rescored by this factor.
    exonerate_staleness_frac: float = 0.05
    exonerate_utilization: float = 0.85
    exonerate_factor: float = 0.3
    #: Blame share of the top cross-job offender needed to promote the
    #: tenant above the physical-evidence cap.
    blame_dominance: float = 0.6


class Detector:
    """Base: observe events (already folded into ``state``), emit anomalies."""

    name = "detector"

    def observe(self, event: Dict, state: StreamState) -> List[Dict]:
        raise NotImplementedError

    def _anomaly(
        self,
        state: StreamState,
        onset: float,
        confidence: float,
        evidence: Dict,
    ) -> Dict:
        return {
            "ev": "anomaly",
            "t": state.now,
            "detector": self.name,
            "onset": onset,
            "confidence": round(min(1.0, max(0.0, confidence)), 6),
            "evidence": evidence,
        }


class TardinessDriftDetector(Detector):
    """Windowed per-group tardiness vs the run's calibration baseline."""

    name = "tardiness_drift"

    def __init__(self, config: WatchConfig) -> None:
        self.config = config
        self._seen_groups: Set[str] = set()
        self._calibration: List[float] = []
        self._calibration_durations: List[float] = []
        self._window = SlidingWindow(max_samples=config.drift_window)
        self._alarmed = False

    def observe(self, event: Dict, state: StreamState) -> List[Dict]:
        if event.get("ev") != "flow_finished":
            return []
        group = event.get("group")
        if group is None or group in self._seen_groups:
            return []
        if not state.group_completed(group):
            return []
        self._seen_groups.add(group)
        progress = state.groups[group]
        tardiness = progress.worst
        duration = 0.0
        if progress.first_start is not None and progress.last_finish is not None:
            duration = max(0.0, progress.last_finish - progress.first_start)
        if len(self._calibration) < self.config.drift_calibration:
            self._calibration.append(tardiness)
            self._calibration_durations.append(duration)
            return []
        self._window.push(state.now, tardiness)
        if len(self._window) < self.config.drift_window:
            return []
        base_mean = sum(self._calibration) / len(self._calibration)
        mean_duration = (
            sum(self._calibration_durations) / len(self._calibration_durations)
            if self._calibration_durations
            else 0.0
        )
        threshold = (
            base_mean * self.config.drift_ratio
            + self.config.drift_floor_frac * mean_duration
        )
        window_mean = self._window.mean()
        if window_mean <= threshold or threshold <= 0.0:
            if window_mean <= 0.8 * threshold:
                self._alarmed = False
            return []
        if self._alarmed:
            return []
        self._alarmed = True
        onset = self._window.oldest_time() or state.now
        return [
            self._anomaly(
                state,
                onset,
                1.0 - threshold / window_mean,
                {
                    "group": group,
                    "window_mean_tardiness": window_mean,
                    "baseline_mean_tardiness": base_mean,
                    "threshold": threshold,
                },
            )
        ]


class LinkCapacityDetector(Detector):
    """Per-link utilization/capacity collapse from telemetry.

    Two failure signatures, one detector:

    * **capacity drop** -- a sampled link advertising less than its
      observed nominal capacity (``caps`` in ``link_sample``): a
      degraded link caught red-handed.
    * **quiet while loaded** -- a link with flows still pinned across it
      that stops appearing in utilization samples entirely. A hard
      link-down *vanishes* from telemetry (zero-rate links are not
      sampled), so silence is the only direct signal. Benign quiet
      stints happen constantly (echelon scheduling deliberately parks
      later groups), so the alarm bar self-calibrates: a stint must
      outlast every *completed* benign stint by ``stall_factor`` and
      last at least ``stall_beats`` heartbeat periods. Stints are
      assessed on ``watch_heartbeat`` ticks, which live in the event
      log -- replay sees the identical cadence.
    """

    name = "link_collapse"

    def __init__(self, config: WatchConfig) -> None:
        self.config = config
        self._degraded: Set[str] = set()
        #: link -> (consecutive degraded sightings, last sighting time);
        #: confirmation counting for noisy channels (capacity_confirm).
        self._confirming: Dict[str, List] = {}
        self._last_beat: Optional[float] = None
        self._beat_period = 0.0
        #: Longest completed (hence benign) quiet stint per link.
        self._benign: Dict[str, float] = {}
        #: link -> (last observed stint age, alarmed flag).
        self._stints: Dict[str, List] = {}

    def observe(self, event: Dict, state: StreamState) -> List[Dict]:
        kind = event.get("ev")
        if kind == "watch_heartbeat":
            return self._on_beat(state)
        if kind != "link_sample":
            return []
        anomalies: List[Dict] = []
        for key in event.get("links") or ():
            health = state.links.get(key)
            if health is None:
                continue
            drop = health.capacity_drop
            if drop > self.config.capacity_drop_tol:
                if key in self._degraded:
                    continue
                # Confirmation counting: one sighting per distinct
                # sample time (duplicates delivered twice by the channel
                # must not fast-forward the count).
                sightings = self._confirming.setdefault(key, [0, None])
                if sightings[1] != health.last_seen:
                    sightings[0] += 1
                    sightings[1] = health.last_seen
                if sightings[0] < self.config.capacity_confirm:
                    continue
                del self._confirming[key]
                self._degraded.add(key)
                anomalies.append(
                    self._anomaly(
                        state,
                        state.now,
                        drop,
                        {
                            "link": key,
                            "mode": "capacity_drop",
                            "capacity": health.capacity,
                            "nominal": health.nominal,
                            "drop": drop,
                        },
                    )
                )
            else:
                self._degraded.discard(key)
                self._confirming.pop(key, None)
        return anomalies

    def _on_beat(self, state: StreamState) -> List[Dict]:
        if self._last_beat is not None and state.now > self._last_beat:
            self._beat_period = state.now - self._last_beat
        self._last_beat = state.now
        stale = dict(state.stale_links())
        anomalies: List[Dict] = []
        for key in list(self._stints):
            if key not in stale:  # stint ended without an alarm: benign
                age, alarmed = self._stints.pop(key)
                if not alarmed:
                    self._benign[key] = max(self._benign.get(key, 0.0), age)
        if self._beat_period <= 0.0:
            return []
        floor = self.config.stall_beats * self._beat_period
        benign_all = max(self._benign.values(), default=0.0)
        # quiet_margin (default 1.0 = pre-noise bar): under sampling, a
        # link's last busy sighting lags its true last activity by up to
        # one sampling stride, stretching apparent stints.
        threshold = (
            max(self.config.stall_factor * benign_all, floor)
            * self.config.quiet_margin
        )
        crossing: List[Tuple[int, float, str]] = []
        bars: Dict[str, float] = {}
        # Most recent sign of life anywhere: a partial fault strands
        # some flows while the rest of the fabric keeps moving, whereas
        # a network-wide hush on a sparse feed is a schedule phase (or a
        # compute gap) -- only judged when quiet_slack is armed.
        network_recent = max(
            [state.last_delivery or 0.0]
            + [
                health.last_busy
                for health in state.links.values()
                if health.last_busy is not None
            ]
        )
        for key, age in stale.items():
            stint = self._stints.setdefault(key, [0.0, False])
            stint[0] = age
            bar = threshold + self._sample_slack(key, state)
            bars[key] = bar
            if stint[1] or age < bar:
                continue
            if self._reverse_alive(key, state):
                continue
            if (
                self.config.quiet_slack > 0.0
                and network_recent <= state.now - age
            ):
                continue
            outstanding = len(state.outstanding_on_link.get(key, ()))
            crossing.append((outstanding, age, key))
        if not crossing:
            return anomalies
        # Everything crossing on the same beat is one event; the link
        # carrying the most stalled flows is the shared bottleneck (a
        # downed server uplink strands every worker's flows, and each
        # stranded path's other hops go quiet *with* it).
        crossing.sort(key=lambda c: (-c[0], -c[1], c[2]))
        for _, _, key in crossing:
            self._stints[key][1] = True
        outstanding, age, key = crossing[0]
        bar = bars[key]
        anomalies.append(
            self._anomaly(
                state,
                state.now - age,
                min(1.0, 0.5 + 0.5 * (age / bar - 1.0)),
                {
                    "link": key,
                    "mode": "quiet",
                    "stale_seconds": age,
                    "outstanding_flows": outstanding,
                    "co_stalled": [
                        [k, round(a, 9), o] for o, a, k in crossing[1:5]
                    ],
                    "benign_max": benign_all,
                    "threshold": bar,
                },
            )
        )
        return anomalies

    def _sample_slack(self, key: str, state: StreamState) -> float:
        """Sighting-lag allowance for one link's quiet-stint age.

        Under a 1-in-k sampled channel a busy link can go several true
        sampling periods without a sighting; the apparent stint inflates
        by that lag *additively*. The allowance is ``quiet_slack`` times
        the link's observed mean inter-sample gap, which self-reports
        the channel density (near zero on a dense feed). A link never
        sighted busy gets *no* slack: its stint age derives from exact
        pinned-flow injection times, which sampling does not blur.
        """
        if self.config.quiet_slack <= 0.0:
            return 0.0
        health = state.links.get(key)
        if health is None or health.last_busy is None:
            return 0.0
        if health.samples < 2:
            return self.config.quiet_slack * self._beat_period
        gap = (health.last_seen - health.first_seen) / (health.samples - 1)
        return self.config.quiet_slack * max(gap, 0.0)

    def _reverse_alive(self, key: str, state: StreamState) -> bool:
        """Was the duplex partner of ``key`` sighted busy recently?

        Faults on this grid down both directions of a duplex pair, so a
        quiet direction whose reverse still moves bytes is parked by the
        schedule, not dead -- a distinction that only matters on sparse
        feeds, where a parked direction can go a whole round between
        sightings. Gated on ``quiet_slack`` so the noise-free bar is
        untouched.
        """
        if self.config.quiet_slack <= 0.0:
            return False
        src, sep, dst = key.partition("->")
        if not sep:
            return False
        health = state.links.get(f"{dst}->{src}")
        if health is None or health.last_busy is None:
            return False
        if health.samples >= 2:
            gap = (health.last_seen - health.first_seen) / (health.samples - 1)
        else:
            gap = self._beat_period
        allowance = self.config.quiet_slack * max(gap, self._beat_period)
        return state.now - health.last_busy <= allowance


class StormDetector(Detector):
    """Bursts of scheduler fallbacks or fault-driven reroutes."""

    def __init__(
        self, config: WatchConfig, kind: str, threshold: int
    ) -> None:
        self.config = config
        self.kind = kind  # "fallback" or "reroute"
        self.name = f"{kind}_storm"
        self.threshold = threshold
        self._window = SlidingWindow(max_samples=config.storm_window)
        self._alarmed = False

    def observe(self, event: Dict, state: StreamState) -> List[Dict]:
        ev = event.get("ev")
        if self.kind == "fallback":
            if ev != "scheduler_fallback":
                return []
            # Mitigation-pinned fallbacks are self-inflicted, not symptoms.
            if event.get("kind") == "pinned":
                return []
        elif ev != "flow_rerouted":
            return []
        self._window.push(state.now, 1.0)
        if len(self._window) < self.threshold or self._alarmed:
            return []
        self._alarmed = True
        onset = self._window.oldest_time() or state.now
        evidence: Dict = {"count": len(self._window)}
        if self.kind == "fallback":
            evidence["kinds"] = sorted(
                {k for _, k in state.fallbacks}
            )
        else:
            links: Dict[str, int] = {}
            for _, old_path, new_path in state.reroutes[-self.config.storm_window:]:
                for key in set(old_path) - set(new_path):
                    links[key] = links.get(key, 0) + 1
            evidence["old_path_links"] = dict(
                sorted(links.items(), key=lambda kv: (-kv[1], kv[0]))
            )
        confidence = min(1.0, len(self._window) / max(1, self.threshold))
        return [self._anomaly(state, onset, confidence, evidence)]


class JctForecastDetector(Detector):
    """Flow-progress stall watchdog with a JCT-forecast payload.

    The gap is measured from the last *flow event* (injection or
    delivery) so healthy compute-only bubbles -- which end with fresh
    injections -- reset it, and the threshold self-calibrates to the
    run's own worst inter-flow-event gap. A second, independent
    condition guards against slow-but-healthy drains: at alarm time at
    least one link with flows still pinned across it must have gone
    telemetry-quiet (zero sampled rate) for about half the stall --
    a flow making *any* progress keeps its links busy.
    """

    name = "jct_forecast"

    def __init__(self, config: WatchConfig) -> None:
        self.config = config
        self._max_gap = 0.0
        self._last_flow_event: Optional[float] = None
        self._alarmed = False

    def _forecast(self, state: StreamState) -> Optional[float]:
        remaining = sum(state.job_outstanding_bytes.values())
        delivered = sum(state.job_delivered_bytes.values())
        elapsed = state.elapsed
        if delivered <= 0.0 or elapsed <= 0.0:
            return None
        throughput = delivered / elapsed
        return state.now + remaining / throughput

    def observe(self, event: Dict, state: StreamState) -> List[Dict]:
        kind = event.get("ev")
        if kind in ("flow_injected", "flow_finished"):
            if self._last_flow_event is not None:
                self._max_gap = max(
                    self._max_gap, state.now - self._last_flow_event
                )
            self._last_flow_event = state.now
            if kind == "flow_finished":
                self._alarmed = False
            return []
        # Warmup counts *deduplicated* deliveries (state.deliveries), so
        # an at-least-once channel cannot fast-forward the quota.
        if (
            state.deliveries < self.config.jct_warmup
            or not state.active_flows
            or self._last_flow_event is None
            or self._max_gap <= 0.0
            or self._alarmed
        ):
            return []
        gap = state.now - self._last_flow_event
        threshold = self.config.jct_gap_factor * self._max_gap
        if gap <= threshold:
            return []
        stale = state.stale_links()
        if state.links and (not stale or stale[0][1] < 0.5 * gap):
            return []  # flows are moving, just slowly -- not a stall
        self._alarmed = True
        evidence: Dict = {
            "gap": gap,
            "max_observed_gap": self._max_gap,
            "outstanding_flows": len(state.active_flows),
            "stale_links": [list(item) for item in stale[:4]],
        }
        forecast = self._forecast(state)
        if forecast is not None:
            evidence["forecast_jct"] = forecast
        onset = self._last_flow_event + threshold
        return [
            self._anomaly(
                state,
                min(onset, state.now),
                min(1.0, gap / threshold - 1.0 + 0.5),
                evidence,
            )
        ]


def noise_hardened_config(spec=None) -> WatchConfig:
    """A :class:`WatchConfig` tuned for one degraded-telemetry channel.

    With no spec (or the identity channel) this is exactly the default
    config -- the noise-free grid behaviour stays bit-for-bit. Under
    sampling or loss, apparent quiet stints stretch by up to a few
    sampling strides, so the quiet-stint alarm bar gains margin; under
    duplication or delay, capacity-drop episodes wait for a second
    distinct sighting before alarming.
    """
    config = WatchConfig()
    if spec is None or spec.is_noop:
        return config
    if spec.sample > 1 or spec.drop > 0.0 or spec.burst > 0.0:
        # Sampling lags a link's last busy sighting by up to a few
        # strides, inflating apparent quiet stints past the clean bar; a
        # real link-down stalls forever and still crosses the wider one.
        config.quiet_margin = 1.5
        config.quiet_slack = 2.0
    if spec.dup > 0.0 or spec.delay > 0.0:
        config.capacity_confirm = 2
    return config


def default_detectors(config: Optional[WatchConfig] = None) -> List[Detector]:
    """The standard detector battery, in deterministic order."""
    config = config if config is not None else WatchConfig()
    return [
        LinkCapacityDetector(config),
        StormDetector(config, "reroute", config.reroute_threshold),
        StormDetector(config, "fallback", config.fallback_threshold),
        TardinessDriftDetector(config),
        JctForecastDetector(config),
    ]
