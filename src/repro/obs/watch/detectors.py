"""Streaming anomaly detectors over the live obs event feed.

Four detector families, each reasoning over bounded sliding windows of
the :class:`~repro.obs.watch.stream.StreamState` and emitting structured
``anomaly`` records (``{"ev": "anomaly", "t", "detector", "onset",
"confidence", "evidence"}``):

* :class:`TardinessDriftDetector` -- live Eq. 1/2 residuals: per-group
  tardiness at group completion, windowed against a calibration
  baseline; a mid-run fault shows up as the window mean breaking away
  from the run's own steady state.
* :class:`LinkCapacityDetector` -- per-link utilization/capacity
  collapse straight from ``link_sample`` telemetry: a sampled link whose
  capacity drops below its observed nominal enters a degraded episode.
* :class:`StormDetector` -- scheduler-fallback and reroute storms:
  ``scheduler_fallback`` / ``flow_rerouted`` bursts that a healthy run
  never produces (mitigation-pinned fallbacks are excluded).
* :class:`JctForecastDetector` -- JCT-forecast divergence: the
  inter-delivery gap watchdog. When flows are outstanding but nothing
  has delivered for far longer than the run's own worst observed gap,
  the JCT forecast is diverging; the anomaly carries the projected JCT.

Thresholds are *self-calibrating* (ratios against the run's own early
samples) rather than absolute, so one configuration covers workloads
whose timescales differ by orders of magnitude. A detector only alarms
after its calibration quota is met, and each alarm opens an episode that
must clear before the same detector re-fires -- both properties the
clean-sweep false-positive tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .stream import StreamState
from .window import SlidingWindow


@dataclass
class WatchConfig:
    """Tuning knobs for every detector (defaults are FP-safe on the
    clean paradigm x scheduler sweep -- see tests/test_watch.py)."""

    #: Group-tardiness samples used as the drift baseline.
    drift_calibration: int = 3
    #: Recent group-tardiness samples the drift window holds.
    drift_window: int = 2
    #: Window mean must exceed baseline mean by this ratio...
    drift_ratio: float = 3.0
    #: ...plus this fraction of the mean calibration group duration.
    drift_floor_frac: float = 0.75
    #: Relative capacity drop that opens a link-collapse episode.
    capacity_drop_tol: float = 0.02
    #: A loaded-but-quiet link stint must exceed this multiple of the
    #: longest completed benign stint...
    stall_factor: float = 2.5
    #: ...and also this many heartbeat periods, before it alarms.
    stall_beats: float = 4.0
    #: Fallback / reroute events within the storm window that alarm.
    fallback_threshold: int = 1
    reroute_threshold: int = 1
    #: Storm windows are count-bounded (events, not seconds).
    storm_window: int = 64
    #: Deliveries required before the JCT watchdog may alarm.
    jct_warmup: int = 6
    #: Open inter-delivery gap vs the worst observed gap so far.
    jct_gap_factor: float = 4.0
    #: Minimum confidence a localization needs to trigger mitigation.
    mitigation_min_score: float = 0.4
    #: Lift a cordon when the fabric reports the link restored (port-up),
    #: re-arming it for the next flap cycle; see Mitigator.on_fault.
    uncordon_on_restore: bool = True
    #: Port-flap damping: the lift waits this multiple of the link's
    #: last outage after the restore, and a re-down cancels it.
    uncordon_holddown_factor: float = 1.5
    #: Duplex directions share their observed nominal capacity (every
    #: stock fabric is symmetric); see StreamState.
    pair_symmetry: bool = True


class Detector:
    """Base: observe events (already folded into ``state``), emit anomalies."""

    name = "detector"

    def observe(self, event: Dict, state: StreamState) -> List[Dict]:
        raise NotImplementedError

    def _anomaly(
        self,
        state: StreamState,
        onset: float,
        confidence: float,
        evidence: Dict,
    ) -> Dict:
        return {
            "ev": "anomaly",
            "t": state.now,
            "detector": self.name,
            "onset": onset,
            "confidence": round(min(1.0, max(0.0, confidence)), 6),
            "evidence": evidence,
        }


class TardinessDriftDetector(Detector):
    """Windowed per-group tardiness vs the run's calibration baseline."""

    name = "tardiness_drift"

    def __init__(self, config: WatchConfig) -> None:
        self.config = config
        self._seen_groups: Set[str] = set()
        self._calibration: List[float] = []
        self._calibration_durations: List[float] = []
        self._window = SlidingWindow(max_samples=config.drift_window)
        self._alarmed = False

    def observe(self, event: Dict, state: StreamState) -> List[Dict]:
        if event.get("ev") != "flow_finished":
            return []
        group = event.get("group")
        if group is None or group in self._seen_groups:
            return []
        if not state.group_completed(group):
            return []
        self._seen_groups.add(group)
        progress = state.groups[group]
        tardiness = progress.worst
        duration = 0.0
        if progress.first_start is not None and progress.last_finish is not None:
            duration = max(0.0, progress.last_finish - progress.first_start)
        if len(self._calibration) < self.config.drift_calibration:
            self._calibration.append(tardiness)
            self._calibration_durations.append(duration)
            return []
        self._window.push(state.now, tardiness)
        if len(self._window) < self.config.drift_window:
            return []
        base_mean = sum(self._calibration) / len(self._calibration)
        mean_duration = (
            sum(self._calibration_durations) / len(self._calibration_durations)
            if self._calibration_durations
            else 0.0
        )
        threshold = (
            base_mean * self.config.drift_ratio
            + self.config.drift_floor_frac * mean_duration
        )
        window_mean = self._window.mean()
        if window_mean <= threshold or threshold <= 0.0:
            if window_mean <= 0.8 * threshold:
                self._alarmed = False
            return []
        if self._alarmed:
            return []
        self._alarmed = True
        onset = self._window.oldest_time() or state.now
        return [
            self._anomaly(
                state,
                onset,
                1.0 - threshold / window_mean,
                {
                    "group": group,
                    "window_mean_tardiness": window_mean,
                    "baseline_mean_tardiness": base_mean,
                    "threshold": threshold,
                },
            )
        ]


class LinkCapacityDetector(Detector):
    """Per-link utilization/capacity collapse from telemetry.

    Two failure signatures, one detector:

    * **capacity drop** -- a sampled link advertising less than its
      observed nominal capacity (``caps`` in ``link_sample``): a
      degraded link caught red-handed.
    * **quiet while loaded** -- a link with flows still pinned across it
      that stops appearing in utilization samples entirely. A hard
      link-down *vanishes* from telemetry (zero-rate links are not
      sampled), so silence is the only direct signal. Benign quiet
      stints happen constantly (echelon scheduling deliberately parks
      later groups), so the alarm bar self-calibrates: a stint must
      outlast every *completed* benign stint by ``stall_factor`` and
      last at least ``stall_beats`` heartbeat periods. Stints are
      assessed on ``watch_heartbeat`` ticks, which live in the event
      log -- replay sees the identical cadence.
    """

    name = "link_collapse"

    def __init__(self, config: WatchConfig) -> None:
        self.config = config
        self._degraded: Set[str] = set()
        self._last_beat: Optional[float] = None
        self._beat_period = 0.0
        #: Longest completed (hence benign) quiet stint per link.
        self._benign: Dict[str, float] = {}
        #: link -> (last observed stint age, alarmed flag).
        self._stints: Dict[str, List] = {}

    def observe(self, event: Dict, state: StreamState) -> List[Dict]:
        kind = event.get("ev")
        if kind == "watch_heartbeat":
            return self._on_beat(state)
        if kind != "link_sample":
            return []
        anomalies: List[Dict] = []
        for key in event.get("links") or ():
            health = state.links.get(key)
            if health is None:
                continue
            drop = health.capacity_drop
            if drop > self.config.capacity_drop_tol:
                if key not in self._degraded:
                    self._degraded.add(key)
                    anomalies.append(
                        self._anomaly(
                            state,
                            state.now,
                            drop,
                            {
                                "link": key,
                                "mode": "capacity_drop",
                                "capacity": health.capacity,
                                "nominal": health.nominal,
                                "drop": drop,
                            },
                        )
                    )
            else:
                self._degraded.discard(key)
        return anomalies

    def _on_beat(self, state: StreamState) -> List[Dict]:
        if self._last_beat is not None and state.now > self._last_beat:
            self._beat_period = state.now - self._last_beat
        self._last_beat = state.now
        stale = dict(state.stale_links())
        anomalies: List[Dict] = []
        for key in list(self._stints):
            if key not in stale:  # stint ended without an alarm: benign
                age, alarmed = self._stints.pop(key)
                if not alarmed:
                    self._benign[key] = max(self._benign.get(key, 0.0), age)
        if self._beat_period <= 0.0:
            return []
        floor = self.config.stall_beats * self._beat_period
        benign_all = max(self._benign.values(), default=0.0)
        threshold = max(self.config.stall_factor * benign_all, floor)
        crossing: List[Tuple[int, float, str]] = []
        for key, age in stale.items():
            stint = self._stints.setdefault(key, [0.0, False])
            stint[0] = age
            if stint[1] or age < threshold:
                continue
            outstanding = len(state.outstanding_on_link.get(key, ()))
            crossing.append((outstanding, age, key))
        if not crossing:
            return anomalies
        # Everything crossing on the same beat is one event; the link
        # carrying the most stalled flows is the shared bottleneck (a
        # downed server uplink strands every worker's flows, and each
        # stranded path's other hops go quiet *with* it).
        crossing.sort(key=lambda c: (-c[0], -c[1], c[2]))
        for _, _, key in crossing:
            self._stints[key][1] = True
        outstanding, age, key = crossing[0]
        anomalies.append(
            self._anomaly(
                state,
                state.now - age,
                min(1.0, 0.5 + 0.5 * (age / threshold - 1.0)),
                {
                    "link": key,
                    "mode": "quiet",
                    "stale_seconds": age,
                    "outstanding_flows": outstanding,
                    "co_stalled": [
                        [k, round(a, 9), o] for o, a, k in crossing[1:5]
                    ],
                    "benign_max": benign_all,
                    "threshold": threshold,
                },
            )
        )
        return anomalies


class StormDetector(Detector):
    """Bursts of scheduler fallbacks or fault-driven reroutes."""

    def __init__(
        self, config: WatchConfig, kind: str, threshold: int
    ) -> None:
        self.config = config
        self.kind = kind  # "fallback" or "reroute"
        self.name = f"{kind}_storm"
        self.threshold = threshold
        self._window = SlidingWindow(max_samples=config.storm_window)
        self._alarmed = False

    def observe(self, event: Dict, state: StreamState) -> List[Dict]:
        ev = event.get("ev")
        if self.kind == "fallback":
            if ev != "scheduler_fallback":
                return []
            # Mitigation-pinned fallbacks are self-inflicted, not symptoms.
            if event.get("kind") == "pinned":
                return []
        elif ev != "flow_rerouted":
            return []
        self._window.push(state.now, 1.0)
        if len(self._window) < self.threshold or self._alarmed:
            return []
        self._alarmed = True
        onset = self._window.oldest_time() or state.now
        evidence: Dict = {"count": len(self._window)}
        if self.kind == "fallback":
            evidence["kinds"] = sorted(
                {k for _, k in state.fallbacks}
            )
        else:
            links: Dict[str, int] = {}
            for _, old_path, new_path in state.reroutes[-self.config.storm_window:]:
                for key in set(old_path) - set(new_path):
                    links[key] = links.get(key, 0) + 1
            evidence["old_path_links"] = dict(
                sorted(links.items(), key=lambda kv: (-kv[1], kv[0]))
            )
        confidence = min(1.0, len(self._window) / max(1, self.threshold))
        return [self._anomaly(state, onset, confidence, evidence)]


class JctForecastDetector(Detector):
    """Flow-progress stall watchdog with a JCT-forecast payload.

    The gap is measured from the last *flow event* (injection or
    delivery) so healthy compute-only bubbles -- which end with fresh
    injections -- reset it, and the threshold self-calibrates to the
    run's own worst inter-flow-event gap. A second, independent
    condition guards against slow-but-healthy drains: at alarm time at
    least one link with flows still pinned across it must have gone
    telemetry-quiet (zero sampled rate) for about half the stall --
    a flow making *any* progress keeps its links busy.
    """

    name = "jct_forecast"

    def __init__(self, config: WatchConfig) -> None:
        self.config = config
        self._max_gap = 0.0
        self._last_flow_event: Optional[float] = None
        self._deliveries = 0
        self._alarmed = False

    def _forecast(self, state: StreamState) -> Optional[float]:
        remaining = sum(state.job_outstanding_bytes.values())
        delivered = sum(state.job_delivered_bytes.values())
        elapsed = state.elapsed
        if delivered <= 0.0 or elapsed <= 0.0:
            return None
        throughput = delivered / elapsed
        return state.now + remaining / throughput

    def observe(self, event: Dict, state: StreamState) -> List[Dict]:
        kind = event.get("ev")
        if kind in ("flow_injected", "flow_finished"):
            if self._last_flow_event is not None:
                self._max_gap = max(
                    self._max_gap, state.now - self._last_flow_event
                )
            self._last_flow_event = state.now
            if kind == "flow_finished":
                self._deliveries += 1
                self._alarmed = False
            return []
        if (
            self._deliveries < self.config.jct_warmup
            or not state.active_flows
            or self._last_flow_event is None
            or self._max_gap <= 0.0
            or self._alarmed
        ):
            return []
        gap = state.now - self._last_flow_event
        threshold = self.config.jct_gap_factor * self._max_gap
        if gap <= threshold:
            return []
        stale = state.stale_links()
        if state.links and (not stale or stale[0][1] < 0.5 * gap):
            return []  # flows are moving, just slowly -- not a stall
        self._alarmed = True
        evidence: Dict = {
            "gap": gap,
            "max_observed_gap": self._max_gap,
            "outstanding_flows": len(state.active_flows),
            "stale_links": [list(item) for item in stale[:4]],
        }
        forecast = self._forecast(state)
        if forecast is not None:
            evidence["forecast_jct"] = forecast
        onset = self._last_flow_event + threshold
        return [
            self._anomaly(
                state,
                min(onset, state.now),
                min(1.0, gap / threshold - 1.0 + 0.5),
                evidence,
            )
        ]


def default_detectors(config: Optional[WatchConfig] = None) -> List[Detector]:
    """The standard detector battery, in deterministic order."""
    config = config if config is not None else WatchConfig()
    return [
        LinkCapacityDetector(config),
        StormDetector(config, "reroute", config.reroute_threshold),
        StormDetector(config, "fallback", config.fallback_threshold),
        TardinessDriftDetector(config),
        JctForecastDetector(config),
    ]
