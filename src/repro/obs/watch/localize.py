"""Root-cause localization for watch-loop anomalies.

On every anomaly the :class:`Localizer` ranks candidate root causes --
*which link* failed or degraded, *whether the scheduler* crashed or is
limping on its fallback, *which job* is hogging contested bandwidth --
and emits a ``localization`` record with scored candidates, best first.

Evidence comes from three observable sources only (never from the
injected ``fault`` events -- see :mod:`repro.obs.watch.stream`):

* **telemetry**: per-link capacity drops and "quiet" links that still
  have flows pinned across them but have not carried traffic for a
  while (a hard link-down vanishes from ``link_sample`` usage, so
  silence *is* the signal);
* **control-plane records**: reroute records whose old paths pile up on
  one link, and ResilientScheduler fallback records (crash >
  exception > infeasible), excluding mitigation-pinned ones;
* **diagnosis**: when the full event stream is available, the
  contention blame matrix from :mod:`repro.obs.diagnosis` names the
  job imposing the most cross-job delay -- the "noisy neighbour"
  candidate behind tardiness drift without any physical fault.

Scores are additive weights clamped to [0, 1]; ties break on
``(kind, target)`` so rankings are deterministic across live and
replay. The grader (:mod:`repro.obs.watch.score`) compares the top
candidates against the chaos layer's ground truth.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .detectors import WatchConfig
from .stream import StreamState

#: Fallback kinds ranked by how strongly they implicate the scheduler.
_FALLBACK_WEIGHT = {
    "crash": 1.0,
    "exception": 0.6,
    "infeasible": 0.4,
}


def _anomaly_links(anomaly: Dict) -> Dict[str, float]:
    """Links the anomaly's own evidence points at (key -> emphasis)."""
    evidence = anomaly.get("evidence") or {}
    out: Dict[str, float] = {}
    link = evidence.get("link")
    if isinstance(link, str):
        out[link] = 1.0
    for item in evidence.get("stale_links") or ():
        if item and isinstance(item[0], str):
            out[item[0]] = max(out.get(item[0], 0.0), 1.0)
    old_path_links = evidence.get("old_path_links") or {}
    if old_path_links:
        top = max(old_path_links.values())
        for key, count in old_path_links.items():
            out[key] = max(out.get(key, 0.0), count / top)
    return out


class Localizer:
    """Rank candidate root causes for one anomaly from stream evidence."""

    def __init__(self, config: Optional[WatchConfig] = None) -> None:
        self.config = config if config is not None else WatchConfig()

    # -- evidence channels ---------------------------------------------

    def _link_candidates(
        self, anomaly: Dict, state: StreamState
    ) -> List[Dict]:
        subjects = _anomaly_links(anomaly)
        stale = dict(state.stale_links())
        max_stale = max(stale.values()) if stale else 0.0
        max_outstanding = max(
            (len(state.outstanding_on_link.get(key, ())) for key in stale),
            default=0,
        )
        recent_reroutes = state.reroutes[-self.config.storm_window :]
        reroute_hits: Dict[str, int] = {}
        for _, old_path, new_path in recent_reroutes:
            # Only the links the migration *avoided* implicate a fault;
            # links shared by both paths (host uplinks, usually) don't.
            for key in set(old_path) - set(new_path):
                reroute_hits[key] = reroute_hits.get(key, 0) + 1
        keys = set(state.links) | set(stale) | set(subjects) | set(reroute_hits)
        candidates: List[Dict] = []
        for key in keys:
            evidence: Dict = {}
            score = 0.0
            health = state.links.get(key)
            if health is not None and health.capacity_drop > self.config.capacity_drop_tol:
                score += 1.0 * health.capacity_drop
                evidence["capacity_drop"] = health.capacity_drop
            if key in stale and max_stale > 0.0:
                quiet = stale[key] / max_stale
                outstanding = len(state.outstanding_on_link.get(key, ()))
                # Equally-stale links differ in how many stranded flows
                # they carry; the shared bottleneck carries the most.
                share = outstanding / max_outstanding if max_outstanding else 0.0
                score += 0.8 * quiet * (0.5 + 0.5 * share)
                evidence["quiet_seconds"] = stale[key]
                evidence["outstanding_flows"] = outstanding
            if key in reroute_hits and recent_reroutes:
                frac = reroute_hits[key] / len(recent_reroutes)
                score += 0.9 * frac
                evidence["rerouted_old_paths"] = reroute_hits[key]
            if key in subjects:
                score += 0.5 * subjects[key]
                evidence["anomaly_subject"] = True
            if score > 0.0:
                candidates.append(
                    {
                        "kind": "link",
                        "target": key,
                        "score": min(1.0, score),
                        "evidence": evidence,
                    }
                )
        return candidates

    def _scheduler_candidate(
        self, anomaly: Dict, state: StreamState
    ) -> Optional[Dict]:
        recent = state.fallbacks[-self.config.storm_window :]
        kinds: Dict[str, int] = {}
        score = 0.0
        for _, kind in recent:
            if kind == "pinned":  # mitigation-induced, not a symptom
                continue
            kinds[kind] = kinds.get(kind, 0) + 1
            score = max(score, _FALLBACK_WEIGHT.get(kind, 0.5))
        if not kinds:
            return None
        if anomaly.get("detector") == "fallback_storm":
            score += 0.3
        return {
            "kind": "scheduler",
            "target": "scheduler",
            "score": min(1.0, score),
            "evidence": {"fallback_kinds": dict(sorted(kinds.items()))},
        }

    def _job_candidates(
        self, anomaly: Dict, events: Optional[Iterable[Dict]]
    ) -> List[Dict]:
        """Contention-blame evidence: the noisy-neighbour job.

        Only meaningful for tardiness drift (a link fault or scheduler
        crash explains the other anomalies better), and only when the
        caller can supply the event stream for offline diagnosis.
        """
        if anomaly.get("detector") != "tardiness_drift" or events is None:
            return []
        try:
            from ..diagnosis import RunArtifacts, attribute_run, blame_matrix

            artifacts = RunArtifacts.from_events(list(events))
            blame = blame_matrix(attribute_run(artifacts)["flows"])
        except Exception:  # partial streams may not attribute cleanly
            return []
        cross: Dict[str, float] = {}
        for entry in blame["worst"]:
            if entry["blamed"] == entry["victim"]:
                continue
            cross[entry["blamed"]] = cross.get(entry["blamed"], 0.0) + entry[
                "seconds"
            ]
        total = sum(cross.values())
        if total <= 0.0:
            return []
        return [
            {
                "kind": "job",
                "target": job,
                # Capped below link/scheduler evidence: blame alone
                # never outranks a physically observed fault.
                "score": min(0.5, 0.5 * seconds / total),
                "evidence": {"cross_job_blame_seconds": seconds},
            }
            for job, seconds in cross.items()
        ]

    # ------------------------------------------------------------------

    def localize(
        self,
        anomaly: Dict,
        state: StreamState,
        events: Optional[Iterable[Dict]] = None,
        top: int = 5,
    ) -> Dict:
        """Rank root-cause candidates for ``anomaly``; best first."""
        candidates = self._link_candidates(anomaly, state)
        scheduler = self._scheduler_candidate(anomaly, state)
        if scheduler is not None:
            candidates.append(scheduler)
        candidates.extend(self._job_candidates(anomaly, events))
        candidates.sort(
            key=lambda c: (-c["score"], c["kind"], c["target"])
        )
        for candidate in candidates:
            candidate["score"] = round(candidate["score"], 6)
        return {
            "ev": "localization",
            "t": state.now,
            "detector": anomaly.get("detector"),
            "onset": anomaly.get("onset"),
            "candidates": candidates[:top],
        }
