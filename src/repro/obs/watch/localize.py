"""Root-cause localization for watch-loop anomalies.

On every anomaly the :class:`Localizer` ranks candidate root causes --
*which link* failed or degraded, *whether the scheduler* crashed or is
limping on its fallback, *which job* is hogging contested bandwidth --
and emits a ``localization`` record with scored candidates, best first.

Evidence comes from three observable sources only (never from the
injected ``fault`` events -- see :mod:`repro.obs.watch.stream`):

* **telemetry**: per-link capacity drops and "quiet" links that still
  have flows pinned across them but have not carried traffic for a
  while (a hard link-down vanishes from ``link_sample`` usage, so
  silence *is* the signal);
* **control-plane records**: reroute records whose old paths pile up on
  one link, and ResilientScheduler fallback records (crash >
  exception > infeasible), excluding mitigation-pinned ones;
* **diagnosis**: when the full event stream is available, the
  contention blame matrix from :mod:`repro.obs.diagnosis` names the
  job imposing the most cross-job delay -- the "noisy neighbour"
  candidate behind tardiness drift without any physical fault.

Scores are additive weights clamped to [0, 1]; ties break on
``(kind, target)`` so rankings are deterministic across live and
replay. The grader (:mod:`repro.obs.watch.score`) compares the top
candidates against the chaos layer's ground truth.

Beyond the ranked candidate list, each localization carries a
``fault_set``: the *distinct concurrent causes* the evidence supports
(score >= ``set_min_score``, duplex link directions collapsed to one
entry, at most ``set_max`` causes). A single-fault run yields a
singleton set; concurrent link + scheduler faults, correlated duplex
flaps, and cascades each surface as multi-entry sets, which the grader
scores as per-fault precision/recall.

The *contention-vs-fault discriminator* separates a sick link from a
hot neighbour tenant: a link that was sampled recently, busy at its
full nominal capacity, is **exonerated** (its score is scaled down and
it is barred from the fault set -- a saturated-but-healthy link is a
contention symptom, not a fault), and when the PR 3 blame matrix names
a dominant cross-job offender while no un-exonerated physical evidence
remains, the offending *job* is promoted above the usual
physical-evidence cap.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .detectors import WatchConfig
from .stream import StreamState

#: Fallback kinds ranked by how strongly they implicate the scheduler.
_FALLBACK_WEIGHT = {
    "crash": 1.0,
    "exception": 0.6,
    "infeasible": 0.4,
}


def _canonical_cause(kind: str, target: str) -> str:
    """Collapse the two directions of a duplex link to one cause key."""
    if kind == "link":
        src, sep, dst = target.partition("->")
        if sep:
            lo, hi = (src, dst) if src <= dst else (dst, src)
            return f"link:{lo}-{hi}"
    return f"{kind}:{target}"


def _anomaly_links(anomaly: Dict) -> Dict[str, float]:
    """Links the anomaly's own evidence points at (key -> emphasis)."""
    evidence = anomaly.get("evidence") or {}
    out: Dict[str, float] = {}
    link = evidence.get("link")
    if isinstance(link, str):
        out[link] = 1.0
    for item in evidence.get("stale_links") or ():
        if item and isinstance(item[0], str):
            out[item[0]] = max(out.get(item[0], 0.0), 1.0)
    old_path_links = evidence.get("old_path_links") or {}
    if old_path_links:
        top = max(old_path_links.values())
        for key, count in old_path_links.items():
            out[key] = max(out.get(key, 0.0), count / top)
    return out


class Localizer:
    """Rank candidate root causes for one anomaly from stream evidence."""

    def __init__(self, config: Optional[WatchConfig] = None) -> None:
        self.config = config if config is not None else WatchConfig()

    # -- evidence channels ---------------------------------------------

    def _link_candidates(
        self, anomaly: Dict, state: StreamState
    ) -> List[Dict]:
        subjects = _anomaly_links(anomaly)
        stale = dict(state.stale_links())
        max_stale = max(stale.values()) if stale else 0.0
        max_outstanding = max(
            (len(state.outstanding_on_link.get(key, ())) for key in stale),
            default=0,
        )
        recent_reroutes = state.reroutes[-self.config.storm_window :]
        reroute_hits: Dict[str, int] = {}
        for _, old_path, new_path in recent_reroutes:
            # Only the links the migration *avoided* implicate a fault;
            # links shared by both paths (host uplinks, usually) don't.
            for key in set(old_path) - set(new_path):
                reroute_hits[key] = reroute_hits.get(key, 0) + 1
        keys = set(state.links) | set(stale) | set(subjects) | set(reroute_hits)
        candidates: List[Dict] = []
        for key in keys:
            evidence: Dict = {}
            score = 0.0
            health = state.links.get(key)
            if health is not None and health.capacity_drop > self.config.capacity_drop_tol:
                score += 1.0 * health.capacity_drop
                evidence["capacity_drop"] = health.capacity_drop
            if key in stale and max_stale > 0.0:
                quiet = stale[key] / max_stale
                outstanding = len(state.outstanding_on_link.get(key, ()))
                # Equally-stale links differ in how many stranded flows
                # they carry; the shared bottleneck carries the most.
                share = outstanding / max_outstanding if max_outstanding else 0.0
                score += 0.8 * quiet * (0.5 + 0.5 * share)
                evidence["quiet_seconds"] = stale[key]
                evidence["outstanding_flows"] = outstanding
            if key in reroute_hits and recent_reroutes:
                frac = reroute_hits[key] / len(recent_reroutes)
                score += 0.9 * frac
                evidence["rerouted_old_paths"] = reroute_hits[key]
            if key in subjects:
                score += 0.5 * subjects[key]
                evidence["anomaly_subject"] = True
            if (
                score > 0.0
                and "capacity_drop" not in evidence
                and "rerouted_old_paths" not in evidence
            ):
                # Never exonerate a link the routing layer evacuated: a
                # freshly downed link still *looks* busy-at-nominal (its
                # last sample predates the fault by under one sampling
                # stride), but contention does not trigger reroutes.
                exonerated = self._exonerated(key, state)
                if exonerated is not None:
                    # Busy at full nominal when last sampled: the link
                    # is saturated, not sick -- contention evidence.
                    score *= self.config.exonerate_factor
                    evidence["exonerated"] = exonerated
                elif "quiet_seconds" in evidence:
                    # A quiet link whose stranded flows cross a hop that
                    # *is* moving bytes at full nominal is starved by
                    # congestion downstream, not dead: a sick link would
                    # silence its whole path.
                    hot = self._hot_downstream(key, state)
                    if hot is not None:
                        score *= self.config.exonerate_factor
                        evidence["exonerated"] = {"contended_hop": hot}
            if score > 0.0:
                candidates.append(
                    {
                        "kind": "link",
                        "target": key,
                        "score": min(1.0, score),
                        "evidence": evidence,
                    }
                )
        return candidates

    def _exonerated(self, key: str, state: StreamState) -> Optional[Dict]:
        """Contention-vs-fault check for one link candidate.

        Returns exoneration evidence when the link's newest sample is
        *fresh* (within ``exonerate_staleness_frac`` of the elapsed run)
        and shows it running at >= ``exonerate_utilization`` of an
        undegraded capacity -- a faulty link cannot be moving bytes at
        full nominal speed, so the congestion lies with its tenants.
        """
        health = state.links.get(key)
        if health is None:
            return None
        elapsed = state.elapsed
        if elapsed <= 0.0:
            return None
        staleness = state.now - health.last_seen
        if staleness > self.config.exonerate_staleness_frac * elapsed:
            return None
        if health.last_utilization < self.config.exonerate_utilization:
            return None
        if health.capacity_drop > self.config.capacity_drop_tol:
            return None
        return {
            "utilization": round(health.last_utilization, 6),
            "staleness": round(staleness, 9),
        }

    def _hot_downstream(self, key: str, state: StreamState) -> Optional[str]:
        """A busy-at-nominal hop shared by ``key``'s stranded flows."""
        for flow_id in state.outstanding_on_link.get(key, ()):
            info = state.active_flows.get(flow_id)
            if info is None:
                continue
            for hop in info["path"]:
                if hop == key:
                    continue
                if self._exonerated(hop, state) is not None:
                    return hop
        return None

    def _scheduler_candidate(
        self, anomaly: Dict, state: StreamState
    ) -> Optional[Dict]:
        recent = state.fallbacks[-self.config.storm_window :]
        kinds: Dict[str, int] = {}
        score = 0.0
        for _, kind in recent:
            if kind == "pinned":  # mitigation-induced, not a symptom
                continue
            kinds[kind] = kinds.get(kind, 0) + 1
            score = max(score, _FALLBACK_WEIGHT.get(kind, 0.5))
        if not kinds:
            return None
        if anomaly.get("detector") == "fallback_storm":
            score += 0.3
        return {
            "kind": "scheduler",
            "target": "scheduler",
            "score": min(1.0, score),
            "evidence": {"fallback_kinds": dict(sorted(kinds.items()))},
        }

    def _live_neighbor(self, state: StreamState) -> Dict[str, Dict]:
        """Stream-native hot-neighbour evidence, per late-arriving job.

        The blame matrix needs finished flows, so mid-run -- exactly
        when a hot neighbour is throttling the incumbent -- it can come
        up empty. The stream itself carries the signature: a job whose
        first injection landed well after the run began and which now
        holds a material share of the outstanding bytes.
        """
        first_seen = state.job_first_seen
        if len(first_seen) < 2:
            return {}
        t0 = min(first_seen.values())
        span = state.now - t0
        if span <= 0.0:
            return {}
        # A hot neighbour's outstanding bytes are often zero exactly
        # when it hurts most (it wins the bandwidth, so it drains
        # fast); its share of *recently delivered* bytes is the robust
        # signal. "Recent" = the trailing quarter of the run so far.
        cutoff = state.now - 0.25 * span
        recent: Dict[str, float] = {}
        for t, job, size in state.recent_deliveries:
            if t >= cutoff:
                recent[job] = recent.get(job, 0.0) + size
        recent_total = sum(recent.values())
        outstanding_total = sum(state.job_outstanding_bytes.values())
        out: Dict[str, Dict] = {}
        for job, seen in first_seen.items():
            if (seen - t0) < 0.1 * span:
                continue  # incumbent, not a late arrival
            share = 0.0
            if recent_total > 0.0:
                share = recent.get(job, 0.0) / recent_total
            if outstanding_total > 0.0:
                share = max(
                    share,
                    state.job_outstanding_bytes.get(job, 0.0)
                    / outstanding_total,
                )
            if share <= 0.0:
                continue
            out[job] = {
                "arrived": seen,
                "recent_bytes_share": round(share, 6),
            }
        return out

    def _job_candidates(
        self,
        anomaly: Dict,
        state: StreamState,
        events: Optional[Iterable[Dict]],
    ) -> List[Dict]:
        """Contention-blame evidence: the noisy-neighbour job.

        Only meaningful for tardiness drift (a link fault or scheduler
        crash explains the other anomalies better). Two evidence
        sources merge per job: the PR 3 blame matrix over the collected
        event stream (when it can attribute), and the live late-arrival
        signature from the stream state.
        """
        if anomaly.get("detector") != "tardiness_drift":
            return []
        blame_candidates = self._blame_candidates(events)
        live = self._live_neighbor(state)
        merged: Dict[str, Dict] = {c["target"]: c for c in blame_candidates}
        for job, evidence in live.items():
            share = evidence["recent_bytes_share"]
            candidate = merged.get(job)
            if candidate is None:
                candidate = {
                    "kind": "job",
                    "target": job,
                    "score": 0.0,
                    "evidence": {},
                }
                merged[job] = candidate
            candidate["evidence"].update(evidence)
            candidate["score"] = max(candidate["score"], min(0.5, 0.5 * share))
            candidate["evidence"]["blame_share"] = max(
                candidate["evidence"].get("blame_share", 0.0), share
            )
        return sorted(merged.values(), key=lambda c: c["target"])

    def _blame_candidates(
        self, events: Optional[Iterable[Dict]]
    ) -> List[Dict]:
        if events is None:
            return []
        try:
            from ..diagnosis import RunArtifacts, attribute_run, blame_matrix

            artifacts = RunArtifacts.from_events(list(events))
            blame = blame_matrix(attribute_run(artifacts)["flows"])
        except Exception:  # partial streams may not attribute cleanly
            return []
        cross: Dict[str, float] = {}
        for entry in blame["worst"]:
            if entry["blamed"] == entry["victim"]:
                continue
            cross[entry["blamed"]] = cross.get(entry["blamed"], 0.0) + entry[
                "seconds"
            ]
        total = sum(cross.values())
        if total <= 0.0:
            return []
        return [
            {
                "kind": "job",
                "target": job,
                # Capped below link/scheduler evidence: blame alone
                # never outranks a physically observed fault. The
                # discriminator in localize() lifts the cap when no
                # physical evidence survives exoneration.
                "score": min(0.5, 0.5 * seconds / total),
                "evidence": {
                    "cross_job_blame_seconds": seconds,
                    "blame_share": round(seconds / total, 6),
                },
            }
            for job, seconds in cross.items()
        ]

    # ------------------------------------------------------------------

    def localize(
        self,
        anomaly: Dict,
        state: StreamState,
        events: Optional[Iterable[Dict]] = None,
        top: int = 5,
    ) -> Dict:
        """Rank root-cause candidates for ``anomaly``; best first."""
        link_candidates = self._link_candidates(anomaly, state)
        candidates = list(link_candidates)
        scheduler = self._scheduler_candidate(anomaly, state)
        if scheduler is not None:
            candidates.append(scheduler)
        job_candidates = self._job_candidates(anomaly, state, events)
        candidates.extend(job_candidates)
        # Contention-vs-fault discriminator: when the blame matrix names
        # a dominant cross-job offender and every physical link either
        # carries too little evidence or was exonerated (busy at
        # nominal), the hot neighbour *is* the root cause -- promote it
        # above the physical-evidence cap.
        if job_candidates:
            physical = scheduler is not None or any(
                "capacity_drop" in c["evidence"]
                or (
                    "exonerated" not in c["evidence"]
                    and c["score"] >= self.config.set_min_score
                )
                for c in link_candidates
            )
            best_job = max(
                job_candidates,
                key=lambda c: (c["score"], c["target"]),
            )
            share = best_job["evidence"].get("blame_share", 0.0)
            if not physical and share >= self.config.blame_dominance:
                best_job["score"] = min(0.9, 0.5 + 0.4 * share)
                best_job["evidence"]["promoted"] = "contention_dominant"
        candidates.sort(
            key=lambda c: (-c["score"], c["kind"], c["target"])
        )
        for candidate in candidates:
            candidate["score"] = round(candidate["score"], 6)
        return {
            "ev": "localization",
            "t": state.now,
            "detector": anomaly.get("detector"),
            "onset": anomaly.get("onset"),
            "candidates": candidates[:top],
            "fault_set": self._fault_set(candidates),
        }

    def _fault_set(self, ranked: List[Dict]) -> List[Dict]:
        """Distinct concurrent causes the ranked evidence supports.

        Duplex link directions collapse to one canonical cause; causes
        below ``set_min_score`` or exonerated by the discriminator never
        enter; at most ``set_max`` causes are claimed. Link candidates
        whose *only* evidence is silence (quiet / stale / subject, with
        neither a capacity drop nor reroute corroboration) form one
        cohort: every hop of a stranded path goes quiet together, so
        silence supports exactly one cause -- the best-ranked of the
        cohort claims it and the rest are suppressed.
        """
        out: List[Dict] = []
        seen: Dict[str, Dict] = {}
        quiet_claimed = False
        for candidate in ranked:
            if candidate["score"] < self.config.set_min_score:
                continue
            if "exonerated" in candidate["evidence"]:
                continue
            quiet_only = candidate["kind"] == "link" and not (
                "capacity_drop" in candidate["evidence"]
                or "rerouted_old_paths" in candidate["evidence"]
            )
            cause = _canonical_cause(candidate["kind"], candidate["target"])
            entry = seen.get(cause)
            if entry is not None:
                # Second direction of an already-claimed duplex pair.
                entry["targets"].append(candidate["target"])
                continue
            if quiet_only:
                if quiet_claimed:
                    continue
                quiet_claimed = True
            if len(out) >= self.config.set_max:
                continue
            entry = {
                "cause": cause,
                "kind": candidate["kind"],
                "targets": [candidate["target"]],
                "score": candidate["score"],
            }
            seen[cause] = entry
            out.append(entry)
        return out
