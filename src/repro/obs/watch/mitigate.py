"""Mitigation hooks: turn a localized root cause into a live action.

The :class:`Mitigator` closes the AIOps loop on a *live* engine (replay
has nothing to mitigate): when a localization's top candidate clears the
confidence bar, it maps the cause to one of three actions and measures
what happened:

* ``link`` -> **cordon**: block the directed link in the router and
  migrate in-flight flows off it via ``NetworkModel.reroute_flows``. If
  nothing migrates (single-path topology, or the chaos layer already
  drained the link) the block is rolled back -- a cordon must never
  strand traffic the fault had not already stranded.
* ``scheduler`` -> **pin fallback**: ``ResilientScheduler.pin_fallback``
  serves the fair-share fallback for a horizon instead of re-trusting a
  scheduler that just crashed; pinned invocations are marked
  ``"pinned"`` so detectors and the twin oracle ignore them.
* ``job`` -> **nudge**: force an immediate reschedule so the scheduler
  re-arranges echelons around the noisy neighbour with fresh state.

Actions are *deferred* through ``engine.schedule_callback`` -- the
localization fires from inside an instrumentation hook, mid-step, where
mutating the network would corrupt the advance in progress. Each action
appends a ``mitigation`` record to the event log at apply time;
recovered JCT is measured by the grader as the JCT delta between the
mitigated and unmitigated faulty runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .detectors import WatchConfig


def _split_key(key: str) -> Optional[Tuple[str, str]]:
    src, sep, dst = key.partition("->")
    if not sep or not src or not dst:
        return None
    return (src, dst)


class Mitigator:
    """Apply at most one mitigation per localized (kind, target)."""

    def __init__(
        self,
        engine,
        config: Optional[WatchConfig] = None,
        event_log=None,
        pin_duration: Optional[float] = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else WatchConfig()
        self.event_log = event_log
        #: Sim-time horizon a scheduler pin lasts; ``None`` self-scales
        #: to half the elapsed run time at apply point.
        self.pin_duration = pin_duration
        self.actions: List[Dict] = []
        self._acted: Set[Tuple[str, str]] = set()

    # ------------------------------------------------------------------

    def consider(self, localization: Dict) -> bool:
        """Schedule a mitigation for the top candidate, if warranted."""
        candidates = localization.get("candidates") or ()
        if not candidates:
            return False
        top = candidates[0]
        if top["score"] < self.config.mitigation_min_score:
            return False
        key = (top["kind"], top["target"])
        if key in self._acted:
            return False
        self._acted.add(key)
        engine = self.engine
        detector = localization.get("detector")
        if top["kind"] == "link":
            apply = lambda: self._cordon(top["target"], detector)
        elif top["kind"] == "scheduler":
            apply = lambda: self._pin_fallback(detector)
        elif top["kind"] == "job":
            apply = lambda: self._nudge(top["target"], detector)
        else:
            return False
        # Defer: we are inside an obs hook, mid engine step.
        engine.schedule_callback(engine.now, apply)
        return True

    # -- actions --------------------------------------------------------

    def _record(self, action: str, target: str, detector, **detail) -> None:
        record: Dict = {
            "action": action,
            "target": target,
            "detector": detector,
        }
        record.update(detail)
        self.actions.append(record)
        if self.event_log is not None:
            self.event_log.append(
                "mitigation", self.engine.now, **record
            )

    def _cordon(self, target: str, detector) -> None:
        key = _split_key(target)
        if key is None:
            return
        engine = self.engine
        router = engine.network.router
        blocker = getattr(router, "block_links", None)
        unblocker = getattr(router, "unblock_links", None)
        if blocker is None or unblocker is None:
            self._record(
                "cordon_link", target, detector, applied=False,
                reason="router cannot block links",
            )
            return
        blocker((key,))
        try:
            migrated, stranded = engine.network.reroute_flows((key,))
        except Exception as exc:  # never leave a half-applied cordon
            unblocker((key,))
            self._record(
                "cordon_link", target, detector, applied=False,
                reason=f"reroute failed: {exc!r}",
            )
            return
        if not migrated:
            # No flow found a detour -- the cordon cannot help here and
            # blocking future admissions would only make things worse.
            unblocker((key,))
            self._record(
                "cordon_link", target, detector, applied=False,
                migrated=0, stranded=len(stranded),
                reason="no alternative path",
            )
            return
        self._record(
            "cordon_link", target, detector, applied=True,
            migrated=len(migrated), stranded=len(stranded),
        )

    def _pin_fallback(self, detector) -> None:
        from ...faults.injector import find_resilient

        engine = self.engine
        resilient = find_resilient(engine.scheduler)
        if resilient is None:
            self._record(
                "pin_fallback", "scheduler", detector, applied=False,
                reason="no ResilientScheduler in chain",
            )
            return
        horizon = (
            self.pin_duration
            if self.pin_duration is not None
            else max(engine.now * 0.5, 1e-9)
        )
        until = engine.now + horizon
        resilient.pin_fallback(until)
        self._record(
            "pin_fallback", "scheduler", detector, applied=True, until=until
        )

    def _nudge(self, target: str, detector) -> None:
        # The callback itself is the mitigation: TIMER events trigger a
        # full reschedule, letting the scheduler re-form echelons with
        # the noisy neighbour's current demand in view.
        self.engine.schedule_callback(self.engine.now, lambda: None)
        self._record("nudge_reschedule", target, detector, applied=True)
