"""Mitigation hooks: turn a localized root cause into a live action.

The :class:`Mitigator` closes the AIOps loop on a *live* engine (replay
has nothing to mitigate): when a localization's top candidate clears the
confidence bar, it maps the cause to one of three actions and measures
what happened:

* ``link`` -> **cordon**: block the directed link in the router and
  migrate in-flight flows off it via ``NetworkModel.reroute_flows``. If
  nothing migrates (single-path topology, or the chaos layer already
  drained the link) the block is rolled back -- a cordon must never
  strand traffic the fault had not already stranded.
* ``scheduler`` -> **pin fallback**: ``ResilientScheduler.pin_fallback``
  serves the fair-share fallback for a horizon instead of re-trusting a
  scheduler that just crashed; pinned invocations are marked
  ``"pinned"`` so detectors and the twin oracle ignore them.
* ``job`` -> **nudge**: force an immediate reschedule so the scheduler
  re-arranges echelons around the noisy neighbour with fresh state.

Actions are *deferred* through ``engine.schedule_callback`` -- the
localization fires from inside an instrumentation hook, mid-step, where
mutating the network would corrupt the advance in progress. Each action
appends a ``mitigation`` record to the event log at apply time;
recovered JCT is measured by the grader as the JCT delta between the
mitigated and unmitigated faulty runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .detectors import WatchConfig


def _split_key(key: str) -> Optional[Tuple[str, str]]:
    src, sep, dst = key.partition("->")
    if not sep or not src or not dst:
        return None
    return (src, dst)


class Mitigator:
    """Apply at most one mitigation per localized (kind, target)."""

    def __init__(
        self,
        engine,
        config: Optional[WatchConfig] = None,
        event_log=None,
        pin_duration: Optional[float] = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else WatchConfig()
        self.event_log = event_log
        #: Sim-time horizon a scheduler pin lasts; ``None`` self-scales
        #: to half the elapsed run time at apply point.
        self.pin_duration = pin_duration
        self.actions: List[Dict] = []
        self._acted: Set[Tuple[str, str]] = set()
        #: Directed link keys currently cordoned (blocked by _cordon and
        #: not yet lifted); the restore hook below un-cordons these.
        self._cordoned: Set[Tuple[str, str]] = set()
        #: Flap-damping state: last reported down time per link, and a
        #: generation counter that cancels pending lifts when the link
        #: goes down again before its hold-down expires.
        self._down_at: Dict[Tuple[str, str], float] = {}
        self._lift_gen: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------

    def consider(self, localization: Dict) -> bool:
        """Schedule a mitigation for the top candidate, if warranted."""
        candidates = localization.get("candidates") or ()
        if not candidates:
            return False
        top = candidates[0]
        if top["score"] < self.config.mitigation_min_score:
            return False
        key = (top["kind"], top["target"])
        if key in self._acted:
            return False
        self._acted.add(key)
        engine = self.engine
        detector = localization.get("detector")
        if top["kind"] == "link":
            evidence = dict(top.get("evidence") or {})
            apply = lambda: self._cordon(top["target"], detector, evidence)
        elif top["kind"] == "scheduler":
            apply = lambda: self._pin_fallback(detector)
        elif top["kind"] == "job":
            apply = lambda: self._nudge(top["target"], detector)
        else:
            return False
        # Defer: we are inside an obs hook, mid engine step.
        engine.schedule_callback(engine.now, apply)
        return True

    def on_fault(self, event: Dict) -> bool:
        """React to a fabric fault report (called by the watch loop).

        A ``link_restore`` (port-up) lifts any cordon this mitigator
        placed on the restored directions and re-arms the link for
        future cordons -- without this, the first cycle of a flapping
        link leaves a permanent cordon that keeps traffic off a healthy
        link for the rest of the run. The lift is *damped* like a
        router's port-flap hold-down: it fires only after the link stays
        up for ``uncordon_holddown_factor`` times its last outage, and a
        re-down before that cancels it. Returns True if a lift was
        scheduled.
        """
        action = event.get("action")
        now = event.get("t", self.engine.now)
        if action in ("link_down", "degrade"):
            for pair in event.get("links") or ():
                key = (pair[0], pair[1])
                self._down_at[key] = now
                # Cancel any pending lift: the link is flapping.
                self._lift_gen[key] = self._lift_gen.get(key, 0) + 1
            return False
        if action != "link_restore" or not self.config.uncordon_on_restore:
            return False
        lifts = []
        hold = 0.0
        for pair in event.get("links") or ():
            key = (pair[0], pair[1])
            if key not in self._cordoned:
                continue
            lifts.append((key, self._lift_gen.get(key, 0)))
            outage = now - self._down_at.get(key, now)
            hold = max(hold, self.config.uncordon_holddown_factor * outage)
        if not lifts:
            return False
        # Defer like every other action: fault reports arrive mid-step.
        self.engine.schedule_callback(
            now + hold, lambda: self._uncordon(lifts)
        )
        return True

    # -- actions --------------------------------------------------------

    def _record(self, action: str, target: str, detector, **detail) -> None:
        record: Dict = {
            "action": action,
            "target": target,
            "detector": detector,
        }
        record.update(detail)
        self.actions.append(record)
        if self.event_log is not None:
            self.event_log.append(
                "mitigation", self.engine.now, **record
            )

    def _cordon(self, target: str, detector, evidence: Optional[Dict] = None) -> None:
        key = _split_key(target)
        if key is None:
            return
        engine = self.engine
        router = engine.network.router
        blocker = getattr(router, "block_links", None)
        unblocker = getattr(router, "unblock_links", None)
        if blocker is None or unblocker is None:
            self._record(
                "cordon_link", target, detector, applied=False,
                reason="router cannot block links",
            )
            return
        blocker((key,))
        try:
            migrated, stranded = engine.network.reroute_flows((key,))
        except Exception as exc:  # never leave a half-applied cordon
            unblocker((key,))
            self._record(
                "cordon_link", target, detector, applied=False,
                reason=f"reroute failed: {exc!r}",
            )
            return
        # A link already drained by the chaos layer has nothing left to
        # migrate -- but if earlier reroutes demonstrably found detours
        # off this link, keeping the cordon is a safe *prophylactic*
        # block: it stops traffic from returning to a flapping link
        # between its down cycles (the restore hook lifts it once the
        # link stays up). Without that path-diversity evidence a block
        # would strand future admissions, so roll it back.
        diverse = bool((evidence or {}).get("rerouted_old_paths"))
        if not migrated and not (diverse and not stranded):
            unblocker((key,))
            self._record(
                "cordon_link", target, detector, applied=False,
                migrated=0, stranded=len(stranded),
                reason="no alternative path",
            )
            return
        self._cordoned.add(key)
        self._record(
            "cordon_link", target, detector, applied=True,
            migrated=len(migrated), stranded=len(stranded),
            prophylactic=not migrated,
        )

    def _uncordon(self, lifts) -> None:
        engine = self.engine
        unblocker = getattr(engine.network.router, "unblock_links", None)
        if unblocker is None:
            return
        lifted = [
            key
            for key, generation in lifts
            if key in self._cordoned
            and self._lift_gen.get(key, 0) == generation
        ]
        if not lifted:
            return  # link re-downed during the hold, or already lifted
        unblocker(tuple(lifted))
        for key in lifted:
            self._cordoned.discard(key)
            target = f"{key[0]}->{key[1]}"
            # Re-arm: the next down of this link may cordon it again.
            self._acted.discard(("link", target))
            self._record("uncordon_link", target, None, applied=True)
        # Let the scheduler fold the recovered capacity back in now
        # rather than at the next organic state change.
        engine.schedule_callback(engine.now, lambda: None)

    def _pin_fallback(self, detector) -> None:
        from ...faults.injector import find_resilient

        engine = self.engine
        resilient = find_resilient(engine.scheduler)
        if resilient is None:
            self._record(
                "pin_fallback", "scheduler", detector, applied=False,
                reason="no ResilientScheduler in chain",
            )
            return
        horizon = (
            self.pin_duration
            if self.pin_duration is not None
            else max(engine.now * 0.5, 1e-9)
        )
        until = engine.now + horizon
        resilient.pin_fallback(until)
        self._record(
            "pin_fallback", "scheduler", detector, applied=True, until=until
        )

    def _nudge(self, target: str, detector) -> None:
        # The callback itself is the mitigation: TIMER events trigger a
        # full reschedule, letting the scheduler re-form echelons with
        # the noisy neighbour's current demand in view.
        self.engine.schedule_callback(self.engine.now, lambda: None)
        self._record("nudge_reschedule", target, detector, applied=True)
