"""The generated AIOps scenario suite: paradigm x fault-kind grid.

Each :class:`Scenario` is a fully reproducible chaos experiment: one
training paradigm on its natural fabric, one fault kind injected at a
fixed *fraction* of the workload's nominal (fault-free) JCT, plus the
watch-loop heartbeat period scaled to the same clock. Nominal JCTs come
from a clean probe run per (paradigm, scheduler) -- cached per process --
so the same grid adapts to any scheduler or model change without
hand-tuned absolute times.

Paradigm fabrics:

* ``pp``   -- GPipe on a 4-host linear chain; the fault hits the ``h1-h2``
  mid-pipeline bottleneck. Single path: a downed link *strands* flows,
  so outages carry a restore (a permanent chain cut is a deadlock, not a
  scheduling problem).
* ``dp`` / ``tp`` / ``fsdp`` -- collective paradigms on a 4-host big
  switch; the fault hits one host's uplink (``h1-core``).
* ``ps``   -- parameter server on a 5-host big switch; the fault hits the
  server's uplink (``h4-core``), the incast bottleneck.
* ``ls``   -- DP all-reduce on a 2x2 leaf-spine fabric under ECMP. The
  only multipath scenario: a degraded ``leaf0-spine0`` uplink leaves a
  healthy spine, so cordon mitigation can actually recover JCT.

Every engine is wrapped in a ResilientScheduler (the watch loop's
pin-fallback mitigation needs one, and ``crash_scheduler`` faults
require it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...analysis import job_completion_time
from ...core import FlowIdAllocator, use_flow_id_allocator
from ...core.units import gbps, megabytes
from ...faults import FaultSchedule, ResilientScheduler, parse_fault_spec
from ...scheduling import make_scheduler
from ...simulator import Engine
from ...topology import big_switch, leaf_spine, linear_chain
from ...topology.routing import EcmpRouter
from ...workloads import (
    build_dp_allreduce,
    build_dp_ps,
    build_fsdp,
    build_pp_gpipe,
    build_tp_megatron,
)
from ...workloads.model import uniform_model

PARADIGM_KEYS = ("pp", "dp", "ps", "tp", "fsdp", "ls")
FAULT_KINDS = ("clean", "link_down", "degrade", "flap", "crash_scheduler")

#: Concurrent / correlated fault kinds (see :func:`build_scenarios`):
#: ``link_and_crash`` -- a link outage with a scheduler crash landing
#: mid-outage; ``flap_pair`` -- correlated brown-out flaps on two links
#: (a sick spine browns out both of its leaf uplinks together);
#: ``cascade`` -- a degrade whose displaced load then takes a second
#: link down; ``hot_neighbor`` -- *no* fault at all: a second tenant
#: job lands mid-run and contends for the fabric, the confound the
#: localizer's discriminator must blame on the tenant, not a link.
MULTI_FAULT_KINDS = ("link_and_crash", "flap_pair", "cascade", "hot_neighbor")

#: Fault onset as a fraction of the nominal JCT: late enough for the
#: detectors to finish calibrating, early enough to matter.
FAULT_AT = 0.45
#: Heartbeat period as a fraction of the nominal JCT.
HEARTBEAT_FRAC = 1.0 / 50.0

_JOB_ID = "job"
#: Job id of the hot-neighbour tenant in ``hot_neighbor`` scenarios.
_NEIGHBOR_ID = "hog"

#: Paradigms where a late tenant actually hurts the incumbent: on the
#: single-path pp chain, echelon's deadline priorities starve the late
#: arrival instead, so there is no confound to detect (probed: victim
#: JCT is bit-identical with and without the neighbour).
_NEIGHBOR_PARADIGMS = ("dp", "ps", "tp", "fsdp", "ls")

#: Second duplex link per paradigm for correlated / cascading faults.
_SECOND_LINK = {
    "pp": "h2-h3",
    "dp": "h2-core",
    "ps": "h0-core",
    "tp": "h2-core",
    "fsdp": "h2-core",
    # Same spine as the primary fault link: a sick spine0 touches both
    # of its leaf uplinks, the "correlated flaps" signature.
    "ls": "leaf1-spine0",
}


@dataclass(frozen=True)
class Scenario:
    """One graded chaos experiment (see :func:`build_scenarios`)."""

    name: str  # "<paradigm>/<fault kind>"
    paradigm: str
    scheduler: str
    fault_kind: str
    spec: Optional[str]  # fault spec string, None for clean
    nominal_jct: float
    heartbeat: float
    fault_link: Optional[str]  # duplex "a-b" the fault targets
    #: Hot-neighbour tenant job id (``hot_neighbor`` scenarios only).
    neighbor: Optional[str] = None
    #: Onset time of the injected disturbance (fault or neighbour).
    fault_at: float = 0.0

    @property
    def schedule(self) -> Optional[FaultSchedule]:
        return None if self.spec is None else parse_fault_spec(self.spec)

    def ground_truth(self) -> List[Dict]:
        schedule = self.schedule
        truth = [] if schedule is None else schedule.ground_truth()
        if self.neighbor is not None:
            # The confound's "fault" is a tenant, not infrastructure:
            # correct localization blames the job.
            truth.append(
                {
                    "kind": "job",
                    "action": "hot_neighbor",
                    "targets": [self.neighbor],
                    "time": self.fault_at,
                    "count": 1,
                }
            )
        return sorted(truth, key=lambda e: (e["time"], e["action"]))


def _model():
    return uniform_model(
        "aiops",
        4,
        param_bytes_per_layer=megabytes(16),
        activation_bytes=megabytes(8),
        forward_time=0.004,
    )


def _blueprint(paradigm: str, job_id: str = _JOB_ID) -> Tuple:
    """Fresh (topology, router, job, duplex fault link) for one paradigm."""
    model = _model()
    hosts4 = [f"h{i}" for i in range(4)]
    if paradigm == "pp":
        return (
            linear_chain(4, gbps(3)),
            None,
            build_pp_gpipe(job_id, model, hosts4, 8),
            "h1-h2",
        )
    if paradigm == "dp":
        return (
            big_switch(4, gbps(10)),
            None,
            build_dp_allreduce(
                job_id, model, hosts4, bucket_bytes=megabytes(8)
            ),
            "h1-core",
        )
    if paradigm == "ps":
        hosts5 = [f"h{i}" for i in range(5)]
        return (
            big_switch(5, gbps(10)),
            None,
            build_dp_ps(
                job_id,
                model,
                hosts5[:4],
                hosts5[4],
                bucket_bytes=megabytes(8),
            ),
            "h4-core",
        )
    if paradigm == "tp":
        return (
            big_switch(4, gbps(10)),
            None,
            build_tp_megatron(job_id, model, hosts4),
            "h1-core",
        )
    if paradigm == "fsdp":
        return (
            big_switch(4, gbps(10)),
            None,
            build_fsdp(job_id, model, hosts4),
            "h1-core",
        )
    if paradigm == "ls":
        topology = leaf_spine(2, 2, gbps(10))
        # Leaf-alternating ring order (h0,h1 sit on leaf0; h2,h3 on
        # leaf1): every ring hop crosses the spine layer, so ECMP
        # spreads flows over both spines and a spine uplink fault has
        # traffic to hit -- and the cordon mitigation has a healthy
        # spine to migrate it to.
        return (
            topology,
            EcmpRouter(topology),
            build_dp_allreduce(
                job_id,
                model,
                ["h0", "h2", "h1", "h3"],
                bucket_bytes=megabytes(8),
            ),
            "leaf0-spine0",
        )
    raise ValueError(
        f"unknown paradigm {paradigm!r}; expected one of {PARADIGM_KEYS}"
    )


def make_engine(
    paradigm: str,
    scheduler: str = "echelon",
    faults=None,
    instrumentation=None,
    sanitizer=None,
    neighbor_at: Optional[float] = None,
) -> Engine:
    """A fresh single-use engine for one scenario run.

    The engine gets a private flow-id allocator so every scenario is the
    same experiment no matter how many flows the process created before
    it (ECMP hashes flow ids into path choices) -- and without clobbering
    the process-wide id stream other experiments may be using.

    ``neighbor_at`` submits a second, identical tenant job (id
    ``"hog"``) arriving at that time on the same hosts -- the
    hot-neighbour contention confound.
    """
    with use_flow_id_allocator(FlowIdAllocator()):
        topology, router, job, _ = _blueprint(paradigm)
        engine = Engine(
            topology,
            ResilientScheduler(make_scheduler(scheduler)),
            router=router,
            instrumentation=instrumentation,
            sanitizer=sanitizer,
            faults=faults,
        )
        job.submit_to(engine)
        if neighbor_at is not None:
            _, _, hog, _ = _blueprint(paradigm, job_id=_NEIGHBOR_ID)
            hog.submit_to(engine, at_time=neighbor_at)
    return engine


_NOMINAL_CACHE: Dict[Tuple[str, str], float] = {}


def nominal_jct(paradigm: str, scheduler: str = "echelon") -> float:
    """Fault-free JCT from a clean probe run (cached per process)."""
    key = (paradigm, scheduler)
    if key not in _NOMINAL_CACHE:
        # The probe is a throwaway timing reference; sanitizing it would
        # only slow the suite down without checking anything new.
        engine = make_engine(paradigm, scheduler, sanitizer=False)
        trace = engine.run()
        _NOMINAL_CACHE[key] = job_completion_time(trace, _JOB_ID)
    return _NOMINAL_CACHE[key]


def _fault_spec(
    kind: str, link: str, at: float, jct: float, link2: Optional[str] = None
) -> Optional[str]:
    if kind in ("clean", "hot_neighbor"):
        return None
    if kind == "link_and_crash":
        # Concurrent, independent faults: the crash lands mid-outage, so
        # the localizer must claim *both* causes in one fault set.
        return (
            f"link_down:{link}@{at:.6g}+{0.3 * jct:.6g};"
            f" crash_scheduler@{at + 0.05 * jct:.6g}"
        )
    if kind == "flap_pair":
        # Correlated brown-out flaps: one sick device touching two
        # duplex links at the same moments.
        flap = f"@{at:.6g},period={0.4 * jct:.6g},count=2,factor=0.2"
        return f"flap:{link}{flap}; flap:{link2}{flap}"
    if kind == "cascade":
        # A degrade whose displaced load then takes a second link down.
        return (
            f"degrade:{link}@{at:.6g}+{0.4 * jct:.6g},factor=0.3;"
            f" link_down:{link2}@{at + 0.15 * jct:.6g}+{0.3 * jct:.6g}"
        )
    if kind == "link_down":
        # Always restored: on single-path fabrics a permanent cut is a
        # deadlock (every crossing flow stranded at rate zero forever).
        return f"link_down:{link}@{at:.6g}+{0.3 * jct:.6g}"
    if kind == "degrade":
        return f"degrade:{link}@{at:.6g}+{0.4 * jct:.6g},factor=0.3"
    if kind == "flap":
        # Brown-out flap (factor set): the link cycles between degraded
        # and nominal capacity but stays *up*, so the chaos layer never
        # reroutes for us -- recovering JCT here is entirely on the
        # watch loop's cordon (and the restore-triggered un-cordon, which
        # keeps the cordon from outliving the flap).
        return (
            f"flap:{link}@{at:.6g},period={0.4 * jct:.6g},count=2,factor=0.2"
        )
    if kind == "crash_scheduler":
        return f"crash_scheduler@{at:.6g}"
    raise ValueError(
        f"unknown fault kind {kind!r}; expected one of "
        f"{FAULT_KINDS + MULTI_FAULT_KINDS}"
    )


def build_scenarios(
    paradigms: Optional[Sequence[str]] = None,
    kinds: Optional[Sequence[str]] = None,
    scheduler: str = "echelon",
) -> List[Scenario]:
    """The scenario grid, deterministic order: paradigm-major."""
    paradigms = tuple(paradigms) if paradigms is not None else PARADIGM_KEYS
    kinds = tuple(kinds) if kinds is not None else FAULT_KINDS
    scenarios: List[Scenario] = []
    for paradigm in paradigms:
        jct = nominal_jct(paradigm, scheduler)
        at = FAULT_AT * jct
        _, _, _, link = _blueprint(paradigm)
        for kind in kinds:
            if kind == "hot_neighbor" and paradigm not in _NEIGHBOR_PARADIGMS:
                continue
            scenarios.append(
                Scenario(
                    name=f"{paradigm}/{kind}",
                    paradigm=paradigm,
                    scheduler=scheduler,
                    fault_kind=kind,
                    spec=_fault_spec(
                        kind, link, at, jct, _SECOND_LINK.get(paradigm)
                    ),
                    nominal_jct=jct,
                    heartbeat=HEARTBEAT_FRAC * jct,
                    fault_link=(
                        None
                        if kind in ("clean", "crash_scheduler", "hot_neighbor")
                        else link
                    ),
                    neighbor=_NEIGHBOR_ID if kind == "hot_neighbor" else None,
                    fault_at=at,
                )
            )
    return scenarios


#: The CI / bench subset: one single-path and one multipath fabric,
#: clean (FP check) + the two faults the acceptance bar names.
SMOKE_PARADIGMS = ("pp", "dp", "ls")
SMOKE_KINDS = ("clean", "link_down", "degrade")

#: Multi-fault grid defaults (see MULTI_FAULT_KINDS): the smoke subset
#: keeps one single-path and one multipath fabric.
MULTI_PARADIGMS = ("pp", "dp", "ls")
MULTI_SMOKE_PARADIGMS = ("pp", "ls")
