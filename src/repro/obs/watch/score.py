"""Score the watch loop against the chaos layer's ground truth.

For every :class:`~repro.obs.watch.scenarios.Scenario` the grader runs
the instrumented simulation with a live watch loop attached and measures
the four metric families ``repro aiops score`` reports:

* **detection latency** -- sim-time from fault onset to the first
  anomaly (absolute, and as a fraction of the scenario's nominal JCT);
* **localization accuracy** -- whether the *first* post-onset
  localization names the injected cause top-1 / within the top-3
  (either direction of a duplex link counts; ``crash_scheduler``
  expects the ``scheduler`` candidate);
* **false positives** -- anomalies on the grid's fault-free runs
  (the clean sweep must stay at zero);
* **recovered JCT** -- for fault scenarios, a second run with
  mitigation enabled; recovery is the JCT delta between the
  unmitigated and mitigated faulty runs (positive = mitigation helped).

Ground truth enters *only* here, via
:meth:`~repro.faults.FaultSchedule.ground_truth` -- the detectors and
localizer never see fault payloads (see :mod:`repro.obs.watch.stream`).
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence

from ...analysis import job_completion_time
from .channel import NoiseSpec, TelemetryChannel, parse_noise_spec
from .detectors import WatchConfig, noise_hardened_config
from .scenarios import (
    SMOKE_KINDS,
    SMOKE_PARADIGMS,
    Scenario,
    _JOB_ID,
    build_scenarios,
    make_engine,
)
from .watch import WatchLoop

#: Report schema version, bumped on incompatible layout changes.
AIOPS_SCORE_VERSION = 2


def scenario_seed(name: str, seed: int = 0) -> int:
    """Per-scenario channel seed: stable, but distinct across scenarios.

    Mixing the scenario name in keeps one grid seed from giving every
    scenario the identical loss pattern (which would correlate failures
    across the whole grid), while staying reproducible run-to-run.
    """
    return (zlib.crc32(name.encode("utf-8")) ^ (seed & 0xFFFFFFFF)) & 0xFFFFFFFF


def _noise_spec(noise) -> Optional[NoiseSpec]:
    if noise is None:
        return None
    spec = noise if isinstance(noise, NoiseSpec) else parse_noise_spec(noise)
    return None if spec.is_noop else spec


def _make_channel(
    noise, scenario: Scenario, seed: int
) -> Optional[TelemetryChannel]:
    spec = _noise_spec(noise)
    if spec is None:
        return None
    return TelemetryChannel(spec, seed=scenario_seed(scenario.name, seed))


def run_scenario(
    scenario: Scenario,
    config: Optional[WatchConfig] = None,
    mitigate: bool = False,
    sanitizer=None,
    noise=None,
    seed: int = 0,
) -> Dict:
    """One instrumented run with a live watch loop attached.

    ``noise`` (a spec string or :class:`NoiseSpec`) interposes a
    :class:`TelemetryChannel` between the event log and the loop; the
    channel is seeded from ``(scenario name, seed)`` so a grid run is
    reproducible end to end. With no explicit ``config`` the detectors
    take :func:`noise_hardened_config` for the channel in play, which is
    the plain default config whenever the channel is clean.
    """
    from ..instrumentation import Instrumentation
    from ..jsonl import JsonlEventLog

    if config is None:
        config = noise_hardened_config(_noise_spec(noise))
    log = JsonlEventLog()
    obs = Instrumentation(event_log=log, log_link_samples=True)
    engine = make_engine(
        scenario.paradigm,
        scenario.scheduler,
        faults=scenario.schedule,
        instrumentation=obs,
        sanitizer=sanitizer,
        neighbor_at=(
            scenario.fault_at if scenario.neighbor is not None else None
        ),
    )
    loop = WatchLoop(config)
    loop.attach(
        log,
        engine=engine,
        mitigate=mitigate,
        heartbeat=scenario.heartbeat,
        channel=_make_channel(noise, scenario, seed),
    )
    trace = engine.run()
    loop.finish()
    return {
        "loop": loop,
        "jct": job_completion_time(trace, _JOB_ID),
        "log": log,
        "engine": engine,
    }


def _candidate_hits(candidates: Sequence[Dict], truth: Sequence[Dict]) -> bool:
    for candidate in candidates:
        for entry in truth:
            if entry["kind"] == "scheduler":
                if candidate["kind"] == "scheduler":
                    return True
            elif (
                candidate["kind"] == entry["kind"]
                and candidate["target"] in entry["targets"]
            ):
                return True
    return False


def _cause_matches(claim: Dict, entry: Dict) -> bool:
    """One fault-set claim vs one ground-truth entry."""
    if entry["kind"] == "scheduler":
        return claim["kind"] == "scheduler"
    if claim["kind"] != entry["kind"]:
        return False
    return any(target in entry["targets"] for target in claim["targets"])


def grade_fault_sets(
    localizations: Sequence[Dict], truth: Sequence[Dict], nominal_jct: float
) -> Dict:
    """Per-fault precision/recall + latency from claimed fault sets.

    The claims are the union of every localization's ``fault_set``
    entries over the run (a cascade's causes surface one at a time), so
    a spurious cause claimed anywhere costs precision, a truth entry
    never claimed costs recall, and each matched entry's latency runs
    from its injection to the first fault set that named it.
    """
    claims: Dict[str, Dict] = {}
    for localization in localizations:
        for entry in localization.get("fault_set") or ():
            claim = claims.setdefault(
                entry["cause"],
                {
                    "kind": entry["kind"],
                    "targets": set(),
                    "first_t": localization["t"],
                },
            )
            claim["targets"].update(entry["targets"])
    matched_truth: Dict[int, float] = {}
    matched_claims = set()
    for index, entry in enumerate(truth):
        for cause, claim in claims.items():
            if _cause_matches(claim, entry):
                matched_claims.add(cause)
                best = matched_truth.get(index)
                latency = max(0.0, claim["first_t"] - entry["time"])
                if best is None or latency < best:
                    matched_truth[index] = latency
    row: Dict = {
        "claimed": sorted(claims),
        "claims": len(claims),
        "matched_claims": len(matched_claims),
        "matched": len(matched_truth),
        "faults": len(truth),
        "precision": (
            len(matched_claims) / len(claims) if claims else None
        ),
        "recall": len(matched_truth) / len(truth) if truth else None,
        "per_fault": [
            {
                "kind": entry["kind"],
                "action": entry["action"],
                "targets": entry["targets"],
                "time": entry["time"],
                "claimed": index in matched_truth,
                "latency": matched_truth.get(index),
                "latency_frac": (
                    matched_truth[index] / nominal_jct
                    if index in matched_truth and nominal_jct > 0
                    else None
                ),
            }
            for index, entry in enumerate(truth)
        ],
    }
    return row


def grade_scenario(
    scenario: Scenario,
    config: Optional[WatchConfig] = None,
    mitigate: bool = True,
    sanitizer=None,
    noise=None,
    seed: int = 0,
) -> Dict:
    """Run and score one scenario; returns a flat JSON-able row."""
    base = run_scenario(
        scenario,
        config,
        mitigate=False,
        sanitizer=sanitizer,
        noise=noise,
        seed=seed,
    )
    loop: WatchLoop = base["loop"]
    row: Dict = {
        "scenario": scenario.name,
        "paradigm": scenario.paradigm,
        "fault_kind": scenario.fault_kind,
        "scheduler": scenario.scheduler,
        "nominal_jct": scenario.nominal_jct,
        "jct": base["jct"],
        "anomalies": len(loop.anomalies),
        "anomaly_detectors": sorted(
            {a["detector"] for a in loop.anomalies}
        ),
    }
    truth = scenario.ground_truth()
    if not truth:
        # Clean run: every anomaly is by definition a false positive.
        row["false_positives"] = len(loop.anomalies)
        return row
    fault_time = min(entry["time"] for entry in truth)
    row["fault_time"] = fault_time
    first_index = next(
        (
            i
            for i, anomaly in enumerate(loop.anomalies)
            if anomaly["t"] >= fault_time
        ),
        None,
    )
    row["premature_anomalies"] = (
        len(loop.anomalies) if first_index is None else first_index
    )
    row["detected"] = first_index is not None
    if first_index is not None:
        anomaly = loop.anomalies[first_index]
        localization = loop.localizations[first_index]
        latency = anomaly["t"] - fault_time
        row["detection_latency"] = latency
        row["detection_latency_frac"] = latency / scenario.nominal_jct
        row["first_detector"] = anomaly["detector"]
        candidates = localization.get("candidates") or ()
        row["top_candidate"] = (
            {k: candidates[0][k] for k in ("kind", "target", "score")}
            if candidates
            else None
        )
        row["top1"] = _candidate_hits(candidates[:1], truth)
        row["top3"] = _candidate_hits(candidates[:3], truth)
    row["fault_sets"] = grade_fault_sets(
        loop.localizations, truth, scenario.nominal_jct
    )
    if mitigate:
        mitigated = run_scenario(
            scenario,
            config,
            mitigate=True,
            sanitizer=sanitizer,
            noise=noise,
            seed=seed,
        )
        actions = mitigated["loop"].mitigator.actions
        row["jct_mitigated"] = mitigated["jct"]
        row["recovered_jct"] = base["jct"] - mitigated["jct"]
        row["mitigations"] = actions
        row["mitigation_applied"] = any(a.get("applied") for a in actions)
    return row


def aiops_score(
    paradigms: Optional[Sequence[str]] = None,
    kinds: Optional[Sequence[str]] = None,
    scheduler: str = "echelon",
    mitigate: bool = True,
    config: Optional[WatchConfig] = None,
    smoke: bool = False,
    sanitizer=None,
    noise=None,
    seed: int = 0,
) -> Dict:
    """Grade the scenario grid; the ``repro aiops score`` report.

    Scenario order is deterministic (paradigm-major, then fault kind)
    and each scenario's telemetry channel is seeded from its name and
    ``seed``, so grids are reproducible and resumable per (noise, seed).
    """
    if smoke:
        paradigms = paradigms if paradigms is not None else SMOKE_PARADIGMS
        kinds = kinds if kinds is not None else SMOKE_KINDS
    scenarios = build_scenarios(paradigms, kinds, scheduler)
    rows = [
        grade_scenario(
            s,
            config,
            mitigate=mitigate,
            sanitizer=sanitizer,
            noise=noise,
            seed=seed,
        )
        for s in scenarios
    ]
    clean = [r for r in rows if "false_positives" in r]
    faulty = [r for r in rows if "detected" in r]
    detected = [r for r in faulty if r["detected"]]
    summary: Dict = {
        "scenarios": len(rows),
        "detection": {
            "faulty_runs": len(faulty),
            "detected": len(detected),
            "rate": len(detected) / len(faulty) if faulty else None,
            "mean_latency": (
                sum(r["detection_latency"] for r in detected) / len(detected)
                if detected
                else None
            ),
            "mean_latency_frac": (
                sum(r["detection_latency_frac"] for r in detected)
                / len(detected)
                if detected
                else None
            ),
        },
        "localization": {
            "scored": len(detected),
            "top1": sum(1 for r in detected if r["top1"]),
            "top3": sum(1 for r in detected if r["top3"]),
            "top1_accuracy": (
                sum(1 for r in detected if r["top1"]) / len(detected)
                if detected
                else None
            ),
            "top3_accuracy": (
                sum(1 for r in detected if r["top3"]) / len(detected)
                if detected
                else None
            ),
        },
        "false_positive": {
            "clean_runs": len(clean),
            "false_positives": sum(r["false_positives"] for r in clean),
            "rate": (
                sum(1 for r in clean if r["false_positives"]) / len(clean)
                if clean
                else None
            ),
        },
    }
    graded_sets = [r["fault_sets"] for r in faulty if r.get("fault_sets")]
    total_claims = sum(g["claims"] for g in graded_sets)
    total_faults = sum(g["faults"] for g in graded_sets)
    summary["fault_sets"] = {
        "faults": total_faults,
        "matched": sum(g["matched"] for g in graded_sets),
        "claims": total_claims,
        "matched_claims": sum(g["matched_claims"] for g in graded_sets),
        "precision": (
            sum(g["matched_claims"] for g in graded_sets) / total_claims
            if total_claims
            else None
        ),
        "recall": (
            sum(g["matched"] for g in graded_sets) / total_faults
            if total_faults
            else None
        ),
    }
    if mitigate:
        summary["mitigation"] = {
            "attempted": len(faulty),
            "applied": sum(1 for r in faulty if r.get("mitigation_applied")),
            "recovered_jct_total": sum(
                r.get("recovered_jct", 0.0) for r in faulty
            ),
        }
    noise_spec = None
    if noise is not None:
        noise_spec = (
            noise.describe()
            if isinstance(noise, NoiseSpec)
            else parse_noise_spec(noise).describe()
        )
    return {
        "version": AIOPS_SCORE_VERSION,
        "scheduler": scheduler,
        "smoke": smoke,
        "noise": noise_spec,
        "seed": seed,
        "summary": summary,
        "rows": rows,
    }


def render_score(report: Dict) -> str:
    """Human-readable table + summary for ``repro aiops score``."""
    lines: List[str] = []
    header = (
        f"{'scenario':<22}{'anoms':>6}{'det':>5}{'latency':>10}"
        f"{'top1':>6}{'top3':>6}{'FP':>4}{'recovered':>11}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in report["rows"]:
        if "false_positives" in row:
            detected = latency = top1 = top3 = "-"
            fp = str(row["false_positives"])
            recovered = "-"
        else:
            detected = "yes" if row["detected"] else "NO"
            latency = (
                f"{row['detection_latency']:.3f}" if row["detected"] else "-"
            )
            top1 = ("Y" if row["top1"] else "n") if row["detected"] else "-"
            top3 = ("Y" if row["top3"] else "n") if row["detected"] else "-"
            fp = "-"
            recovered = (
                f"{row['recovered_jct']:+.3f}"
                if "recovered_jct" in row
                else "-"
            )
        lines.append(
            f"{row['scenario']:<22}{row['anomalies']:>6}{detected:>5}"
            f"{latency:>10}{top1:>6}{top3:>6}{fp:>4}{recovered:>11}"
        )
    summary = report["summary"]
    det = summary["detection"]
    loc = summary["localization"]
    fp = summary["false_positive"]
    lines.append("")
    if det["faulty_runs"]:
        lines.append(
            f"detection: {det['detected']}/{det['faulty_runs']}"
            + (
                f", mean latency {det['mean_latency']:.3f}s"
                f" ({det['mean_latency_frac']:.1%} of nominal JCT)"
                if det["detected"]
                else ""
            )
        )
        lines.append(
            f"localization: top-1 {loc['top1']}/{loc['scored']}"
            f" ({loc['top1_accuracy']:.0%}), top-3 {loc['top3']}/{loc['scored']}"
            f" ({loc['top3_accuracy']:.0%})"
            if loc["scored"]
            else "localization: no detections to score"
        )
    if fp["clean_runs"]:
        lines.append(
            f"false positives: {fp['false_positives']} across "
            f"{fp['clean_runs']} clean runs"
        )
    sets = summary.get("fault_sets") or {}
    if sets.get("faults"):
        lines.append(
            f"fault sets: precision {sets['precision']:.0%}"
            f" ({sets['matched_claims']}/{sets['claims']} claims),"
            f" recall {sets['recall']:.0%}"
            f" ({sets['matched']}/{sets['faults']} faults)"
        )
    if "mitigation" in summary:
        mit = summary["mitigation"]
        lines.append(
            f"mitigation: applied in {mit['applied']}/{mit['attempted']}"
            f" faulty runs, recovered {mit['recovered_jct_total']:+.3f}s JCT"
        )
    if report.get("noise"):
        lines.append(f"noise: {report['noise']} (seed {report.get('seed', 0)})")
    return "\n".join(lines)
