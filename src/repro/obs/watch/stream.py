"""Shared online view of the obs event feed.

:class:`StreamState` is the one mutable structure every detector and the
localizer read: which flows are outstanding and over which links, the
telemetry health of every sampled link, recent reroute/fallback records,
and per-group delivery progress. It is built *exclusively* from the
observable event stream -- ``fault`` events (the injected ground truth)
only advance the clock; their payloads are never read, so detection and
localization cannot cheat off the chaos layer's own labels. The grader
(:mod:`repro.obs.watch.score`) is the only consumer of ground truth.

Feeding the same event sequence always produces the same state, which is
what makes live detection and offline JSONL replay bit-for-bit equal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple


class LinkHealth:
    """Telemetry-derived health of one directed link."""

    __slots__ = (
        "nominal",
        "capacity",
        "last_seen",
        "last_busy",
        "first_seen",
        "peak_rate",
    )

    def __init__(self, capacity: float, now: float) -> None:
        self.nominal = capacity
        self.capacity = capacity
        self.first_seen = now
        self.last_seen = now
        #: Last sample time the link carried a nonzero rate.
        self.last_busy: Optional[float] = None
        self.peak_rate = 0.0

    def observe(self, now: float, utilization: float, capacity: float) -> None:
        self.capacity = capacity
        self.nominal = max(self.nominal, capacity)
        self.last_seen = now
        rate = utilization * capacity
        if rate > 1e-12:
            self.last_busy = now
            self.peak_rate = max(self.peak_rate, rate)

    @property
    def capacity_drop(self) -> float:
        """Fraction of the nominal capacity currently missing (0..1)."""
        if self.nominal <= 0:
            return 0.0
        return max(0.0, 1.0 - self.capacity / self.nominal)


class GroupProgress:
    """Injected-vs-delivered accounting of one EchelonFlow group."""

    __slots__ = ("injected", "delivered", "first_start", "last_finish", "worst")

    def __init__(self) -> None:
        self.injected = 0
        self.delivered = 0
        self.first_start: Optional[float] = None
        self.last_finish: Optional[float] = None
        self.worst = 0.0


class StreamState:
    """Normalized, order-dependent view of the event stream so far.

    ``pair_symmetry`` (default on) lets the two directions of a duplex
    link share their observed nominal capacity: every fabric in
    :mod:`repro.topology.fabrics` is built from symmetric duplex pairs,
    and a direction that is first sampled *while already degraded*
    (e.g. the backward-gradient direction of a pipeline link) would
    otherwise look healthy at its reduced speed forever. Disable it for
    hand-built asymmetric topologies.
    """

    def __init__(self, pair_symmetry: bool = True) -> None:
        self.pair_symmetry = pair_symmetry
        #: canonical (min, max) endpoint pair -> best capacity seen
        #: in either direction.
        self._pair_nominal: Dict[Tuple[str, str], float] = {}
        self.now = 0.0
        self.started: Optional[float] = None
        self.events_seen = 0
        #: flow id -> (path link keys, job, group, size).
        self.active_flows: Dict[int, Dict] = {}
        #: link key -> flow ids currently pinned across it.
        self.outstanding_on_link: Dict[str, Set[int]] = {}
        self.links: Dict[str, LinkHealth] = {}
        self.groups: Dict[str, GroupProgress] = {}
        self.deliveries = 0
        self.last_delivery: Optional[float] = None
        #: (t, old path keys, new path keys) reroute records, append order.
        self.reroutes: List[Tuple[float, Tuple[str, ...], Tuple[str, ...]]] = []
        #: (t, kind) ResilientScheduler degradation records.
        self.fallbacks: List[Tuple[float, str]] = []
        #: job id -> cumulative delivered bytes / outstanding bytes.
        self.job_delivered_bytes: Dict[str, float] = {}
        self.job_outstanding_bytes: Dict[str, float] = {}
        self.jobs_completed: Set[str] = set()

    @property
    def elapsed(self) -> float:
        return self.now - (self.started if self.started is not None else self.now)

    def outstanding_flows(self) -> int:
        return len(self.active_flows)

    # ------------------------------------------------------------------

    def observe(self, event: Dict) -> None:
        """Fold one event into the state (the only mutation entry point)."""
        self.events_seen += 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            if self.started is None:
                self.started = t
            self.now = max(self.now, t)
        kind = event.get("ev")
        if kind == "flow_injected":
            self._on_injected(event)
        elif kind == "flow_finished":
            self._on_finished(event)
        elif kind == "flow_rerouted":
            self._on_rerouted(event)
        elif kind == "link_sample":
            self._on_link_sample(event)
        elif kind == "scheduler_fallback":
            self.fallbacks.append((self.now, event.get("kind", "unknown")))
        elif kind == "job_completed":
            job = event.get("job")
            if job is not None:
                self.jobs_completed.add(job)
        # "fault" events are deliberately not parsed: ground truth stays
        # invisible to the detection path (see module docstring).

    def _path_keys(self, event: Dict) -> Tuple[str, ...]:
        path = event.get("path") or ()
        return tuple(str(hop[0]) for hop in path if hop)

    def _on_injected(self, event: Dict) -> None:
        flow_id = event.get("flow_id")
        if flow_id is None:
            return
        keys = self._path_keys(event)
        size = event.get("size") or 0.0
        job = event.get("job")
        info = {
            "path": keys,
            "job": job,
            "group": event.get("group"),
            "size": size,
            "injected": self.now,
        }
        self.active_flows[flow_id] = info
        for key in keys:
            self.outstanding_on_link.setdefault(key, set()).add(flow_id)
        group = event.get("group")
        if group is not None:
            progress = self.groups.setdefault(group, GroupProgress())
            progress.injected += 1
            if progress.first_start is None:
                progress.first_start = self.now
        if job is not None:
            self.job_outstanding_bytes[job] = (
                self.job_outstanding_bytes.get(job, 0.0) + size
            )

    def _on_finished(self, event: Dict) -> None:
        flow_id = event.get("flow_id")
        info = self.active_flows.pop(flow_id, None)
        if info is not None:
            for key in info["path"]:
                flows = self.outstanding_on_link.get(key)
                if flows is not None:
                    flows.discard(flow_id)
        self.deliveries += 1
        self.last_delivery = self.now
        group = event.get("group")
        tardiness = event.get("tardiness")
        if group is not None:
            progress = self.groups.setdefault(group, GroupProgress())
            progress.delivered += 1
            progress.last_finish = self.now
            if isinstance(tardiness, (int, float)):
                progress.worst = max(progress.worst, tardiness)
        job = event.get("job")
        size = event.get("size") or 0.0
        if job is not None:
            self.job_delivered_bytes[job] = (
                self.job_delivered_bytes.get(job, 0.0) + size
            )
            outstanding = self.job_outstanding_bytes.get(job)
            if outstanding is not None:
                self.job_outstanding_bytes[job] = max(0.0, outstanding - size)

    def _on_rerouted(self, event: Dict) -> None:
        flow_id = event.get("flow_id")
        old_path = tuple(event.get("old_path") or ())
        new_path = tuple(event.get("new_path") or ())
        self.reroutes.append((self.now, old_path, new_path))
        info = self.active_flows.get(flow_id)
        if info is None:
            return
        for key in info["path"]:
            flows = self.outstanding_on_link.get(key)
            if flows is not None:
                flows.discard(flow_id)
        info["path"] = new_path
        for key in new_path:
            self.outstanding_on_link.setdefault(key, set()).add(flow_id)

    def _on_link_sample(self, event: Dict) -> None:
        links = event.get("links") or {}
        caps = event.get("caps") or {}
        for key, utilization in links.items():
            capacity = caps.get(key)
            health = self.links.get(key)
            if health is None:
                nominal = capacity if capacity is not None else 0.0
                health = LinkHealth(nominal, self.now)
                self.links[key] = health
            health.observe(
                self.now,
                utilization,
                capacity if capacity is not None else health.capacity,
            )
            if self.pair_symmetry and capacity is not None:
                src, sep, dst = key.partition("->")
                if sep:
                    pair = (src, dst) if src < dst else (dst, src)
                    best = self._pair_nominal.get(pair, 0.0)
                    if capacity > best:
                        self._pair_nominal[pair] = capacity
                        best = capacity
                    health.nominal = max(health.nominal, best)

    # -- derived evidence ----------------------------------------------

    def group_completed(self, group: str) -> bool:
        progress = self.groups.get(group)
        return (
            progress is not None
            and progress.injected > 0
            and progress.delivered >= progress.injected
        )

    def stale_links(self) -> List[Tuple[str, float]]:
        """Links with outstanding flows, sorted by how stale they are.

        Returns ``(link key, seconds since last busy sample)`` for every
        link that still has flows pinned across it; links never sampled
        busy are aged from the earliest pinned flow's injection time.
        """
        out: List[Tuple[str, float]] = []
        for key, flows in self.outstanding_on_link.items():
            if not flows:
                continue
            health = self.links.get(key)
            if health is not None and health.last_busy is not None:
                since = health.last_busy
            else:
                since = min(
                    self.active_flows[fid]["injected"]
                    for fid in flows
                    if fid in self.active_flows
                )
            out.append((key, max(0.0, self.now - since)))
        out.sort(key=lambda kv: (-kv[1], kv[0]))
        return out
