"""Shared online view of the obs event feed.

:class:`StreamState` is the one mutable structure every detector and the
localizer read: which flows are outstanding and over which links, the
telemetry health of every sampled link, recent reroute/fallback records,
and per-group delivery progress. It is built *exclusively* from the
observable event stream -- ``fault`` events (the injected ground truth)
only advance the clock; their payloads are never read, so detection and
localization cannot cheat off the chaos layer's own labels. The grader
(:mod:`repro.obs.watch.score`) is the only consumer of ground truth.

Feeding the same event sequence always produces the same state, which is
what makes live detection and offline JSONL replay bit-for-bit equal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple


class LinkHealth:
    """Telemetry-derived health of one directed link."""

    __slots__ = (
        "nominal",
        "capacity",
        "last_seen",
        "last_busy",
        "first_seen",
        "peak_rate",
        "samples",
        "last_utilization",
    )

    def __init__(self, capacity: float, now: float) -> None:
        self.nominal = capacity
        self.capacity = capacity
        self.first_seen = now
        self.last_seen = now
        #: Last sample time the link carried a nonzero rate.
        self.last_busy: Optional[float] = None
        self.peak_rate = 0.0
        #: Utilization samples folded in (telemetry density signal).
        self.samples = 0
        #: Utilization of the newest in-order sample (0..1).
        self.last_utilization = 0.0

    def observe(self, now: float, utilization: float, capacity: float) -> None:
        self.samples += 1
        rate = utilization * capacity
        if now < self.last_seen:
            # Late (jitter-reordered) sample: it can still teach us the
            # link's nominal speed and that the link was busy *at that
            # time*, but it must never regress the newer capacity view --
            # a pre-fault sample arriving after the fault would otherwise
            # close a real degradation episode.
            self.nominal = max(self.nominal, capacity)
            if rate > 1e-12:
                self.peak_rate = max(self.peak_rate, rate)
                if self.last_busy is None or now > self.last_busy:
                    self.last_busy = now
            return
        self.capacity = capacity
        self.nominal = max(self.nominal, capacity)
        self.last_seen = now
        self.last_utilization = utilization
        if rate > 1e-12:
            self.last_busy = now
            self.peak_rate = max(self.peak_rate, rate)

    def learn_nominal(self, capacity: float) -> None:
        """Fold in a capacity observed out-of-band (admission paths).

        Sparse-sample survival: under 1-in-k telemetry sampling a link
        may first be *sampled* only after it degraded, which would bake
        the sick speed in as nominal. Flow admissions carry the path's
        capacities at injection time, which are far denser early in a
        run -- max-learning from them keeps the nominal honest without
        ever lowering it.
        """
        self.nominal = max(self.nominal, capacity)

    @property
    def capacity_drop(self) -> float:
        """Fraction of the nominal capacity currently missing (0..1)."""
        if self.nominal <= 0:
            return 0.0
        return max(0.0, 1.0 - self.capacity / self.nominal)


class GroupProgress:
    """Injected-vs-delivered accounting of one EchelonFlow group."""

    __slots__ = ("injected", "delivered", "first_start", "last_finish", "worst")

    def __init__(self) -> None:
        self.injected = 0
        self.delivered = 0
        self.first_start: Optional[float] = None
        self.last_finish: Optional[float] = None
        self.worst = 0.0


class StreamState:
    """Normalized, order-dependent view of the event stream so far.

    ``pair_symmetry`` (default on) lets the two directions of a duplex
    link share their observed nominal capacity: every fabric in
    :mod:`repro.topology.fabrics` is built from symmetric duplex pairs,
    and a direction that is first sampled *while already degraded*
    (e.g. the backward-gradient direction of a pipeline link) would
    otherwise look healthy at its reduced speed forever. Disable it for
    hand-built asymmetric topologies.

    The fold is *noise-hardened* (see
    :mod:`repro.obs.watch.channel`): duplicate flow lifecycle events
    are ignored (at-least-once delivery must not double-count group
    progress or byte accounting), late jitter-reordered samples never
    regress a link's capacity view, and nominal capacities are also
    learned from admission-time path capacities so sparse sampling
    cannot bake a degraded speed in as nominal.
    """

    def __init__(self, pair_symmetry: bool = True) -> None:
        self.pair_symmetry = pair_symmetry
        #: canonical (min, max) endpoint pair -> best capacity seen
        #: in either direction.
        self._pair_nominal: Dict[Tuple[str, str], float] = {}
        self.now = 0.0
        self.started: Optional[float] = None
        self.events_seen = 0
        #: flow id -> (path link keys, job, group, size).
        self.active_flows: Dict[int, Dict] = {}
        #: link key -> flow ids currently pinned across it.
        self.outstanding_on_link: Dict[str, Set[int]] = {}
        self.links: Dict[str, LinkHealth] = {}
        self.groups: Dict[str, GroupProgress] = {}
        self.deliveries = 0
        self.last_delivery: Optional[float] = None
        #: (t, old path keys, new path keys) reroute records, append order.
        self.reroutes: List[Tuple[float, Tuple[str, ...], Tuple[str, ...]]] = []
        #: (t, kind) ResilientScheduler degradation records.
        self.fallbacks: List[Tuple[float, str]] = []
        #: job id -> cumulative delivered bytes / outstanding bytes.
        self.job_delivered_bytes: Dict[str, float] = {}
        self.job_outstanding_bytes: Dict[str, float] = {}
        #: job id -> time of its first observed injection (late arrivals
        #: are hot-neighbour candidates for the localizer).
        self.job_first_seen: Dict[str, float] = {}
        #: Recent ``(t, job, bytes)`` deliveries, bounded; the localizer
        #: reads a job's share of recently moved bytes from it (a hot
        #: neighbour's outstanding bytes are often *zero* mid-anomaly --
        #: it is winning the bandwidth, so it drains promptly).
        self.recent_deliveries: List[Tuple[float, str, float]] = []
        self.jobs_completed: Set[str] = set()
        #: Duplicate suppression for at-least-once delivery: flow ids
        #: whose injection / delivery has already been folded in.
        self._injected_ids: Set[int] = set()
        self._finished_ids: Set[int] = set()
        #: Exact reroute records already folded (duplicates only).
        self._reroutes_seen: Set[Tuple] = set()
        #: link key -> best capacity seen on any admission path; seeds
        #: LinkHealth.nominal for links first *sampled* after degrading.
        self._path_nominal: Dict[str, float] = {}
        #: Events that arrived with t below the stream clock (jitter).
        self.reordered = 0
        #: Exact duplicates suppressed.
        self.duplicates = 0
        #: Phantom flows expired via heartbeat reconciliation (their
        #: flow_finished events were lost in the telemetry channel).
        self.reconciled = 0

    @property
    def elapsed(self) -> float:
        return self.now - (self.started if self.started is not None else self.now)

    def outstanding_flows(self) -> int:
        return len(self.active_flows)

    # ------------------------------------------------------------------

    def observe(self, event: Dict) -> None:
        """Fold one event into the state (the only mutation entry point)."""
        self.events_seen += 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            if self.started is None:
                self.started = t
            if t < self.now:
                self.reordered += 1
            self.now = max(self.now, t)
        kind = event.get("ev")
        if kind == "flow_injected":
            self._on_injected(event)
        elif kind == "flow_finished":
            self._on_finished(event)
        elif kind == "flow_rerouted":
            self._on_rerouted(event)
        elif kind == "link_sample":
            self._on_link_sample(event)
        elif kind == "scheduler_fallback":
            self.fallbacks.append((self.now, event.get("kind", "unknown")))
        elif kind == "job_completed":
            job = event.get("job")
            if job is not None:
                self.jobs_completed.add(job)
        elif kind == "watch_heartbeat":
            self._on_heartbeat(event)
        # "fault" events are deliberately not parsed: ground truth stays
        # invisible to the detection path (see module docstring).

    def _path_keys(self, event: Dict) -> Tuple[str, ...]:
        path = event.get("path") or ()
        return tuple(str(hop[0]) for hop in path if hop)

    def _on_injected(self, event: Dict) -> None:
        flow_id = event.get("flow_id")
        if flow_id is None:
            return
        self._learn_path_nominals(event)
        if flow_id in self._injected_ids:
            self.duplicates += 1
            return
        self._injected_ids.add(flow_id)
        keys = self._path_keys(event)
        size = event.get("size") or 0.0
        job = event.get("job")
        group = event.get("group")
        if job is not None and job not in self.job_first_seen:
            self.job_first_seen[job] = self.now
        if group is not None:
            progress = self.groups.setdefault(group, GroupProgress())
            progress.injected += 1
            if progress.first_start is None:
                progress.first_start = self.now
        if flow_id in self._finished_ids:
            # Jitter swapped injection past delivery: the flow is
            # already done. Group progress above still counts it (so
            # completion accounting stays consistent), but folding it
            # in as *active* would pin phantom load on its links and
            # inflate outstanding bytes forever.
            return
        info = {
            "path": keys,
            "job": job,
            "group": group,
            "size": size,
            "injected": self.now,
        }
        self.active_flows[flow_id] = info
        for key in keys:
            self.outstanding_on_link.setdefault(key, set()).add(flow_id)
        if job is not None:
            self.job_outstanding_bytes[job] = (
                self.job_outstanding_bytes.get(job, 0.0) + size
            )

    def _learn_path_nominals(self, event: Dict) -> None:
        """Max-learn link nominal capacities from an admission path."""
        for hop in event.get("path") or ():
            if not hop or len(hop) < 2:
                continue
            key, capacity = str(hop[0]), hop[1]
            if not isinstance(capacity, (int, float)) or capacity <= 0:
                continue
            if capacity > self._path_nominal.get(key, 0.0):
                self._path_nominal[key] = capacity
            health = self.links.get(key)
            if health is not None:
                health.learn_nominal(capacity)
            if self.pair_symmetry:
                src, sep, dst = key.partition("->")
                if sep:
                    pair = (src, dst) if src < dst else (dst, src)
                    if capacity > self._pair_nominal.get(pair, 0.0):
                        self._pair_nominal[pair] = capacity

    def _on_finished(self, event: Dict) -> None:
        flow_id = event.get("flow_id")
        if flow_id is not None and flow_id in self._finished_ids:
            self.duplicates += 1
            return
        if flow_id is not None:
            self._finished_ids.add(flow_id)
        info = self.active_flows.pop(flow_id, None)
        if info is not None:
            for key in info["path"]:
                flows = self.outstanding_on_link.get(key)
                if flows is not None:
                    flows.discard(flow_id)
        self.deliveries += 1
        self.last_delivery = self.now
        group = event.get("group")
        tardiness = event.get("tardiness")
        if group is not None:
            progress = self.groups.setdefault(group, GroupProgress())
            progress.delivered += 1
            progress.last_finish = self.now
            if isinstance(tardiness, (int, float)):
                progress.worst = max(progress.worst, tardiness)
        job = event.get("job")
        size = event.get("size") or 0.0
        if job is not None:
            self.recent_deliveries.append((self.now, job, size))
            if len(self.recent_deliveries) > 1024:
                del self.recent_deliveries[:-512]
            self.job_delivered_bytes[job] = (
                self.job_delivered_bytes.get(job, 0.0) + size
            )
            outstanding = self.job_outstanding_bytes.get(job)
            if outstanding is not None:
                self.job_outstanding_bytes[job] = max(0.0, outstanding - size)

    def _on_heartbeat(self, event: Dict) -> None:
        """Reconcile tracked flows against the heartbeat's ``active``.

        Heartbeats traverse the telemetry channel losslessly, so the
        engine-side active-flow count they carry is authoritative. When
        the stream tracks *more* active flows than the engine reports,
        the excess are phantoms whose ``flow_finished`` events the
        channel lost -- left in place they pin load on drained links
        forever and turn every clean run's tail into a stall alarm. The
        flows whose expected completion passed longest ago are the ones
        most likely already delivered, so those expire first; genuinely
        stalled flows stay counted on the engine side and are never part
        of the excess.
        """
        active = event.get("active")
        if not isinstance(active, int) or active < 0:
            return
        excess = len(self.active_flows) - active
        if excess <= 0:
            return
        # Only flows whose *every* path hop was sampled busy after the
        # flow's ideal completion are phantom candidates: a delivered
        # flow left each of its hops busy at least until its (later)
        # actual finish, while a stalled flow's broken hop froze at
        # fault onset and never qualifies. Expected service uses the
        # nominal path rate, a lower bound on the true duration.
        candidates = []
        for fid, info in self.active_flows.items():
            rate = min(
                (self._path_nominal.get(key, 0.0) for key in info["path"]),
                default=0.0,
            )
            service = info["size"] / rate if rate > 0 else 0.0
            end = info["injected"] + service
            if all(
                self.links.get(key) is not None
                and self.links[key].last_busy is not None
                and self.links[key].last_busy >= end
                for key in info["path"]
            ):
                candidates.append((end, fid, info))
        candidates.sort(key=lambda c: (c[0], c[1]))
        for _, fid, info in candidates[:excess]:
            self._expire_flow(fid, info)

    def _expire_flow(self, flow_id: int, info: Dict) -> None:
        """Retire a phantom flow as if its delivery had been observed."""
        self.active_flows.pop(flow_id, None)
        self._finished_ids.add(flow_id)
        self.reconciled += 1
        for key in info["path"]:
            flows = self.outstanding_on_link.get(key)
            if flows is not None:
                flows.discard(flow_id)
        group = info.get("group")
        if group is not None:
            progress = self.groups.setdefault(group, GroupProgress())
            progress.delivered += 1
        job = info.get("job")
        size = info.get("size") or 0.0
        if job is not None:
            outstanding = self.job_outstanding_bytes.get(job)
            if outstanding is not None:
                self.job_outstanding_bytes[job] = max(0.0, outstanding - size)

    def _on_rerouted(self, event: Dict) -> None:
        flow_id = event.get("flow_id")
        old_path = tuple(event.get("old_path") or ())
        new_path = tuple(event.get("new_path") or ())
        dedup_key = (event.get("t"), flow_id, old_path, new_path)
        if dedup_key in self._reroutes_seen:
            self.duplicates += 1
            return
        self._reroutes_seen.add(dedup_key)
        self.reroutes.append((self.now, old_path, new_path))
        info = self.active_flows.get(flow_id)
        if info is None:
            return
        for key in info["path"]:
            flows = self.outstanding_on_link.get(key)
            if flows is not None:
                flows.discard(flow_id)
        info["path"] = new_path
        for key in new_path:
            self.outstanding_on_link.setdefault(key, set()).add(flow_id)

    def _on_link_sample(self, event: Dict) -> None:
        links = event.get("links") or {}
        caps = event.get("caps") or {}
        # Fold at the sample's *own* timestamp, not the stream clock:
        # that is what routes jitter-reordered samples through the
        # late-sample path in LinkHealth.observe, so a pre-fault
        # capacity arriving after the fault never closes a real
        # degradation episode. In-order feeds see t == self.now.
        t = event.get("t")
        when = t if isinstance(t, (int, float)) else self.now
        for key, utilization in links.items():
            capacity = caps.get(key)
            health = self.links.get(key)
            if health is None:
                nominal = capacity if capacity is not None else 0.0
                nominal = max(nominal, self._path_nominal.get(key, 0.0))
                health = LinkHealth(nominal, when)
                self.links[key] = health
            health.observe(
                when,
                utilization,
                capacity if capacity is not None else health.capacity,
            )
            if self.pair_symmetry and capacity is not None:
                src, sep, dst = key.partition("->")
                if sep:
                    pair = (src, dst) if src < dst else (dst, src)
                    best = self._pair_nominal.get(pair, 0.0)
                    if capacity > best:
                        self._pair_nominal[pair] = capacity
                        best = capacity
                    health.nominal = max(health.nominal, best)

    # -- derived evidence ----------------------------------------------

    def group_completed(self, group: str) -> bool:
        progress = self.groups.get(group)
        return (
            progress is not None
            and progress.injected > 0
            and progress.delivered >= progress.injected
        )

    def stale_links(self) -> List[Tuple[str, float]]:
        """Links with outstanding flows, sorted by how stale they are.

        Returns ``(link key, seconds since last busy sample)`` for every
        link that still has flows pinned across it; links never sampled
        busy are aged from the earliest pinned flow's injection time.
        """
        out: List[Tuple[str, float]] = []
        for key, flows in self.outstanding_on_link.items():
            if not flows:
                continue
            health = self.links.get(key)
            if health is not None and health.last_busy is not None:
                since = health.last_busy
            else:
                since = min(
                    self.active_flows[fid]["injected"]
                    for fid in flows
                    if fid in self.active_flows
                )
            out.append((key, max(0.0, self.now - since)))
        out.sort(key=lambda kv: (-kv[1], kv[0]))
        return out
