"""The online watch loop: stream -> detect -> localize -> mitigate.

:class:`WatchLoop` is one pipeline consuming obs events from either of
two sources with *identical* behaviour:

* **live** -- :meth:`attach` subscribes to a run's
  :class:`~repro.obs.jsonl.JsonlEventLog`, seeing every event the moment
  instrumentation appends it (before any ring eviction). With an engine
  handle it also arms a sim-time heartbeat and, optionally, a
  :class:`~repro.obs.watch.mitigate.Mitigator`.
* **replay** -- :meth:`replay_jsonl` / :meth:`replay_events` feed a
  saved log through the same pipeline, one record at a time.

Determinism contract: detectors and the localizer are pure functions of
the *input* event sequence. Records the loop itself produces
(``anomaly`` / ``localization`` / ``mitigation``, plus ``log_truncated``
markers) are skipped entirely on observation -- live, that breaks the
self-subscription recursion; on replay, it means a previously watched
log re-detects from scratch. Heartbeats are different: they are *input*
(``watch_heartbeat`` records appended to the log in sim time), so a
replay ticks at exactly the moments the live loop ticked. Together this
makes live and replay detections bit-for-bit equal, which
``tests/test_watch.py`` pins down.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..jsonl import iter_jsonl
from .channel import TelemetryChannel
from .detectors import Detector, WatchConfig, default_detectors
from .localize import Localizer
from .mitigate import Mitigator
from .stream import StreamState

#: Loop-produced record kinds, never consumed as input.
_SELF_KINDS = frozenset(
    {"anomaly", "localization", "mitigation", "log_truncated"}
)

#: Heartbeats re-arm only this many times without a single new delivery;
#: after that the loop goes quiet so a genuinely wedged engine hits its
#: own deadlock detection instead of being kept alive by our timers.
MAX_IDLE_BEATS = 100


class WatchLoop:
    """One streaming detection/localization/mitigation pipeline."""

    def __init__(
        self,
        config: Optional[WatchConfig] = None,
        detectors: Optional[List[Detector]] = None,
        localizer: Optional[Localizer] = None,
        collect_events: bool = True,
    ) -> None:
        self.config = config if config is not None else WatchConfig()
        self.detectors = (
            detectors if detectors is not None else default_detectors(self.config)
        )
        self.localizer = (
            localizer if localizer is not None else Localizer(self.config)
        )
        self.state = StreamState(pair_symmetry=self.config.pair_symmetry)
        self.anomalies: List[Dict] = []
        self.localizations: List[Dict] = []
        self.mitigator: Optional[Mitigator] = None
        #: Input events retained for on-anomaly diagnosis (job blame).
        #: Disable on very long streams to keep the loop O(window).
        self.collect_events = collect_events
        self._events: List[Dict] = []
        self._log = None
        self._engine = None
        self._heartbeat: Optional[float] = None
        self._beats = 0
        self._idle_beats = 0
        self._deliveries_at_beat = 0
        self.channel: Optional[TelemetryChannel] = None
        #: Anomalies fired but gated below config.min_confidence.
        self.suppressed: List[Dict] = []

    # -- ingestion ------------------------------------------------------

    def observe(self, event: Dict) -> List[Dict]:
        """Feed one event record through the pipeline.

        Returns the anomalies this event triggered (usually empty).
        """
        if event.get("ev") in _SELF_KINDS:
            return []
        if self.mitigator is not None and event.get("ev") == "fault":
            # Fabric fault reports (port-up in particular) go straight to
            # the mitigator: a link_restore lifts any standing cordon.
            # Detectors still never see ground-truth fault records.
            self.mitigator.on_fault(event)
        if self.collect_events:
            self._events.append(event)
        self.state.observe(event)
        fired: List[Dict] = []
        for detector in self.detectors:
            fired.extend(detector.observe(event, self.state))
        if self.config.min_confidence > 0.0:
            # Confidence-weighted episodes: low-confidence alarms still
            # open their detector's episode (so they do not re-fire
            # every sample) but never reach localization/mitigation.
            kept: List[Dict] = []
            for anomaly in fired:
                if anomaly.get("confidence", 0.0) < self.config.min_confidence:
                    self.suppressed.append(anomaly)
                else:
                    kept.append(anomaly)
            fired = kept
        for anomaly in fired:
            self._on_anomaly(anomaly)
        return fired

    def _on_anomaly(self, anomaly: Dict) -> None:
        self.anomalies.append(anomaly)
        localization = self.localizer.localize(
            anomaly,
            self.state,
            events=self._events if self.collect_events else None,
        )
        self.localizations.append(localization)
        if self._log is not None:
            self._log.append(
                anomaly["ev"],
                anomaly["t"],
                **{k: v for k, v in anomaly.items() if k not in ("ev", "t")},
            )
            self._log.append(
                localization["ev"],
                localization["t"],
                **{
                    k: v
                    for k, v in localization.items()
                    if k not in ("ev", "t")
                },
            )
        if self.mitigator is not None:
            self.mitigator.consider(localization)

    # -- live attachment ------------------------------------------------

    def attach(
        self,
        event_log,
        engine=None,
        mitigate: bool = False,
        heartbeat: Optional[float] = None,
        pin_duration: Optional[float] = None,
        channel: Optional[object] = None,
    ) -> "WatchLoop":
        """Subscribe to a live event log (and optionally a live engine).

        ``heartbeat`` arms a recurring sim-time tick of that period:
        each tick appends a ``watch_heartbeat`` record (so replay sees
        it) and drives the stall detectors through quiet stretches.
        ``mitigate`` requires ``engine`` and wires a
        :class:`Mitigator` to act on confident localizations.
        ``channel`` (a :class:`TelemetryChannel` or a noise spec string)
        interposes a degraded-telemetry model between the log and the
        loop; call :meth:`finish` after the run to flush its delay
        buffer. Loop-emitted records are appended to the *log* and come
        back through the channel as untouched passthrough, so live and
        replay (through an identically seeded channel) stay bit-equal.
        """
        self._log = event_log
        self._engine = engine
        if channel is not None:
            if not isinstance(channel, TelemetryChannel):
                channel = TelemetryChannel(channel)
            self.channel = channel
            channel.subscribe(self.observe)
            event_log.subscribe(channel.send)
        else:
            event_log.subscribe(self.observe)
        if mitigate:
            if engine is None:
                raise ValueError("mitigation requires a live engine")
            self.mitigator = Mitigator(
                engine, self.config, event_log, pin_duration
            )
        if heartbeat is not None:
            if engine is None:
                raise ValueError("a heartbeat requires a live engine")
            if heartbeat <= 0:
                raise ValueError(f"heartbeat must be positive, got {heartbeat}")
            self._heartbeat = heartbeat
            engine.schedule_callback(engine.now + heartbeat, self._beat)
        return self

    def _beat(self) -> None:
        engine = self._engine
        log = self._log
        if engine is None or log is None:
            return
        self._beats += 1
        if self.state.deliveries > self._deliveries_at_beat:
            self._idle_beats = 0
        else:
            self._idle_beats += 1
        self._deliveries_at_beat = self.state.deliveries
        # Observation happens via our own subscription to the log.
        # ``active`` rides along as a control-plane counter: heartbeats
        # pass the telemetry channel losslessly, so the stream can
        # reconcile flows whose flow_finished events were dropped.
        log.append(
            "watch_heartbeat",
            engine.now,
            beat=self._beats,
            active=engine.network.active_count,
        )
        more_work = (
            engine.events.peek_time() != float("inf")
            or engine.network.active_count > 0
        )
        if more_work and self._idle_beats < MAX_IDLE_BEATS:
            engine.schedule_callback(
                engine.now + self._heartbeat, self._beat
            )

    def finish(self) -> "WatchLoop":
        """Flush the channel's delay buffer (call after the run ends)."""
        if self.channel is not None:
            self.channel.flush()
        return self

    # -- offline replay -------------------------------------------------

    def replay_events(
        self, events: Iterable[Dict], channel: Optional[object] = None
    ) -> "WatchLoop":
        """Feed saved records through the pipeline, optionally via a
        degraded-telemetry ``channel`` (flushed at end of stream)."""
        if channel is not None:
            if not isinstance(channel, TelemetryChannel):
                channel = TelemetryChannel(channel)
            self.channel = channel
            channel.subscribe(self.observe)
            for event in events:
                channel.send(event)
            channel.flush()
            return self
        for event in events:
            self.observe(event)
        return self

    def replay_jsonl(
        self, path: str, channel: Optional[object] = None
    ) -> "WatchLoop":
        """Stream a saved JSONL log through the pipeline (O(1) memory
        unless ``collect_events``)."""
        return self.replay_events(iter_jsonl(path), channel=channel)

    # -- results --------------------------------------------------------

    def report(self) -> Dict:
        """JSON-able summary of everything the loop saw and did."""
        out: Dict = {
            "events_seen": self.state.events_seen,
            "heartbeats": self._beats,
            "anomalies": list(self.anomalies),
            "localizations": list(self.localizations),
        }
        if self.suppressed:
            out["suppressed"] = len(self.suppressed)
        if self.channel is not None:
            out["channel"] = self.channel.report()
        if self.mitigator is not None:
            out["mitigations"] = list(self.mitigator.actions)
        return out
