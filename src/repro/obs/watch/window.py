"""Bounded sliding windows for the streaming detectors.

Every detector in :mod:`repro.obs.watch.detectors` reasons over a
:class:`SlidingWindow`: a deque of ``(time, value)`` samples bounded both
by a time span and by a sample count, so memory stays O(window) however
long the run streams. Eviction is deterministic and documented: samples
leave strictly oldest-first, the moment a newer sample makes them fall
outside ``span`` seconds of the newest time or pushes the count past
``max_samples``. Aggregates (mean/max/sum) are recomputed from the
retained samples only -- a window never remembers what it evicted, which
is exactly the semantics the false-positive tests pin down.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional, Tuple


class SlidingWindow:
    """A time- and count-bounded window of ``(time, value)`` samples."""

    def __init__(
        self, span: Optional[float] = None, max_samples: Optional[int] = None
    ) -> None:
        if span is not None and span <= 0:
            raise ValueError(f"span must be positive, got {span}")
        if max_samples is not None and max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        if span is None and max_samples is None:
            raise ValueError("need a span bound, a sample bound, or both")
        self.span = span
        self.max_samples = max_samples
        self._samples: Deque[Tuple[float, float]] = deque()
        #: Samples evicted over the lifetime (coalesced count only).
        self.evicted = 0

    def push(self, t: float, value: float) -> None:
        self._samples.append((t, value))
        self._evict(t)

    def _evict(self, now: float) -> None:
        samples = self._samples
        if self.max_samples is not None:
            while len(samples) > self.max_samples:
                samples.popleft()
                self.evicted += 1
        if self.span is not None:
            horizon = now - self.span
            while samples and samples[0][0] < horizon:
                samples.popleft()
                self.evicted += 1

    def __len__(self) -> int:
        return len(self._samples)

    def __bool__(self) -> bool:
        return bool(self._samples)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(self._samples)

    def values(self) -> List[float]:
        return [value for _, value in self._samples]

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("mean of empty window")
        return sum(v for _, v in self._samples) / len(self._samples)

    def max(self) -> float:
        if not self._samples:
            raise ValueError("max of empty window")
        return max(v for _, v in self._samples)

    def sum(self) -> float:
        return sum(v for _, v in self._samples)

    def newest_time(self) -> Optional[float]:
        return self._samples[-1][0] if self._samples else None

    def oldest_time(self) -> Optional[float]:
        return self._samples[0][0] if self._samples else None

    def count_since(self, t: float) -> int:
        return sum(1 for st, _ in self._samples if st >= t)
