"""Profiling: extracting arrangement distances and modelling their error."""

from .noise import biased_arrangement, perturb_arrangement
from .profiler import (
    ComputeProfile,
    phased_arrangement_from_profile,
    profile_job,
    staggered_arrangement_from_profile,
    tabled_arrangement_from_durations,
)

__all__ = [
    "ComputeProfile",
    "profile_job",
    "staggered_arrangement_from_profile",
    "phased_arrangement_from_profile",
    "tabled_arrangement_from_durations",
    "perturb_arrangement",
    "biased_arrangement",
]
