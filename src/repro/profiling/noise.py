"""Measurement-noise models for the profiling-sensitivity ablation (E13).

The system sketch notes EchelonFlow "relies on accurate profiling of the
computation time". These helpers corrupt an arrangement's distances the way
noisy profiling would, so benches can measure how much scheduling quality
degrades as profiling error grows -- while the *true* computation pattern
stays fixed.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.arrangement import (
    ArrangementFunction,
    PhasedArrangement,
    StaggeredArrangement,
    TabledArrangement,
)


def _noisy(value: float, relative_error: float, rng: random.Random) -> float:
    """Multiply by a uniform factor in [1-e, 1+e], clamped non-negative."""
    factor = 1.0 + rng.uniform(-relative_error, relative_error)
    return max(0.0, value * factor)


def perturb_arrangement(
    arrangement: ArrangementFunction,
    relative_error: float,
    count: int,
    rng: Optional[random.Random] = None,
) -> ArrangementFunction:
    """Return an arrangement whose profiled distances carry relative error.

    The *increments* between consecutive offsets are perturbed (distances
    are what profiling measures); cumulative offsets stay non-decreasing.
    ``count`` is how many indices the consumer will address.
    """
    if relative_error < 0:
        raise ValueError(f"relative_error must be >= 0, got {relative_error}")
    if relative_error == 0:
        return arrangement
    rng = rng or random.Random(0)
    if isinstance(arrangement, StaggeredArrangement):
        return StaggeredArrangement(
            distance=_noisy(arrangement.distance, relative_error, rng)
        )
    if isinstance(arrangement, PhasedArrangement):
        return PhasedArrangement(
            layers=arrangement.layers,
            forward_distance=_noisy(
                arrangement.forward_distance, relative_error, rng
            ),
            backward_distance=_noisy(
                arrangement.backward_distance, relative_error, rng
            ),
        )
    # Generic fallback: perturb increments of the offset table.
    offsets = [arrangement.offset(j) for j in range(count)]
    noisy_offsets = [offsets[0]]
    for j in range(1, count):
        increment = offsets[j] - offsets[j - 1]
        noisy_offsets.append(noisy_offsets[-1] + _noisy(increment, relative_error, rng))
    return TabledArrangement(tuple(noisy_offsets))


def biased_arrangement(
    arrangement: ArrangementFunction,
    scale: float,
    count: int,
) -> ArrangementFunction:
    """Systematic profiling bias: every distance scaled by ``scale``.

    ``scale > 1`` models over-estimated compute times (too-lazy deadlines),
    ``scale < 1`` under-estimation (too-eager deadlines).
    """
    if scale < 0:
        raise ValueError(f"scale must be >= 0, got {scale}")
    if isinstance(arrangement, StaggeredArrangement):
        return StaggeredArrangement(distance=arrangement.distance * scale)
    if isinstance(arrangement, PhasedArrangement):
        return PhasedArrangement(
            layers=arrangement.layers,
            forward_distance=arrangement.forward_distance * scale,
            backward_distance=arrangement.backward_distance * scale,
        )
    offsets = tuple(arrangement.offset(j) * scale for j in range(count))
    return TabledArrangement(offsets)
