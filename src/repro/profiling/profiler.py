"""Computation profiling: extracting the "distance" of the arrangement.

Section 3.1: "the 'distance' is the duration of each computation unit,
which can be profiled by running a few training iterations". The profiler
runs warm-up iterations of a job in the simulator, collects per-task
compute spans from the trace, and fits the per-unit durations that
arrangement functions need (``T`` for Eq. 6, ``T_fwd``/``T_bwd`` for
Eq. 7).

Real deployments would profile on the training framework; the mechanics --
repeated measurements, aggregation, noise -- are identical, which is what
the E13 sensitivity ablation exercises through :mod:`repro.profiling.noise`.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.arrangement import (
    PhasedArrangement,
    StaggeredArrangement,
    arrangement_from_compute_durations,
)
from ..scheduling.fairshare import FairSharingScheduler
from ..simulator.engine import Engine
from ..simulator.trace import SimulationTrace
from ..topology.graph import Topology


@dataclass
class ComputeProfile:
    """Aggregated compute durations, keyed by (device, tag)."""

    samples: Dict[Tuple[str, str], List[float]] = field(default_factory=dict)

    @classmethod
    def from_trace(cls, trace: SimulationTrace, job_id: Optional[str] = None) -> "ComputeProfile":
        profile = cls()
        for span in trace.compute_spans:
            if job_id is not None and span.job_id != job_id:
                continue
            profile.samples.setdefault((span.device, span.tag), []).append(
                span.duration
            )
        return profile

    def merge(self, other: "ComputeProfile") -> None:
        for key, values in other.samples.items():
            self.samples.setdefault(key, []).extend(values)

    def mean_duration(
        self, device: Optional[str] = None, tag_prefix: str = ""
    ) -> float:
        """Mean duration over spans matching device and tag prefix."""
        values: List[float] = []
        for (span_device, tag), durations in self.samples.items():
            if device is not None and span_device != device:
                continue
            if tag_prefix and not tag.startswith(tag_prefix):
                continue
            values.extend(durations)
        if not values:
            raise KeyError(
                f"no profiled spans for device={device!r} tag_prefix={tag_prefix!r}"
            )
        return statistics.fmean(values)

    def stddev(self, device: Optional[str] = None, tag_prefix: str = "") -> float:
        values: List[float] = []
        for (span_device, tag), durations in self.samples.items():
            if device is not None and span_device != device:
                continue
            if tag_prefix and not tag.startswith(tag_prefix):
                continue
            values.extend(durations)
        if len(values) < 2:
            return 0.0
        return statistics.stdev(values)


def profile_job(
    build_job: Callable[[], "object"],
    topology: Topology,
    warmup_runs: int = 2,
) -> ComputeProfile:
    """Run ``warmup_runs`` fresh instances of a job and aggregate spans.

    ``build_job`` must return a fresh :class:`~repro.workloads.job.BuiltJob`
    per call (EchelonFlows are single-use: their reference time pins on
    first start). Profiling runs under plain fair sharing, as an unmodified
    cluster would.
    """
    if warmup_runs < 1:
        raise ValueError(f"warmup_runs must be >= 1, got {warmup_runs}")
    profile = ComputeProfile()
    for _ in range(warmup_runs):
        job = build_job()
        engine = Engine(topology, FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        profile.merge(ComputeProfile.from_trace(trace, job_id=job.job_id))
    return profile


def staggered_arrangement_from_profile(
    profile: ComputeProfile,
    consumer_device: str,
    tag_prefix: str = "",
) -> StaggeredArrangement:
    """Eq. 6 arrangement with ``T`` = profiled consumer compute time."""
    return StaggeredArrangement(
        distance=profile.mean_duration(consumer_device, tag_prefix)
    )


def phased_arrangement_from_profile(
    profile: ComputeProfile,
    layers: int,
    forward_tag: str = "F",
    backward_tag: str = "B",
) -> PhasedArrangement:
    """Eq. 7 arrangement with profiled ``T_fwd`` and ``T_bwd``."""
    return PhasedArrangement(
        layers=layers,
        forward_distance=profile.mean_duration(tag_prefix=forward_tag),
        backward_distance=profile.mean_duration(tag_prefix=backward_tag),
    )


def tabled_arrangement_from_durations(
    durations: Sequence[float],
) -> "object":
    """General profiled arrangement (PP variants beyond Eq. 6)."""
    return arrangement_from_compute_durations(durations)
