"""Flow schedulers: baselines, Coflow (Varys), and EchelonFlow (adapted MADD)."""

from .base import (
    Scheduler,
    SchedulerView,
    make_scheduler,
    register_scheduler,
    scheduler_names,
)
from .cache import MemoizingScheduler
from .coflow_madd import CoflowMaddScheduler, madd_rates, remaining_gamma
from .deadline import EdfFlowScheduler
from .echelon_madd import ANCHORS, ORDERINGS, EchelonMaddScheduler
from .fairshare import FairSharingScheduler
from .oracle import (
    MakespanBounds,
    PipelineStageSpec,
    makespan_lower_bounds,
    single_link_pipeline_optimum,
)
from .sincronia import SincroniaScheduler, bssi_order
from .sjf import FifoFlowScheduler, ShortestFlowFirstScheduler

__all__ = [
    "Scheduler",
    "SchedulerView",
    "register_scheduler",
    "make_scheduler",
    "scheduler_names",
    "FairSharingScheduler",
    "ShortestFlowFirstScheduler",
    "FifoFlowScheduler",
    "CoflowMaddScheduler",
    "SincroniaScheduler",
    "bssi_order",
    "EchelonMaddScheduler",
    "EdfFlowScheduler",
    "MemoizingScheduler",
    "ORDERINGS",
    "ANCHORS",
    "madd_rates",
    "remaining_gamma",
    "PipelineStageSpec",
    "single_link_pipeline_optimum",
    "MakespanBounds",
    "makespan_lower_bounds",
]
