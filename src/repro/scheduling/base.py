"""Scheduler interface: what the paper's Coordinator computes.

A scheduler is invoked by the engine whenever network state changes (flow
arrival/departure or any task completion) and returns a complete rate
allocation for the active flows, exactly like the Coordinator of Fig. 7
returning "bandwidth allocations" for the agents to enforce.

The :class:`SchedulerView` gives a scheduler everything the paper says the
coordinator receives: per-flow info (size/remaining, src, dst, path) plus
EchelonFlow membership and arrangement-derived ideal finish times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.echelonflow import EchelonFlow
from ..core.flow import FlowState
from ..simulator.allocation import FlowDemand
from ..simulator.network import NetworkModel


@dataclass
class SchedulerView:
    """Snapshot handed to a scheduler at decision time.

    The engine keeps one view alive for the whole run and ``refresh``-es
    it per invocation, so schedulers see engine-maintained *incremental*
    state -- the network's group buckets and cached demands -- instead of
    per-call rebuilds, plus a delta of what changed since they last ran.
    Constructing a view directly (tests, one-shot calls) works the same;
    the delta fields are simply empty.
    """

    now: float
    network: NetworkModel
    #: EchelonFlows registered with the coordinator, by group id.
    echelonflows: Mapping[str, EchelonFlow] = field(default_factory=dict)
    #: Why the coordinator is being re-invoked right now: "fault",
    #: "arrival", "departure", "compute", "tick", "timer", or ``None``
    #: when the caller did not attribute the invocation (direct calls).
    #: Profiling middleware and the Fig. 7 coordinator use this to count
    #: invocations per rerun policy; algorithms are free to ignore it.
    trigger_cause: Optional[str] = None
    #: Flow ids injected since the scheduler last ran (empty on direct
    #: construction). Incremental schedulers use these to patch warm
    #: state instead of re-deriving it from the full active set.
    injected_flows: Tuple[int, ...] = ()
    #: Flow ids retired since the scheduler last ran.
    departed_flows: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        # Materialize lazily-drained `remaining` values up front so every
        # read a scheduler performs sees current bytes.
        self.network.sync_active()

    def refresh(
        self,
        now: float,
        trigger_cause: Optional[str],
        injected: Sequence[int] = (),
        departed: Sequence[int] = (),
    ) -> "SchedulerView":
        """Point the persistent view at the current decision instant."""
        self.now = now
        self.trigger_cause = trigger_cause
        self.injected_flows = tuple(injected)
        self.departed_flows = tuple(departed)
        self.network.sync_active()
        return self

    def active_states(self) -> List[FlowState]:
        return self.network.active_states()

    def demand_of(self, state: FlowState, weight: float = 1.0) -> FlowDemand:
        return self.network.demand(state.flow.flow_id, weight)

    def flow_demands(self) -> List[FlowDemand]:
        """Unit-weight demands of every active flow, cached at inject time."""
        return self.network.demands()

    def group_of(self, state: FlowState) -> Optional[EchelonFlow]:
        if state.flow.group_id is None:
            return None
        return self.echelonflows.get(state.flow.group_id)

    def group_weight_of(self, state: FlowState) -> float:
        """The flow's EchelonFlow weight (1.0 when ungrouped/unregistered)."""
        group = self.group_of(state)
        return group.weight if group is not None else 1.0

    def states_by_group(self) -> Dict[Optional[str], List[FlowState]]:
        """Active flows bucketed by EchelonFlow id (None = ungrouped)."""
        groups: Dict[Optional[str], List[FlowState]] = {}
        for state in self.active_states():
            groups.setdefault(state.flow.group_id, []).append(state)
        return groups

    def groups(self) -> List[Tuple[Optional[str], List[FlowState]]]:
        """Engine-maintained group buckets, sorted by id (``None`` last).

        Unlike :meth:`states_by_group` this does not rebuild anything:
        the network keeps the buckets current across inject/retire, so a
        call is O(groups). Buckets are fid-sorted; treat them as
        read-only.
        """
        return self.network.group_buckets()

    def ideal_finish_time(self, state: FlowState) -> Optional[float]:
        """``d_j`` of a flow, from its EchelonFlow's arrangement.

        Falls back to the state's cached value so schedulers keep working
        when flows are injected directly (without a registered group).
        """
        group = self.group_of(state)
        if group is not None and group.reference_time is not None:
            return group.ideal_finish_time_of(state.flow)
        return state.ideal_finish_time


class Scheduler:
    """Base class: allocate rates for every active flow.

    Implementations must be work-conserving where possible and must respect
    link capacities; the engine validates allocations in strict mode.
    """

    #: Human-readable name used in benchmark tables.
    name = "abstract"

    #: Declares the work-conservation contract: a True value promises that
    #: the allocation never leaves an unfinished flow with spare capacity
    #: on *every* link of its path (each active flow is bottlenecked
    #: somewhere or capped). The ``repro.check`` sanitizer enforces the
    #: promise at runtime; pacing-only algorithms (MADD without backfill)
    #: keep the default False. Wrappers delegate to their inner scheduler.
    work_conserving = False

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        raise NotImplementedError

    def fork(self) -> "Scheduler":
        """An independent copy for a forked engine (snapshot/fork/restore).

        The default is a deep copy, which is correct for every built-in
        algorithm (their state is configuration plus derived caches).
        Wrappers override it to control what is shared across forks:
        :class:`~repro.scheduling.cache.MemoizingScheduler` shares its
        fingerprint cache by reference (warm starts for sibling forks),
        and :class:`~repro.faults.ResilientScheduler` drops its engine
        handle (the engine fork re-runs the ``on_attached`` walk).
        Schedulers holding unforkable resources should override this and
        raise.
        """
        import copy

        return copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}<{self.name}>"


_SCHEDULER_REGISTRY: Dict[str, type] = {}


def register_scheduler(cls: type) -> type:
    """Class decorator: register a scheduler under its ``name``."""
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise ValueError(f"scheduler {cls.__name__} needs a unique name")
    if name in _SCHEDULER_REGISTRY:
        raise ValueError(f"duplicate scheduler name {name!r}")
    _SCHEDULER_REGISTRY[name] = cls
    return cls


def scheduler_names() -> List[str]:
    return sorted(_SCHEDULER_REGISTRY)

def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    try:
        cls = _SCHEDULER_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {scheduler_names()}"
        )
    return cls(**kwargs)
