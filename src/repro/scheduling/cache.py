"""Decision reuse across iterations (Section 5's scalability proposal).

"We propose to improve the scalability by revising them to maintain the
scheduling decision throughout the DDLT lifetime leveraging the iterative
nature of DDLT jobs."

DDLT traffic repeats: iteration k+1's flows have the same sizes, paths,
group shapes, and relative deadlines as iteration k's. The
:class:`MemoizingScheduler` wrapper exploits exactly that: it fingerprints
the scheduling *situation* -- per active flow its endpoints, arrangement
index, remaining bytes, deadline slack relative to now, and group weight,
with group identities normalized to order-of-appearance so per-iteration
id suffixes do not matter -- and replays the inner algorithm's allocation
whenever the same situation recurs.

A hit costs one dictionary lookup instead of a full MADD run; on steady
multi-iteration jobs the hit rate approaches (iterations - 1)/iterations.
Fingerprint floats are quantized to 9 significant digits so iteration
k+1's accumulated float fuzz still matches iteration k's situation; two
situations within the quantum are treated as the same optimization
problem, so a replayed allocation can differ from a fresh solve by at
most the last ulp.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .base import Scheduler, SchedulerView


def _quantize(value: float) -> float:
    """Collapse float fuzz so recurring situations fingerprint equally."""
    return float(f"{value:.9g}")


class MemoizingScheduler(Scheduler):
    """Cache an inner scheduler's allocations by situation fingerprint."""

    name = "memoized"

    def __init__(self, inner: Scheduler, max_entries: int = 8192) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.inner = inner
        self.max_entries = max_entries
        self._cache: "OrderedDict[Tuple, Tuple[float, ...]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def _fingerprint(self, view: SchedulerView) -> Tuple[Tuple, List[int]]:
        states = view.active_states()  # sorted by flow id = injection order
        group_tokens: Dict[Optional[str], int] = {}
        # Runtime capacity mutations (fault injection) change the
        # optimization problem without changing any per-flow field; the
        # network's capacity *lineage* keys them into the fingerprint so
        # a pre-fault decision is never replayed post-fault. The lineage
        # (globally-unique token per mutation) rather than the bare epoch
        # counter is what makes the cache safe to share across forks: a
        # fork that mutated a link and a parent that mutated a different
        # one both sit at epoch N+1, but their lineages differ, so
        # neither can replay the other's allocation.
        entries = [
            ("epoch", getattr(view.network, "capacity_lineage", None)
             or view.network.capacity_epoch)
        ]
        flow_ids = []
        for state in states:
            flow = state.flow
            group_id = flow.group_id
            if group_id not in group_tokens:
                group_tokens[group_id] = len(group_tokens)
            weight = view.group_weight_of(state)
            deadline = view.ideal_finish_time(state)
            slack = (
                _quantize(deadline - view.now)
                if deadline is not None
                else _quantize(view.now - state.start_time)
            )
            entries.append(
                (
                    flow.src,
                    flow.dst,
                    group_tokens[group_id],
                    flow.index_in_group,
                    _quantize(state.remaining),
                    slack,
                    _quantize(weight),
                )
            )
            flow_ids.append(flow.flow_id)
        return tuple(entries), flow_ids

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        fingerprint, flow_ids = self._fingerprint(view)
        cached = self._cache.get(fingerprint)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(fingerprint)
            return dict(zip(flow_ids, cached))
        self.misses += 1
        rates = self.inner.allocate(view)
        ordered = tuple(rates.get(flow_id, 0.0) for flow_id in flow_ids)
        self._cache[fingerprint] = ordered
        if len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)  # LRU eviction
        return dict(zip(flow_ids, ordered))

    def fork(self) -> "MemoizingScheduler":
        """A fork that *shares* the fingerprint cache by reference.

        The cache is exact -- identical fingerprints imply an identical
        optimization problem -- and fingerprints embed the capacity
        lineage, so parent, fork, and sibling forks can safely feed one
        another warm decisions: the what-if service's whole point. The
        inner scheduler is forked normally (independent state); hit/miss
        counters start fresh so per-fork hit rates are meaningful.
        """
        inner = self.inner.fork() if hasattr(self.inner, "fork") else self.inner
        twin = MemoizingScheduler(inner, max_entries=self.max_entries)
        twin._cache = self._cache
        return twin

    # ------------------------------------------------------------------

    @property
    def work_conserving(self) -> bool:
        """Replayed allocations inherit the inner algorithm's contract."""
        return getattr(self.inner, "work_conserving", False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0
