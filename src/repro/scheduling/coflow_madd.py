"""Coflow scheduling: Varys' SEBF + MADD, generalized to arbitrary paths.

This is the Fig. 2b comparison point and the algorithmic substrate that
Property 4 adapts. Two pieces:

* **MADD** (Minimum Allocation for Desired Duration): give every flow of a
  coflow the smallest rate finishing it exactly at the coflow's bottleneck
  completion time ``Gamma``, so all flows finish together (the Coflow
  philosophy the paper argues against for PP/FSDP).
* **SEBF** (Smallest Effective Bottleneck First): order coflows by their
  remaining ``Gamma``; earlier coflows allocate on fresher capacity.

On a big switch ``Gamma`` is the classic port-load bound; on general
topologies we use the equivalent per-link form
``Gamma = max_link sum(remaining bytes crossing link) / capacity``.

A final work-conserving backfill hands leftover capacity to flows in SEBF
order so no link idles while a flow wants it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.flow import FlowState
from ..core.units import EPS
from ..simulator.allocation import (
    FlowDemand,
    greedy_priority_fill,
    link_capacities,
)
from ..simulator.network import NetworkModel
from .base import Scheduler, SchedulerView, register_scheduler


def remaining_gamma(
    states: List[FlowState],
    network: NetworkModel,
    available: Dict[Tuple[str, str], float],
) -> float:
    """Bottleneck completion time of a coflow on (residual) capacities.

    ``inf`` when some needed link has no residual capacity at all.
    """
    load: Dict[Tuple[str, str], float] = {}
    for state in states:
        for link in network.path(state.flow.flow_id):
            load[link.key] = load.get(link.key, 0.0) + state.remaining
    gamma = 0.0
    for key, total in load.items():
        capacity = available.get(key)
        if capacity is None:
            continue
        if capacity <= EPS:
            return float("inf")
        gamma = max(gamma, total / capacity)
    return gamma


def madd_rates(
    states: List[FlowState],
    network: NetworkModel,
    available: Dict[Tuple[str, str], float],
) -> Dict[int, float]:
    """Minimum allocation finishing every flow at the coflow's ``Gamma``."""
    gamma = remaining_gamma(states, network, available)
    rates: Dict[int, float] = {}
    if gamma == float("inf"):
        return {state.flow.flow_id: 0.0 for state in states}
    for state in states:
        if gamma <= EPS:
            rates[state.flow.flow_id] = 0.0
        else:
            rates[state.flow.flow_id] = state.remaining / gamma
    return rates


def _consume(
    rates: Dict[int, float],
    network: NetworkModel,
    available: Dict[Tuple[str, str], float],
) -> None:
    for flow_id, rate in rates.items():
        for link in network.path(flow_id):
            if link.key in available:
                available[link.key] = max(0.0, available[link.key] - rate)


@register_scheduler
class CoflowMaddScheduler(Scheduler):
    """Varys: SEBF inter-coflow ordering + MADD intra-coflow allocation.

    Ungrouped flows are treated as singleton coflows. ``backfill`` toggles
    the work-conserving pass (on by default, as in Varys).
    """

    name = "coflow"

    def __init__(self, backfill: bool = True) -> None:
        self.backfill = backfill
        # MADD pacing alone deliberately idles capacity; only the
        # backfill pass makes the allocation work-conserving.
        self.work_conserving = backfill

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        network = view.network
        coflows: List[Tuple[str, List[FlowState]]] = []
        # Incremental group buckets; the SEBF sort below fully determines
        # the final order, so bucket enumeration order is irrelevant.
        for group_id, states in view.groups():
            if group_id is None:
                for state in states:  # singleton pseudo-coflows
                    coflows.append((f"_flow{state.flow.flow_id}", [state]))
            else:
                coflows.append((group_id, states))

        # Maintained by the network's residual accounting; a (harmless)
        # superset of the links under the currently-active flows.
        available = network.link_capacities()
        # SEBF: smallest remaining bottleneck first, on *full* capacities.
        keyed = []
        for group_id, states in coflows:
            gamma = remaining_gamma(states, network, available)
            keyed.append((gamma, group_id, states))
        keyed.sort(key=lambda item: (item[0], item[1]))

        rates: Dict[int, float] = {}
        residual = dict(available)
        ordered_states: List[FlowState] = []
        for _gamma, _group_id, states in keyed:
            group_rates = madd_rates(states, network, residual)
            _consume(group_rates, network, residual)
            rates.update(group_rates)
            ordered_states.extend(
                sorted(states, key=lambda s: (s.remaining, s.flow.flow_id))
            )

        if self.backfill:
            demands = [view.demand_of(state) for state in ordered_states]
            rates = greedy_priority_fill(demands, available=residual, base_rates=rates)
        return rates
