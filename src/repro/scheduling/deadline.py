"""Per-flow EDF: deadlines without the group structure (ablation).

EchelonFlow's scheduler uses arrangement deadlines *and* group structure
(stages paced MADD-style, groups ranked together). This baseline keeps
only the deadlines: every flow is served independently by earliest ideal
finish time, strict priority, no pacing. Comparing it against the full
scheduler isolates what the *grouping* buys:

* without stage-level MADD, the flows of one Coflow stage serialize
  instead of finishing together, delaying barriers behind the last flow;
* without group ranking, a flow with a late deadline from an urgent group
  can be starved by unrelated earlier-deadline flows.

``EdfFlowScheduler`` still honours the recalibration story (deadlines
pinned to references), so differences against ``EchelonMaddScheduler``
are attributable to structure, not information.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.flow import FlowState
from ..simulator.allocation import greedy_priority_fill
from .base import Scheduler, SchedulerView, register_scheduler


@register_scheduler
class EdfFlowScheduler(Scheduler):
    """Strict per-flow earliest-deadline-first on ideal finish times."""

    name = "edf-flow"
    work_conserving = True

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        keyed: List[Tuple[float, int, FlowState]] = []
        for state in view.active_states():
            deadline = view.ideal_finish_time(state)
            if deadline is None:
                deadline = state.start_time  # ungrouped: finish ASAP
            keyed.append((deadline, state.flow.flow_id, state))
        keyed.sort(key=lambda item: item[:2])
        demands = [view.demand_of(state) for _d, _fid, state in keyed]
        return greedy_priority_fill(demands)
