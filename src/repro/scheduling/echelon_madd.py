"""EchelonFlow scheduling: MADD adapted to arrangement-derived deadlines.

Property 4 of the paper states that Coflow algorithms adapt to EchelonFlow
"with a different metric for evaluating flows": intra-EchelonFlow we pace
against the *latest flow with the largest tardiness* instead of the longest
completion time; inter-EchelonFlow we rank groups by their tardiness instead
of their CCT. This module is that adaptation, concretely:

**Intra-EchelonFlow.** Flows sharing one arrangement index form a stage
(a Coflow inside the EchelonFlow -- e.g. one all-gather in FSDP) and share
an ideal finish time ``d_g``. Stages are served in ideal-finish order
(earliest deadline first; offsets are non-decreasing so this is also index
order). Each stage is paced MADD-style to finish at

    ``T_g = max(d_g, now + Gamma_g)``

where ``Gamma_g`` is the stage's bottleneck duration on the capacity left by
earlier stages. A stage behind the formation (``d_g`` unreachable or past)
therefore runs flat-out to catch up -- the recalibration of Fig. 6b -- while
a stage ahead of the formation is paced to land exactly on its ideal finish
time, leaving bandwidth for everyone else (the "minimum allocation" idea of
MADD). For an Eq.-5 arrangement (single stage) this degenerates to *exactly*
Varys' MADD, which is Property 2 in executable form.

**Inter-EchelonFlow.** The default policy is two-level. Across tenants,
jobs rank ascending by their least weighted projected tardiness -- the
cross-tenant analog of Varys' SEBF with Smith's-rule weighting, which
minimizes the Eq.-4 sum and keeps small tenants from convoying behind a
structurally-late bulk job; registered tenants always outrank
unregistered best-effort traffic. Within a job, EchelonFlows rank by
*current* tardiness ``now - d_earliest``, most tardy first: the
EchelonFlow furthest behind its formation catches up first, which is
group-level earliest-deadline-first -- simultaneously the literal reading
of the paper's "rank EchelonFlows by each EchelonFlow's tardiness" and a
classically sound deadline policy that ages naturally and never mistakes
a *large* group (big ``Gamma``) for a *late* one. Five alternative
orderings are provided for ablation E12/E23.

**Work conservation.** A final backfill pass hands leftover capacity to
flows in schedule order, so pacing never idles a link that has demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.flow import FlowState
from ..core.units import EPS
from ..simulator.allocation import greedy_priority_fill
from ..simulator.network import NetworkModel
from .base import Scheduler, SchedulerView, register_scheduler
from .coflow_madd import remaining_gamma

#: Inter-EchelonFlow ordering policies (ablation E12).
ORDERINGS = ("tardiness", "projected", "hybrid", "tardiness-asc", "sebf", "fifo")

#: Deadline anchors (ablation E14).
ANCHORS = ("arrangement", "flow_start")


class _Stage:
    """Flows of one EchelonFlow sharing one arrangement index."""

    def __init__(self, deadline: float, states: List[FlowState]) -> None:
        self.deadline = deadline
        self.states = states

    def gamma(self, network: NetworkModel, available) -> float:
        return remaining_gamma(self.states, network, available)


class _Group:
    """One EchelonFlow's active stages, in deadline order."""

    def __init__(
        self,
        group_id: str,
        stages: List[_Stage],
        job_id: Optional[str] = None,
        weight: float = 1.0,
        registered: bool = True,
    ) -> None:
        self.group_id = group_id
        self.stages = sorted(stages, key=lambda s: s.deadline)
        self.job_id = job_id
        self.weight = weight
        #: Whether an EchelonFlow was reported for this traffic (Fig. 7's
        #: agent registration); unregistered flows are best-effort.
        self.registered = registered

    def projected_tardiness(self, now: float, network: NetworkModel, available) -> float:
        """``max_g (now + Gamma_g - d_g)``: lateness if served alone now."""
        worst = float("-inf")
        for stage in self.stages:
            gamma = stage.gamma(network, available)
            if gamma == float("inf"):
                return float("inf")
            worst = max(worst, now + gamma - stage.deadline)
        return worst

    def current_tardiness(self, now: float) -> float:
        """``now - d_earliest``: how far behind the formation the group's
        most imminent stage already is. Positive lateness is amplified by
        the EchelonFlow's weight (the Eq.-4 weighted-sum variant);
        negative slack is left unweighted so early groups compare by pure
        deadline (EDF)."""
        lateness = now - min(stage.deadline for stage in self.stages)
        if lateness > 0:
            lateness *= self.weight
        return lateness


@register_scheduler
class EchelonMaddScheduler(Scheduler):
    """The EchelonFlow coordinator algorithm (adapted MADD, Property 4).

    Parameters
    ----------
    ordering:
        Inter-EchelonFlow ranking policy, all ranking "by each
        EchelonFlow's tardiness" as the paper prescribes, differing in
        direction and tenant awareness (ablation E12):

        * ``"hybrid"`` (default) -- two-level. Registered tenants outrank
          unregistered best-effort traffic; jobs rank ascending by their
          least weighted projected tardiness (the cross-tenant SEBF/SJF
          analog: minimizes the Eq.-4 sum and mean JCT, and keeps small
          tenants from convoying behind a structurally-late bulk job --
          Jain 0.93 vs 0.52 in E23); within a job, the most *currently*
          tardy EchelonFlow first (group-level EDF), which preserves the
          formation that gates the job's computation. Wins or ties every
          experiment in the battery.
        * ``"tardiness"`` -- globally most *currently* tardy first
          (``now - d_earliest``, weight-amplified when late). Group-level
          EDF: starvation-free across arbitrary traffic, maximally
          protective of the most-behind tenant, but convoys small tenants
          behind a structurally-late bulk job (E23).
        * ``"projected"`` -- most *projected* tardy first
          (``now + Gamma - d``): the naive transliteration; its Gamma
          term lets freshly-started bulk coflows outrank time-critical
          staggered flows (see E12b and the 3D hybrid workload).
        * ``"tardiness-asc"`` -- least projected tardiness first, flat
          (no job level, no registration tiering).
        * ``"sebf"`` -- ignore deadlines, rank by bottleneck duration.
        * ``"fifo"`` -- rank by group id.
    backfill:
        Work-conserving leftover pass (default on).
    anchor:
        ``"arrangement"`` anchors deadlines on arrangement ideal finish
        times (Eq. 1); ``"flow_start"`` anchors each flow on its own start
        time, which turns the objective into classic completion time and
        loses the recovery property (ablation E14).
    """

    name = "echelon"

    def __init__(
        self,
        ordering: str = "hybrid",
        backfill: bool = True,
        anchor: str = "arrangement",
    ) -> None:
        if ordering not in ORDERINGS:
            raise ValueError(f"unknown ordering {ordering!r}; options: {ORDERINGS}")
        if anchor not in ANCHORS:
            raise ValueError(f"unknown anchor {anchor!r}; options: {ANCHORS}")
        self.ordering = ordering
        self.backfill = backfill
        self.anchor = anchor
        # Adapted MADD paces stages to their deadlines (idling capacity
        # on purpose); work conservation comes from the backfill pass.
        self.work_conserving = backfill

    # ------------------------------------------------------------------

    def _deadline_of(self, view: SchedulerView, state: FlowState) -> float:
        if self.anchor == "flow_start":
            return state.start_time
        ideal = view.ideal_finish_time(state)
        if ideal is None:
            # Ungrouped (or not-yet-referenced) flows: finish-ASAP semantics.
            return state.start_time
        return ideal

    def _build_groups(self, view: SchedulerView) -> List[_Group]:
        groups: List[_Group] = []
        # The network's incremental buckets, already sorted by group id
        # with ungrouped flows last -- the order this loop used to create
        # by sorting a per-call states_by_group() rebuild.
        for group_id, states in view.groups():
            if group_id is None:
                # Every ungrouped flow is its own singleton group.
                for state in states:
                    deadline = self._deadline_of(view, state)
                    groups.append(
                        _Group(
                            f"_flow{state.flow.flow_id}",
                            [_Stage(deadline, [state])],
                            job_id=state.flow.job_id,
                            registered=False,
                        )
                    )
                continue
            by_deadline: Dict[float, List[FlowState]] = {}
            for state in states:
                deadline = self._deadline_of(view, state)
                by_deadline.setdefault(deadline, []).append(state)
            stages = [_Stage(d, members) for d, members in by_deadline.items()]
            echelonflow = view.echelonflows.get(group_id)
            job_id = echelonflow.job_id if echelonflow is not None else None
            weight = echelonflow.weight if echelonflow is not None else 1.0
            if job_id is None:
                job_id = states[0].flow.job_id
            groups.append(_Group(group_id, stages, job_id=job_id, weight=weight))
        return groups

    @staticmethod
    def _weighted(group: _Group, tau: float) -> float:
        """Scale a tardiness key by the EchelonFlow's weight (Eq. 4's
        weighted-sum variant) for *descending* (most-urgent-first) sorts:
        a weight-w group that is t behind counts as w*t of objective, so
        it sorts as if w times more urgent."""
        if tau == float("inf") or tau == float("-inf"):
            return tau
        return group.weight * tau

    @staticmethod
    def _weighted_ascending(group: _Group, tau: float) -> float:
        """Weight adjustment for *ascending* (smallest-key-first) sorts --
        Smith's rule: a heavier group must sort earlier, so positive
        lateness divides by the weight and negative slack multiplies."""
        if tau == float("inf") or tau == float("-inf"):
            return tau
        if tau >= 0:
            return tau / group.weight
        return tau * group.weight

    def _order_groups(
        self,
        groups: List[_Group],
        now: float,
        network: NetworkModel,
        full_caps: Dict[Tuple[str, str], float],
    ) -> List[_Group]:
        if self.ordering == "fifo":
            return groups
        if self.ordering == "tardiness":
            # Most currently-tardy first (weight-amplified lateness); ties
            # broken toward heavier groups, then by id for determinism.
            keyed_current = [
                (-g.current_tardiness(now), -g.weight, g.group_id, g)
                for g in groups
            ]
            keyed_current.sort(key=lambda item: item[:3])
            return [g for *_key, g in keyed_current]
        if self.ordering == "hybrid":
            # Two-level: jobs ranked ascending by their *projected* lateness
            # (the Varys-SEBF analog across tenants: nearly-on-time jobs
            # first, which both minimizes the Eq.-4 sum and keeps small
            # tenants from convoying behind a structurally-late bulk job --
            # measured as Jain 0.93 vs 0.52 in E23); within a job, the most
            # *currently* tardy EchelonFlow first (group-level EDF), which
            # preserves the formation that gates the job's computation.
            tau = {
                g.group_id: self._weighted_ascending(
                    g, g.projected_tardiness(now, network, full_caps)
                )
                for g in groups
            }
            job_key: Dict[Optional[str], float] = {}
            for g in groups:
                value = tau[g.group_id]
                if value == float("inf"):
                    continue  # blocked groups don't define a job's urgency
                current = job_key.get(g.job_id, float("inf"))
                job_key[g.job_id] = min(current, value)
            keyed = [
                (
                    # Registered tenants (those whose frameworks reported
                    # EchelonFlows through the agent) outrank best-effort
                    # unregistered traffic -- the coordinator protects what
                    # it was asked to schedule.
                    0 if g.registered else 1,
                    job_key.get(g.job_id, float("inf")),
                    g.job_id or "",
                    # Most currently-behind first within the job.
                    -g.current_tardiness(now),
                    g.group_id,
                    g,
                )
                for g in groups
            ]
            keyed.sort(key=lambda item: item[:5])
            return [g for *_key, g in keyed]
        if self.ordering == "sebf":
            keyed = [
                (
                    remaining_gamma(
                        [s for stage in g.stages for s in stage.states],
                        network,
                        full_caps,
                    ),
                    g.group_id,
                    g,
                )
                for g in groups
            ]
        else:
            keyed = [
                (
                    self._weighted(
                        g, g.projected_tardiness(now, network, full_caps)
                    ),
                    g.group_id,
                    g,
                )
                for g in groups
            ]
            if self.ordering == "projected":
                # Most projected-behind first; +inf (blocked) groups sort
                # last either way since negation keeps them extreme.
                keyed = [(-value, gid, g) for value, gid, g in keyed]
        keyed.sort(key=lambda item: (item[0], item[1]))
        return [g for _value, _gid, g in keyed]

    # ------------------------------------------------------------------

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        network = view.network
        now = view.now
        # Maintained by the network's residual accounting; a (harmless)
        # superset of the links under the currently-active flows.
        full_caps: Dict[Tuple[str, str], float] = network.link_capacities()

        groups = self._build_groups(view)
        ordered = self._order_groups(groups, now, network, full_caps)

        rates: Dict[int, float] = {}
        residual = dict(full_caps)
        schedule_order: List[FlowState] = []
        for group in ordered:
            for stage in group.stages:
                gamma = stage.gamma(network, residual)
                schedule_order.extend(
                    sorted(stage.states, key=lambda s: s.flow.flow_id)
                )
                if gamma == float("inf"):
                    for state in stage.states:
                        rates[state.flow.flow_id] = 0.0
                    continue
                # Pace the stage to land on max(deadline, earliest feasible).
                target = max(stage.deadline, now + gamma)
                horizon = target - now
                for state in stage.states:
                    if horizon <= EPS:
                        rate = 0.0
                    else:
                        rate = state.remaining / horizon
                    rates[state.flow.flow_id] = rate
                    for link in network.path(state.flow.flow_id):
                        residual[link.key] = max(0.0, residual[link.key] - rate)

        if self.backfill:
            demands = [view.demand_of(state) for state in schedule_order]
            rates = greedy_priority_fill(demands, available=residual, base_rates=rates)
        return rates
