"""Baseline: per-flow max-min fair sharing.

This is "what the network grants" when nobody schedules -- every active flow
gets its water-filling share, exactly the Fig. 2a baseline. TCP-like
behaviour over long transfers converges to this allocation in the fluid
limit.
"""

from __future__ import annotations

from typing import Dict

from ..simulator.allocation import max_min_fair
from .base import Scheduler, SchedulerView, register_scheduler


@register_scheduler
class FairSharingScheduler(Scheduler):
    """Weighted max-min fair sharing across all active flows."""

    name = "fair"
    #: Progressive filling only stops raising a flow when some path link
    #: saturates, so every flow ends bottlenecked: work-conserving.
    work_conserving = True

    def __init__(self, weight_by_job: Dict[str, float] = None) -> None:
        self.weight_by_job = dict(weight_by_job or {})

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        if not self.weight_by_job:
            # Unweighted: the network's demands are cached at inject time
            # (unit weight), no per-call FlowDemand construction.
            return max_min_fair(view.flow_demands())
        demands = []
        for state in view.active_states():
            weight = self.weight_by_job.get(state.flow.job_id, 1.0)
            demands.append(view.demand_of(state, weight=weight))
        return max_min_fair(demands)
