"""Optimality references for Property 1 (E8).

EchelonFlow scheduling is NP-hard in general (Property 3), so exact optima
are only computed where structure allows:

* :func:`single_link_pipeline_optimum` -- the Fig. 2 setting: one link, one
  consumer that processes stages in order. An exchange argument shows an
  optimal schedule transmits flows in consumption order, each contiguously
  at full link rate; the completion recurrences below are therefore exact.
* :func:`makespan_lower_bounds` -- paradigm-agnostic lower bounds on any
  schedule's completion time: device work, DAG critical path, and per-link
  communication work. The maximum of these bounds certifies near-optimality
  of measured schedules without solving the NP-hard problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..simulator.dag import TaskDag, TaskKind
from ..topology.graph import Topology
from ..topology.routing import ShortestPathRouter


@dataclass(frozen=True)
class PipelineStageSpec:
    """One micro-batch stage in the single-link pipeline model."""

    release_time: float  # when the producer makes the data available
    flow_size: float  # bytes to move across the link
    compute_time: float  # consumer computation after the data lands


def single_link_pipeline_optimum(
    stages: Sequence[PipelineStageSpec], bandwidth: float
) -> Tuple[float, List[float], List[float]]:
    """Exact optimal completion for in-order consumption over one link.

    Returns ``(comp_finish_time, flow_finish_times, compute_finish_times)``.

    Optimal structure: the link serves flows in consumption order, each at
    full rate, starting as soon as both the data is released and the link is
    free (any idling or reordering can only delay the in-order consumer).
    """
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    link_free = 0.0
    consumer_free = 0.0
    flow_finishes: List[float] = []
    compute_finishes: List[float] = []
    for stage in stages:
        start = max(stage.release_time, link_free)
        finish = start + stage.flow_size / bandwidth
        link_free = finish
        flow_finishes.append(finish)
        compute_start = max(finish, consumer_free)
        consumer_free = compute_start + stage.compute_time
        compute_finishes.append(consumer_free)
    comp_finish = compute_finishes[-1] if compute_finishes else 0.0
    return comp_finish, flow_finishes, compute_finishes


@dataclass(frozen=True)
class MakespanBounds:
    """Lower bounds on any feasible schedule's completion time."""

    device_work: float
    critical_path: float
    link_work: float

    @property
    def best(self) -> float:
        return max(self.device_work, self.critical_path, self.link_work)


def makespan_lower_bounds(dag: TaskDag, topology: Topology) -> MakespanBounds:
    """Three classic lower bounds for a DAG on a capacitated network.

    * ``device_work``: no device can finish before its total assigned
      compute time elapses.
    * ``critical_path``: chain of compute durations plus *minimum* transfer
      times (each flow at its path's full bottleneck rate, free network).
    * ``link_work``: no link can carry its total bytes faster than capacity.
    """
    router = ShortestPathRouter(topology)

    device_load: Dict[str, float] = {}
    for task in dag.tasks():
        if task.kind is TaskKind.COMPUTE and task.device is not None:
            device_load[task.device] = device_load.get(task.device, 0.0) + task.duration
    device_work = max(device_load.values(), default=0.0)

    link_load: Dict[Tuple[str, str], float] = {}
    link_caps: Dict[Tuple[str, str], float] = {}
    min_transfer: Dict[str, float] = {}
    for task in dag.tasks():
        if task.kind is not TaskKind.COMM:
            continue
        slowest = 0.0
        for flow in task.flows:
            path = router.path(flow.src, flow.dst)
            bottleneck = min(link.capacity for link in path)
            slowest = max(slowest, flow.size / bottleneck)
            for link in path:
                link_load[link.key] = link_load.get(link.key, 0.0) + flow.size
                link_caps[link.key] = link.capacity
        min_transfer[task.task_id] = slowest
    link_work = max(
        (load / link_caps[key] for key, load in link_load.items()), default=0.0
    )

    finish: Dict[str, float] = {}
    for task_id in dag.topological_order():
        task = dag.task(task_id)
        start = max((finish[dep] for dep in task.deps), default=0.0)
        if task.kind is TaskKind.COMPUTE:
            cost = task.duration
        elif task.kind is TaskKind.COMM:
            cost = min_transfer[task_id]
        else:
            cost = 0.0
        finish[task_id] = start + cost
    critical_path = max(finish.values(), default=0.0)

    return MakespanBounds(
        device_work=device_work, critical_path=critical_path, link_work=link_work
    )
