"""Sincronia-style Coflow scheduling (BSSI ordering + greedy rates).

Sincronia [Agarwal et al., SIGCOMM '18] showed that a good *ordering* of
coflows plus any order-respecting per-flow mechanism is within 4x of the
optimal weighted CCT. The ordering is computed by BSSI
(Bottleneck-Select-Scale-Iterate):

1. find the bottleneck port (largest total unscheduled load);
2. among coflows with data on that port, *schedule last* the one with the
   largest scaled weight ratio ``load_c(b) / w_c`` (equivalently, minimum
   ``w_c / load_c(b)``);
3. scale the weights of the remaining coflows on that port down by the
   chosen coflow's share;
4. iterate on the rest.

We generalize "port" to any directed link (the big-switch ingress/egress
ports are the special case) and enforce the order with the same greedy
priority fill used elsewhere, making this a drop-in third Coflow baseline
next to Varys. Like the other Coflow schedulers it aims for simultaneous
finishes within each coflow (flows inherit their coflow's rank), so it
shares Coflow's blind spot on PP/FSDP -- which is the point of comparing
against it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.flow import FlowState
from ..core.units import EPS
from ..simulator.allocation import greedy_priority_fill
from ..simulator.network import NetworkModel
from .base import Scheduler, SchedulerView, register_scheduler


def bssi_order(
    coflows: Dict[str, List[FlowState]],
    network: NetworkModel,
    weights: Optional[Dict[str, float]] = None,
) -> List[str]:
    """Compute the BSSI coflow permutation (first = highest priority).

    ``coflows`` maps coflow id to its unfinished flow states. Returns the
    ids ordered for scheduling; deterministic (ties by id).
    """
    weights = dict(weights or {})
    remaining = {cid: list(states) for cid, states in coflows.items() if states}
    scaled_weight = {cid: weights.get(cid, 1.0) for cid in remaining}
    # Per-coflow per-link loads, computed once.
    load: Dict[str, Dict[Tuple[str, str], float]] = {}
    for cid, states in remaining.items():
        per_link: Dict[Tuple[str, str], float] = {}
        for state in states:
            for link in network.path(state.flow.flow_id):
                per_link[link.key] = per_link.get(link.key, 0.0) + state.remaining
        load[cid] = per_link

    reverse_order: List[str] = []
    active = set(remaining)
    while active:
        # 1. bottleneck link over unscheduled coflows.
        total: Dict[Tuple[str, str], float] = {}
        for cid in active:
            for key, value in load[cid].items():
                total[key] = total.get(key, 0.0) + value
        bottleneck = max(sorted(total), key=lambda key: total[key])
        # 2. schedule last: max load/weight on the bottleneck.
        candidates = [cid for cid in active if load[cid].get(bottleneck, 0.0) > 0]
        if not candidates:
            # No coflow touches the bottleneck (can't happen unless all
            # loads are zero); fall back to arbitrary deterministic pick.
            candidates = sorted(active)
        chosen = max(
            sorted(candidates),
            key=lambda cid: load[cid].get(bottleneck, 0.0)
            / max(scaled_weight[cid], EPS),
        )
        # 3. scale weights of the others on that link.
        chosen_load = load[chosen].get(bottleneck, 0.0)
        if chosen_load > 0:
            factor = scaled_weight[chosen] / chosen_load
            for cid in active:
                if cid == chosen:
                    continue
                scaled_weight[cid] = max(
                    0.0,
                    scaled_weight[cid] - factor * load[cid].get(bottleneck, 0.0),
                )
        reverse_order.append(chosen)
        active.remove(chosen)
    reverse_order.reverse()
    return reverse_order


@register_scheduler
class SincroniaScheduler(Scheduler):
    """BSSI coflow ordering enforced by greedy order-respecting rates."""

    name = "sincronia"
    #: The order-respecting greedy fill bottlenecks every flow it serves.
    work_conserving = True

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self.weights = dict(weights or {})

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        network = view.network
        coflows: Dict[str, List[FlowState]] = {}
        # Incremental group buckets; BSSI's own deterministic tie-breaks
        # (sorted ids everywhere) make enumeration order irrelevant.
        for group_id, states in view.groups():
            if group_id is None:
                for state in states:
                    coflows[f"_flow{state.flow.flow_id}"] = [state]
            else:
                coflows[group_id] = states
        order = bssi_order(coflows, network, self.weights)
        ordered_states: List[FlowState] = []
        for cid in order:
            ordered_states.extend(
                sorted(coflows[cid], key=lambda s: (s.remaining, s.flow.flow_id))
            )
        demands = [view.demand_of(state) for state in ordered_states]
        return greedy_priority_fill(demands)
