"""Baseline: size-based per-flow priority (pFabric-style).

Flows are served in ascending remaining-size order; each grabs the residual
bottleneck of its path (strict priority with spatial reuse). This is the
classic individual-flow-scheduling point in the design space the paper's
related work starts from (pFabric / PIAS / PDQ): it minimizes mean FCT but
is oblivious to application semantics.
"""

from __future__ import annotations

from typing import Dict

from ..simulator.allocation import greedy_priority_fill
from .base import Scheduler, SchedulerView, register_scheduler


@register_scheduler
class ShortestFlowFirstScheduler(Scheduler):
    """Smallest-remaining-size-first strict priority."""

    name = "sjf"
    #: Greedy fill serves every flow in order; each either drains its
    #: path bottleneck to zero or was already blocked: work-conserving.
    work_conserving = True

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        states = view.active_states()
        ordered = sorted(states, key=lambda s: (s.remaining, s.flow.flow_id))
        demands = [view.demand_of(state) for state in ordered]
        return greedy_priority_fill(demands)


@register_scheduler
class FifoFlowScheduler(Scheduler):
    """Earliest-start-first strict priority (per-flow FIFO baseline)."""

    name = "fifo"
    work_conserving = True

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        states = view.active_states()
        ordered = sorted(states, key=lambda s: (s.start_time, s.flow.flow_id))
        demands = [view.demand_of(state) for state in ordered]
        return greedy_priority_fill(demands)
