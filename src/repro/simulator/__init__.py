"""Discrete-event co-simulation of compute DAGs and a fluid-flow network."""

from .allocation import (
    FlowDemand,
    feasible,
    greedy_priority_fill,
    link_capacities,
    max_min_fair,
    residual_capacities,
)
from .compute import Device
from .dag import Task, TaskDag, TaskKind
from .engine import Engine, SimulationError, TIME_EPS
from .events import Event, EventKind, EventQueue
from .network import CapacityViolation, NetworkModel
from .state import EngineState, SnapshotError, StateHandle
from .trace import ComputeSpan, FlowRecord, SimulationTrace, TaskEvent

__all__ = [
    "Engine",
    "SimulationError",
    "TIME_EPS",
    "EngineState",
    "SnapshotError",
    "StateHandle",
    "NetworkModel",
    "CapacityViolation",
    "TaskDag",
    "Task",
    "TaskKind",
    "Device",
    "Event",
    "EventKind",
    "EventQueue",
    "FlowDemand",
    "max_min_fair",
    "greedy_priority_fill",
    "feasible",
    "residual_capacities",
    "link_capacities",
    "SimulationTrace",
    "ComputeSpan",
    "FlowRecord",
    "TaskEvent",
]
