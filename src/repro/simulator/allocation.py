"""Rate-allocation primitives shared by all schedulers.

The fluid-flow model reduces scheduling to: given active flows, each pinned
to a path of capacitated links, choose per-flow rates with per-link capacity
constraints. This module implements the building blocks:

* :func:`max_min_fair` -- progressive filling (classic water-filling), with
  optional per-flow weights and per-flow rate caps.
* :func:`greedy_priority_fill` -- strict-priority allocation in a given flow
  order (used by SJF-style and backfill passes).
* :func:`feasible` -- validate an allocation against link capacities.
* :func:`residual_capacities` -- leftover capacity after an allocation.
* :class:`LinkAccounting` -- stateful per-link residual bookkeeping kept
  current by the network model, so feasibility checks and utilization
  sampling cost O(links touched) instead of O(flows x path length).
* :class:`DemandSet` -- a demand list that carries a kernel hint; when it
  asks for the vector path (and numpy is available), :func:`max_min_fair`
  and :func:`feasible` dispatch to the dense-array kernels in
  :mod:`repro.simulator.vector`, which are bit-identical to the scalar
  ones by a shared reduction order (see that module's docstring).

All functions are pure: they take explicit flow descriptors and return new
rate dictionaries, which keeps them unit-testable and hypothesis-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..core.units import EPS
from ..topology.graph import Link


@dataclass(frozen=True)
class FlowDemand:
    """What the allocator needs to know about one flow.

    ``cap`` optionally limits the flow's rate (e.g. an application pacing
    limit); ``weight`` scales its share under weighted max-min.
    """

    flow_id: int
    path: Tuple[Link, ...]
    weight: float = 1.0
    cap: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError(f"flow {self.flow_id} has an empty path")
        if self.weight <= 0:
            raise ValueError(f"flow {self.flow_id} weight must be positive")
        if self.cap is not None and self.cap < 0:
            raise ValueError(f"flow {self.flow_id} cap must be >= 0")


class DemandSet(list):
    """A list of :class:`FlowDemand` carrying a kernel hint.

    Built by :meth:`NetworkModel.demands` and cached per structural
    revision. ``use_vector`` records the network's kernel decision
    (engine mode and the auto-select flow-count threshold); the dense
    :class:`~repro.simulator.vector.DenseIncidence` interning is built
    lazily on first vector dispatch and shared by every kernel call
    until the flow set changes structurally.

    Plain lists (ad-hoc demand sets built by schedulers) never dispatch
    to the vector path, so reference-mode runs and weighted schedulers
    keep their pure-python cost model untouched.
    """

    __slots__ = ("use_vector", "_incidence")

    def __init__(self, demands: Iterable[FlowDemand] = (), use_vector: bool = False):
        super().__init__(demands)
        self.use_vector = use_vector
        self._incidence = None

    def incidence(self):
        """The cached dense interning (requires numpy)."""
        if self._incidence is None:
            from .vector import DenseIncidence

            self._incidence = DenseIncidence(self)
        return self._incidence


def _vector_dispatch(demands) -> bool:
    """Should this call use the dense kernels?"""
    if not getattr(demands, "use_vector", False):
        return False
    from .vector import HAVE_NUMPY

    return HAVE_NUMPY


def link_capacities(demands: Iterable[FlowDemand]) -> Dict[Tuple[str, str], float]:
    """Collect the capacity of every link that appears on some path."""
    capacities: Dict[Tuple[str, str], float] = {}
    for demand in demands:
        for link in demand.path:
            capacities[link.key] = link.capacity
    return capacities


def feasible(
    demands: Sequence[FlowDemand],
    rates: Mapping[int, float],
    tolerance: float = 1e-6,
) -> bool:
    """True when ``rates`` respects every link capacity (with slack)."""
    if _vector_dispatch(demands):
        from .vector import feasible_vector

        return feasible_vector(demands.incidence(), rates, tolerance)
    usage: Dict[Tuple[str, str], float] = {}
    capacities = link_capacities(demands)
    for demand in demands:
        rate = rates.get(demand.flow_id, 0.0)
        if rate < -tolerance:
            return False
        if demand.cap is not None and rate > demand.cap + tolerance:
            return False
        for link in demand.path:
            usage[link.key] = usage.get(link.key, 0.0) + rate
    for key, used in usage.items():
        capacity = capacities[key]
        if used > capacity * (1.0 + tolerance) + tolerance:
            return False
    return True


def residual_capacities(
    demands: Sequence[FlowDemand],
    rates: Mapping[int, float],
) -> Dict[Tuple[str, str], float]:
    """Capacity left on each link after the given allocation (clamped >= 0)."""
    residual = link_capacities(demands)
    for demand in demands:
        rate = rates.get(demand.flow_id, 0.0)
        for link in demand.path:
            residual[link.key] = residual[link.key] - rate
    return {key: max(0.0, value) for key, value in residual.items()}


class LinkAccounting:
    """Incrementally-maintained per-link load and membership state.

    The network model feeds this one delta per flow-rate change (plus one
    registration per flow lifecycle event), and in exchange every consumer
    of "how loaded is each link right now" -- the feasibility gate in
    ``set_rates``, the lenient-mode capacity relaxation, and the
    observer's utilization sampling -- reads an always-current map instead
    of re-aggregating all active flows.

    Loads are float accumulators: they drift from a fresh summation by
    ulp-level error. The ``nonzero`` counters (integer counts of flows at
    a strictly positive rate per link) are exact, so membership questions
    ("does any live flow cross this link?") never depend on float drift;
    a link whose flow set empties has its accumulator hard-reset to 0.
    """

    __slots__ = ("loads", "capacities", "links", "flows_on", "nonzero")

    def __init__(self) -> None:
        #: link key -> sum of current rates of flows crossing it.
        self.loads: Dict[Tuple[str, str], float] = {}
        self.capacities: Dict[Tuple[str, str], float] = {}
        #: link key -> the Link object (for observer-facing views).
        self.links: Dict[Tuple[str, str], Link] = {}
        #: link key -> ids of active flows whose path crosses it.
        self.flows_on: Dict[Tuple[str, str], set] = {}
        #: link key -> count of crossing flows with rate > 0.
        self.nonzero: Dict[Tuple[str, str], int] = {}

    def watch(self, flow_id: int, path: Sequence[Link]) -> None:
        """Register a newly-injected (rate-0) flow on its path's links."""
        for link in path:
            key = link.key
            if key not in self.loads:
                self.loads[key] = 0.0
                self.capacities[key] = link.capacity
                self.links[key] = link
                self.flows_on[key] = set()
                self.nonzero[key] = 0
            self.flows_on[key].add(flow_id)

    def unwatch(self, flow_id: int, path: Sequence[Link], rate: float) -> None:
        """Retire a flow: release its rate and drop it from link sets."""
        for link in path:
            key = link.key
            members = self.flows_on[key]
            members.discard(flow_id)
            if rate > 0.0:
                self.loads[key] -= rate
                self.nonzero[key] -= 1
            if not members:
                # Kill accumulated drift the moment a link goes idle.
                self.loads[key] = 0.0
                self.nonzero[key] = 0

    def apply(self, path: Sequence[Link], old_rate: float, new_rate: float) -> None:
        """Move a flow's contribution from ``old_rate`` to ``new_rate``."""
        delta = new_rate - old_rate
        step = (1 if new_rate > 0.0 else 0) - (1 if old_rate > 0.0 else 0)
        for link in path:
            key = link.key
            self.loads[key] += delta
            if step:
                self.nonzero[key] += step

    def apply_bulk(
        self,
        link_deltas: Mapping[Tuple[str, str], float],
        nonzero_steps: Mapping[Tuple[str, str], int],
    ) -> None:
        """Apply per-link aggregate deltas from one bulk rate change.

        The network's vector ``set_rates`` path pre-aggregates each
        link's load delta (one ``bincount``) and nonzero-count step, then
        lands them here in O(links) instead of O(flows x path length).
        Loads are tolerance-audited accumulators (module docstring), so
        the one-sum-per-link association is as valid as the scalar
        per-flow sequence; the integer counters stay exact either way.
        """
        loads = self.loads
        for key, delta in link_deltas.items():
            loads[key] += delta
        nonzero = self.nonzero
        for key, step in nonzero_steps.items():
            nonzero[key] += step

    def clone(
        self, link_map: Optional[Mapping[Tuple[str, str], Link]] = None
    ) -> "LinkAccounting":
        """An exact copy of the residual state (snapshot/fork support).

        The float load accumulators are copied *verbatim*, never
        recomputed: a forked run must resume with bit-identical residuals
        or its feasibility decisions could diverge from the parent's.
        ``link_map`` (link key -> Link) re-points the ``links`` values at
        a cloned topology's objects; keys are name pairs and carry over
        unchanged.
        """
        twin = LinkAccounting()
        twin.loads = dict(self.loads)
        twin.capacities = dict(self.capacities)
        if link_map is None:
            twin.links = dict(self.links)
        else:
            twin.links = {key: link_map[key] for key in self.links}
        twin.flows_on = {key: set(members) for key, members in self.flows_on.items()}
        twin.nonzero = dict(self.nonzero)
        return twin

    def usage(self) -> Dict[Link, float]:
        """Aggregate rate per link, restricted to links carrying traffic."""
        links = self.links
        nonzero = self.nonzero
        return {
            links[key]: load
            for key, load in self.loads.items()
            if nonzero[key] > 0
        }

    def feasible_with_deltas(
        self,
        deltas: Mapping[Tuple[str, str], float],
        tolerance: float = 1e-6,
    ) -> bool:
        """Would the current loads, shifted by ``deltas``, fit capacity?

        Only the shifted links are examined: the invariant that the
        *current* allocation is feasible makes untouched links safe.
        """
        loads = self.loads
        capacities = self.capacities
        for key, delta in deltas.items():
            used = loads[key] + delta
            capacity = capacities[key]
            if used > capacity * (1.0 + tolerance) + tolerance:
                return False
        return True


def max_min_fair(
    demands: Sequence[FlowDemand],
    available: Optional[Mapping[Tuple[str, str], float]] = None,
) -> Dict[int, float]:
    """Weighted max-min fair rates via progressive filling.

    Water level rises uniformly (scaled by weight) for all unfrozen flows;
    when a link saturates, flows crossing it freeze at their current rate.
    Flow caps act as per-flow bottlenecks. Terminates in at most
    ``len(demands)`` rounds since every round freezes at least one flow.

    The reduction order is pinned so the scalar and vector kernels agree
    bit for bit: per-round link-weight sums and per-link consumption are
    accumulated in (flow, path position) order, and each link's residual
    is decremented *once* per round by the round's consumption sum (then
    clamped at zero) -- the association the ``bincount``-based vector
    kernel reproduces exactly. See :mod:`repro.simulator.vector`.
    """
    if not demands:
        return {}
    if _vector_dispatch(demands):
        from .vector import max_min_fair_vector

        return max_min_fair_vector(demands.incidence(), available)
    capacities = dict(available) if available is not None else link_capacities(demands)
    # Links outside `available` (when provided) fall back to full capacity.
    for demand in demands:
        for link in demand.path:
            capacities.setdefault(link.key, link.capacity)

    rates: Dict[int, float] = {demand.flow_id: 0.0 for demand in demands}
    active = {demand.flow_id: demand for demand in demands}
    remaining = dict(capacities)

    while active:
        # How much can the water level rise before some constraint binds?
        link_weight: Dict[Tuple[str, str], float] = {}
        for demand in active.values():
            for link in demand.path:
                link_weight[link.key] = link_weight.get(link.key, 0.0) + demand.weight
        rise = float("inf")
        for key, weight_sum in link_weight.items():
            if weight_sum > 0:
                rise = min(rise, remaining[key] / weight_sum)
        for demand in active.values():
            if demand.cap is not None:
                headroom = (demand.cap - rates[demand.flow_id]) / demand.weight
                rise = min(rise, headroom)
        if rise == float("inf"):
            raise RuntimeError("unbounded max-min allocation (no constraints)")
        rise = max(0.0, rise)

        # Apply the rise; consumption is accumulated per link in (flow,
        # path position) order and subtracted once per link per round.
        consumed: Dict[Tuple[str, str], float] = {}
        for demand in active.values():
            rates[demand.flow_id] += rise * demand.weight
            for link in demand.path:
                key = link.key
                consumed[key] = consumed.get(key, 0.0) + rise * demand.weight
        for key, used in consumed.items():
            residual = remaining[key] - used
            remaining[key] = residual if residual > 0.0 else 0.0

        # Freeze flows on saturated links or at their caps.
        frozen = []
        for flow_id, demand in active.items():
            at_cap = demand.cap is not None and rates[flow_id] >= demand.cap - EPS
            on_full_link = any(remaining[link.key] <= EPS for link in demand.path)
            if at_cap or on_full_link:
                frozen.append(flow_id)
        if not frozen:
            # Numerical corner: force-freeze the most constrained flow.
            frozen = [min(active)]
        for flow_id in frozen:
            del active[flow_id]
    return rates


def greedy_priority_fill(
    ordered: Sequence[FlowDemand],
    available: Optional[Mapping[Tuple[str, str], float]] = None,
    base_rates: Optional[Mapping[int, float]] = None,
) -> Dict[int, float]:
    """Strict-priority allocation: each flow grabs its path bottleneck.

    Flows are served in the given order; each receives the minimum residual
    capacity along its path (bounded by its cap). With ``base_rates`` the
    pass *adds* to an existing allocation -- this is the work-conserving
    backfill step used after MADD.
    """
    demands = list(ordered)
    residual = dict(available) if available is not None else link_capacities(demands)
    for demand in demands:
        for link in demand.path:
            residual.setdefault(link.key, link.capacity)
    rates: Dict[int, float] = dict(base_rates) if base_rates else {}
    for demand in demands:
        bottleneck = min(residual[link.key] for link in demand.path)
        grant = max(0.0, bottleneck)
        if demand.cap is not None:
            already = rates.get(demand.flow_id, 0.0)
            grant = min(grant, max(0.0, demand.cap - already))
        if grant <= EPS:
            rates.setdefault(demand.flow_id, 0.0)
            continue
        rates[demand.flow_id] = rates.get(demand.flow_id, 0.0) + grant
        for link in demand.path:
            residual[link.key] -= grant
    return rates
