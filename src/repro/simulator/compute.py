"""Devices: serialized (or MIG-partitioned) compute execution.

A :class:`Device` models one GPU. By default it runs at most one compute
task at a time, picking the next task from its ready queue by (priority,
enqueue order) -- idle gaps between tasks are the "bubbles" of Fig. 1a,
recorded by the trace for the GPU-idleness metric.

``slots > 1`` models MIG-style static partitioning (the GPU-sharing
future-work direction of Section 5): up to ``slots`` tasks run
concurrently, each on its isolated slice. MIG provides performance
isolation, so co-resident tasks do not slow each other down; callers model
smaller slices by scaling task durations when building the job. Tasks from
the same job still serialize through their DAG dependencies, so sharing
only interleaves *different* jobs' work.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .dag import Task


@dataclass(order=True)
class _QueuedTask:
    priority: int
    sequence: int
    task: Task = field(compare=False)


class Device:
    """A compute device with ``slots`` isolated execution slices.

    The enqueue-order tie-breaker is *device-scoped* (not process-global)
    so device state is fully capturable: snapshot/fork copies the queue
    entries (which keep their sequence numbers) plus ``_next_sequence``,
    and the resumed run breaks (priority, enqueue order) ties exactly
    like the uninterrupted one.
    """

    def __init__(self, name: str, slots: int = 1) -> None:
        if slots < 1:
            raise ValueError(f"device {name!r} needs >= 1 slots, got {slots}")
        self.name = name
        self.slots = slots
        self._queue: List[_QueuedTask] = []
        self._next_sequence = 0
        # Keyed by (job_id, task_id): task ids are only unique per job.
        self._running: Dict[tuple, Task] = {}
        self.busy_until: float = 0.0
        #: Accumulated task-seconds, for utilization metrics.
        self.busy_time: float = 0.0
        self.last_finish_time: float = 0.0

    def enqueue(self, task: Task) -> None:
        if task.device != self.name:
            raise ValueError(
                f"task {task.task_id!r} targets device {task.device!r}, "
                f"not {self.name!r}"
            )
        heapq.heappush(
            self._queue, _QueuedTask(task.priority, self._next_sequence, task)
        )
        self._next_sequence += 1

    def fork(self) -> "Device":
        """An independent copy of this device's full runtime state.

        Queue entries and running tasks are shared by reference
        (``_QueuedTask`` fields and :class:`Task` are never mutated);
        the containers and counters are copied.
        """
        twin = Device(self.name, slots=self.slots)
        twin._queue = list(self._queue)
        twin._next_sequence = self._next_sequence
        twin._running = dict(self._running)
        twin.busy_until = self.busy_until
        twin.busy_time = self.busy_time
        twin.last_finish_time = self.last_finish_time
        return twin

    @property
    def running(self) -> Optional[Task]:
        """The single running task (single-slot view).

        With multiple slots use :attr:`running_tasks` instead.
        """
        if not self._running:
            return None
        if len(self._running) == 1:
            return next(iter(self._running.values()))
        raise RuntimeError(
            f"device {self.name!r} has {len(self._running)} concurrent tasks; "
            f"use running_tasks"
        )

    @property
    def running_tasks(self) -> List[Task]:
        return [
            self._running[key]
            for key in sorted(self._running, key=lambda k: (k[0] or "", k[1]))
        ]

    @property
    def idle(self) -> bool:
        return not self._running

    @property
    def free_slots(self) -> int:
        return self.slots - len(self._running)

    @property
    def has_work(self) -> bool:
        return bool(self._queue)

    def start_next(self, now: float) -> Optional[Tuple[Task, float]]:
        """Begin the highest-priority queued task; returns (task, finish).

        Returns ``None`` when every slot is busy or nothing is queued.
        """
        if self.free_slots == 0 or not self._queue:
            return None
        queued = heapq.heappop(self._queue)
        task = queued.task
        self._running[(task.job_id, task.task_id)] = task
        finish = now + task.duration
        self.busy_until = max(self.busy_until, finish)
        self.busy_time += task.duration
        return task, finish

    def finish_task(self, task_id: str, now: float, job_id=None) -> Task:
        """Retire a specific running task (multi-slot safe)."""
        try:
            task = self._running.pop((job_id, task_id))
        except KeyError:
            raise RuntimeError(
                f"device {self.name!r} is not running task {task_id!r} "
                f"of job {job_id!r}"
            )
        self.last_finish_time = now
        return task

    def finish_current(self, now: float) -> Task:
        """Retire the single running task (single-slot convenience)."""
        if not self._running:
            raise RuntimeError(f"device {self.name!r} has nothing running")
        if len(self._running) > 1:
            raise RuntimeError(
                f"device {self.name!r} has multiple running tasks; "
                f"use finish_task"
            )
        job_id, task_id = next(iter(self._running))
        return self.finish_task(task_id, now, job_id=job_id)

    def utilization(self, horizon: float) -> float:
        """Busy fraction over ``[0, horizon]`` (aggregated across slots)."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.slots * horizon))
