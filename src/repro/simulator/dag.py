"""Task DAGs: the computation pattern ("shape") of a training job.

A job iteration is a DAG of tasks:

* **compute** tasks occupy a device for a profiled duration; tasks mapped to
  the same device serialize (one kernel at a time per GPU).
* **comm** tasks emit one or more flows into the network and complete when
  all of them have been delivered.
* **barrier** tasks are zero-cost synchronization points (e.g. the
  end-of-iteration barrier in Figs. 1/3/4/5).

Paradigm builders in :mod:`repro.workloads` generate these DAGs; the engine
in :mod:`repro.simulator.engine` executes them. The DAG is exactly the
"computation dependencies (i.e., DAG) and times" that the paper says define
a training paradigm's computation pattern.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.flow import Flow


class TaskKind(enum.Enum):
    COMPUTE = "compute"
    COMM = "comm"
    BARRIER = "barrier"


@dataclass(frozen=True)
class Task:
    """One node of the job DAG. Immutable; runtime state lives in the engine."""

    task_id: str
    kind: TaskKind
    deps: Tuple[str, ...] = ()
    #: Compute tasks: the executing device and its profiled duration.
    device: Optional[str] = None
    duration: float = 0.0
    #: Comm tasks: the flows this task injects when it becomes ready.
    flows: Tuple[Flow, ...] = ()
    #: Tie-break for device queues: lower runs first (micro-batch order).
    priority: int = 0
    job_id: Optional[str] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.kind is TaskKind.COMPUTE:
            if self.device is None:
                raise ValueError(f"compute task {self.task_id!r} needs a device")
            if self.duration < 0:
                raise ValueError(
                    f"compute task {self.task_id!r} has negative duration"
                )
        elif self.kind is TaskKind.COMM:
            if not self.flows:
                raise ValueError(f"comm task {self.task_id!r} has no flows")
        elif self.kind is TaskKind.BARRIER:
            if self.flows or self.device is not None:
                raise ValueError(
                    f"barrier task {self.task_id!r} cannot carry flows or a device"
                )


class TaskDag:
    """A validated, append-only task DAG."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self._tasks: Dict[str, Task] = {}
        self._successors: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _add(self, task: Task) -> Task:
        if task.task_id in self._tasks:
            raise ValueError(f"duplicate task id {task.task_id!r}")
        for dep in task.deps:
            if dep not in self._tasks:
                raise KeyError(
                    f"task {task.task_id!r} depends on unknown task {dep!r}; "
                    f"add dependencies first"
                )
        self._tasks[task.task_id] = task
        self._successors.setdefault(task.task_id, [])
        for dep in task.deps:
            self._successors[dep].append(task.task_id)
        return task

    def add_compute(
        self,
        task_id: str,
        device: str,
        duration: float,
        deps: Iterable[str] = (),
        priority: int = 0,
        tag: str = "",
    ) -> Task:
        return self._add(
            Task(
                task_id=task_id,
                kind=TaskKind.COMPUTE,
                deps=tuple(deps),
                device=device,
                duration=duration,
                priority=priority,
                job_id=self.job_id,
                tag=tag,
            )
        )

    def add_comm(
        self,
        task_id: str,
        flows: Sequence[Flow],
        deps: Iterable[str] = (),
        tag: str = "",
    ) -> Task:
        return self._add(
            Task(
                task_id=task_id,
                kind=TaskKind.COMM,
                deps=tuple(deps),
                flows=tuple(flows),
                job_id=self.job_id,
                tag=tag,
            )
        )

    def add_barrier(
        self, task_id: str, deps: Iterable[str] = (), tag: str = ""
    ) -> Task:
        return self._add(
            Task(
                task_id=task_id,
                kind=TaskKind.BARRIER,
                deps=tuple(deps),
                job_id=self.job_id,
                tag=tag,
            )
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def task(self, task_id: str) -> Task:
        return self._tasks[task_id]

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def tasks(self) -> List[Task]:
        return list(self._tasks.values())

    def successors(self, task_id: str) -> List[str]:
        return list(self._successors[task_id])

    def roots(self) -> List[str]:
        return [tid for tid, task in self._tasks.items() if not task.deps]

    def devices(self) -> List[str]:
        return sorted(
            {task.device for task in self._tasks.values() if task.device is not None}
        )

    def all_flows(self) -> List[Flow]:
        flows: List[Flow] = []
        for task in self._tasks.values():
            flows.extend(task.flows)
        return flows

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; insertion order ensures construction-time
        acyclicity already, but this validates and gives a canonical order."""
        indegree = {tid: len(task.deps) for tid, task in self._tasks.items()}
        frontier = sorted(tid for tid, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while frontier:
            tid = frontier.pop(0)
            order.append(tid)
            for succ in self._successors[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
            frontier.sort()
        if len(order) != len(self._tasks):
            raise RuntimeError(f"DAG {self.job_id!r} contains a cycle")
        return order

    def critical_path_length(self) -> float:
        """Lower bound on makespan ignoring device and network contention.

        Comm tasks contribute zero here (infinite-bandwidth view); with
        profiled flow times use the engine instead.
        """
        finish: Dict[str, float] = {}
        for tid in self.topological_order():
            task = self._tasks[tid]
            start = max((finish[dep] for dep in task.deps), default=0.0)
            finish[tid] = start + (
                task.duration if task.kind is TaskKind.COMPUTE else 0.0
            )
        return max(finish.values(), default=0.0)
