"""The discrete-event co-simulation engine.

The engine executes one or more job DAGs against a shared network:

1. Ready compute tasks run on their devices (serialized per device).
2. Ready comm tasks inject their flows into the fluid network model.
3. Whenever state changes (task or flow completion, job arrival), the
   scheduler is re-invoked to produce a fresh rate allocation -- matching
   the paper's note that coordinator algorithms "rerun per EchelonFlow
   arrival/departure or per scheduling interval".
4. Time advances to the earlier of the next discrete event and the next
   flow completion under the current rates.

EchelonFlow bookkeeping: jobs register their EchelonFlows with the engine;
when a group's head flow starts, the group's reference time is pinned and
ideal finish times become available to the scheduler and the trace.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..core.echelonflow import EchelonFlow
from ..core.flow import Flow, FlowState, current_flow_id_allocator
from ..core.units import EPS
from ..scheduling.base import Scheduler, SchedulerView
from ..topology.graph import Topology
from ..topology.routing import ShortestPathRouter
from .compute import Device
from .dag import Task, TaskDag, TaskKind
from .events import EventKind, EventQueue
from .network import NetworkModel
from .trace import ComputeSpan, FlowRecord, SimulationTrace, TaskEvent

#: Events closer together than this are processed in the same round.
TIME_EPS = 1e-9

#: When several state changes coalesce into one scheduling round, the
#: invocation is attributed to the highest-precedence cause: a network
#: fault outranks a flow arrival, which outranks a departure, a bare
#: compute completion, the interval tick, and generic timers.
_CAUSE_PRECEDENCE = ("fault", "arrival", "departure", "compute", "tick", "timer")
_CAUSE_RANK = {cause: rank for rank, cause in enumerate(_CAUSE_PRECEDENCE)}


class SimulationError(Exception):
    """Raised on deadlock or an internally inconsistent run."""


class Engine:
    """Co-simulates compute DAGs and network flows under one scheduler."""

    def __init__(
        self,
        topology: Topology,
        scheduler: Scheduler,
        router=None,
        strict_rates: bool = True,
        device_slots=1,
        scheduling_interval: Optional[float] = None,
        instrumentation=None,
        incremental: bool = True,
        sanitizer=None,
        faults=None,
        allocation: Optional[str] = None,
        batch_dispatch: bool = True,
    ) -> None:
        """``device_slots`` sets per-device MIG slot counts: an int applies
        to every device, a mapping overrides per device name.

        ``scheduling_interval``: when ``None`` (default) the scheduler is
        re-invoked on every state change (per flow arrival/departure, the
        paper's first rerun policy). When set, departures no longer
        trigger rescheduling; instead the coordinator reruns on arrivals
        and on a fixed tick -- Section 5's "per scheduling interval" mode,
        which trades bandwidth left idle between ticks for far fewer
        coordinator invocations.

        ``instrumentation``: an optional
        :class:`repro.obs.instrumentation.Instrumentation` observer; the
        engine notifies it of flow/job lifecycle events and scheduler
        invocations, and installs it as the network model's observer for
        link-utilization sampling. ``None`` (default) records nothing
        and costs one attribute check per hook site.

        ``incremental``: ``True`` (default) runs the O(changed flows)
        hot path -- finish-time heap, residual link accounting, persistent
        scheduler view, per-group undated index. ``False`` keeps the
        exact same semantics but finds work by full scans (the
        pre-refactor cost model); it exists for equivalence tests and the
        ``bench_scale`` speedup report.

        ``sanitizer``: a :class:`repro.check.Sanitizer` (or a
        ``REPRO_CHECK``-style spec string) checking runtime invariants at
        event boundaries. ``None`` (default) consults the process-wide
        default -- set by the ``REPRO_CHECK`` env var, the ``--check``
        CLI flag, or ``repro.check.configure`` -- so sanitized runs need
        no per-engine wiring; pass ``False`` to force checking off
        regardless of the process default. Uses the same zero-overhead
        hook pattern as ``instrumentation``.

        ``allocation``: selects the engine's allocation mode explicitly,
        overriding ``incremental``. ``"reference"`` is the full-scan
        scalar core; ``"incremental"`` the dirty-set scalar core;
        ``"vector"`` the dirty-set core with the numpy dense max-min
        kernel and bulk rate application (raises if numpy is missing).
        ``None``/``"auto"`` (default) keeps ``incremental``'s choice and,
        in incremental mode, auto-selects the vector kernel above
        :data:`~repro.simulator.vector.VECTOR_AUTO_THRESHOLD` active
        flows. All modes are bit-identical -- same traces, same rates at
        every invocation -- enforced by the twin oracle and the
        equivalence suites; only the cost model differs.

        ``batch_dispatch``: ``True`` (default) absorbs every event
        sharing a timestamp into one round -- one scheduler invocation,
        one ``set_rates`` -- via ``EventQueue.pop_batch``. ``False``
        processes one event per round (a scheduler invocation between
        each), the legacy dispatch kept for the batching differential
        tests: traces are identical either way because no time elapses
        between same-timestamp events, only the invocation count grows.

        ``faults``: an optional chaos schedule -- a
        :class:`repro.faults.FaultSchedule`, a spec string (see
        :func:`repro.faults.parse_fault_spec`), or a prepared
        :class:`repro.faults.FaultInjector`. The injector arms
        ``EventKind.FAULT`` events that mutate link capacities, block
        routes, reroute in-flight flows, and (for ``crash_scheduler``)
        poison the next scheduler invocation; each fault triggers a
        reschedule attributed to the ``fault`` cause.
        """
        self.topology = topology
        self.scheduler = scheduler
        if allocation in (None, "auto"):
            vector = "auto" if incremental else "off"
            resolved = "auto" if incremental else "reference"
        elif allocation == "reference":
            incremental, vector, resolved = False, "off", "reference"
        elif allocation == "incremental":
            incremental, vector, resolved = True, "off", "incremental"
        elif allocation == "vector":
            incremental, vector, resolved = True, "on", "vector"
        else:
            raise ValueError(
                f"allocation must be one of 'auto', 'reference', "
                f"'incremental', 'vector', got {allocation!r}"
            )
        #: Resolved allocation mode (cost model only; results identical).
        self.allocation = resolved
        self.incremental = incremental
        self.batch_dispatch = batch_dispatch
        self.network = NetworkModel(
            topology,
            router or ShortestPathRouter(topology),
            strict=strict_rates,
            incremental=incremental,
            vector=vector,
        )
        self.events = EventQueue()
        self.devices: Dict[str, Device] = {}
        self._device_slots = device_slots
        self.echelonflows: Dict[str, EchelonFlow] = {}
        self.now = 0.0
        self.trace = SimulationTrace()
        # Per-task runtime bookkeeping, namespaced by (job_id, task_id).
        self._dags: Dict[str, TaskDag] = {}
        self._pending_deps: Dict[Tuple[str, str], int] = {}
        self._comm_outstanding: Dict[Tuple[str, str], int] = {}
        self._flow_owner: Dict[int, Tuple[str, str]] = {}
        self._tasks_left: Dict[str, int] = {}
        self._completed_jobs: List[str] = []
        self._needs_reschedule = False
        #: Causes accumulated since the last scheduler invocation.
        self._pending_causes: set = set()
        #: Not-yet-fired background-arrival batches, keyed by exact
        #: timestamp (one coalesced event per distinct injection time).
        self._pending_background: Dict[float, List[Flow]] = {}
        #: Persistent SchedulerView, refreshed per invocation (incremental
        #: mode); legacy mode reconstructs one per call like the old code.
        self._view: Optional[SchedulerView] = None
        #: Flow ids injected/departed since the scheduler last ran.
        self._delta_injected: List[int] = []
        self._delta_departed: List[int] = []
        #: group id -> active states still awaiting an ideal finish time
        #: (their EchelonFlow's reference is not pinned yet). Lets a
        #: freshly-pinned reference date exactly these states instead of
        #: rescanning every active flow.
        self._undated: Dict[str, List[FlowState]] = {}
        self.obs = instrumentation
        if instrumentation is not None:
            self.network.observer = instrumentation
        if sanitizer is None:
            # Deferred import: repro.check sits on top of the simulator.
            from ..check import default_sanitizer

            sanitizer = default_sanitizer()
        elif sanitizer is False:
            sanitizer = None
        elif isinstance(sanitizer, str):
            from ..check import make_sanitizer

            sanitizer = make_sanitizer(sanitizer)
        #: Optional repro.check Sanitizer; hooks cost one attribute test
        #: per site when absent, exactly like ``obs``.
        self.check = sanitizer
        if self.check is not None:
            self.check.attach(self)
        # Give wrapper schedulers (ResilientScheduler) an engine handle
        # for obs logging and fallback bookkeeping; walk the wrapper
        # chain so profiling/memoizing layers stay transparent.
        layer = scheduler
        seen = set()
        while layer is not None and id(layer) not in seen:
            seen.add(id(layer))
            hook = getattr(layer, "on_attached", None)
            if hook is not None:
                hook(self)
            layer = getattr(layer, "inner", None)
        if faults is not None and faults is not False:
            # Deferred import: repro.faults sits on top of the simulator.
            from ..faults import FaultInjector, FaultSchedule

            if isinstance(faults, str):
                faults = FaultInjector(FaultSchedule.parse(faults))
            elif isinstance(faults, (list, dict)):
                faults = FaultInjector(FaultSchedule.from_json(faults))
            elif isinstance(faults, FaultSchedule):
                faults = FaultInjector(faults)
            faults.attach(self)
        else:
            faults = None
        #: Optional repro.faults FaultInjector bound to this run.
        self.faults = faults
        if scheduling_interval is not None and scheduling_interval <= 0:
            raise ValueError(
                f"scheduling_interval must be positive, got {scheduling_interval}"
            )
        self.scheduling_interval = scheduling_interval
        self._tick_armed = False
        self._tick_event = None
        #: Number of scheduler invocations (coordinator cost accounting).
        self.scheduler_invocations = 0
        #: Called with the job id whenever a job's last task completes --
        #: lets cluster managers release placements and admit queued jobs.
        self.job_completion_callbacks: List[Callable[[str], None]] = []
        #: Engine-scoped flow-id allocator. Defaults to the process-wide
        #: one (so independently-built workloads keep working unchanged);
        #: forks get a private clone so flows submitted to sibling forks
        #: draw identical, collision-free ids. Wrap workload factories in
        #: ``use_flow_id_allocator(engine.flow_ids)`` to target it.
        self.flow_ids = current_flow_id_allocator()
        #: Bumped per snapshot; stamped into the returned StateHandle.
        self.state_version = 0
        #: True while run() is on the stack; snapshots are only legal
        #: between run() calls.
        self._in_run = False

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------

    def register_echelonflow(self, echelonflow: EchelonFlow) -> None:
        if echelonflow.ef_id in self.echelonflows:
            raise ValueError(f"duplicate EchelonFlow id {echelonflow.ef_id!r}")
        self.echelonflows[echelonflow.ef_id] = echelonflow

    def submit(
        self,
        dag: TaskDag,
        at_time: float = 0.0,
        echelonflows: Tuple[EchelonFlow, ...] = (),
    ) -> None:
        """Queue a job DAG for execution at ``at_time``."""
        if dag.job_id in self._dags:
            raise ValueError(f"duplicate job id {dag.job_id!r}")
        if at_time < self.now - TIME_EPS:
            raise ValueError(
                f"cannot submit job {dag.job_id!r} in the past "
                f"({at_time} < {self.now})"
            )
        dag.topological_order()  # validates acyclicity
        self._dags[dag.job_id] = dag
        for echelonflow in echelonflows:
            self.register_echelonflow(echelonflow)
        for device_name in dag.devices():
            if device_name not in self.devices:
                if isinstance(self._device_slots, int):
                    slots = self._device_slots
                else:
                    slots = self._device_slots.get(device_name, 1)
                self.devices[device_name] = Device(device_name, slots=slots)
        self.events.push(at_time, EventKind.JOB_ARRIVAL, payload=dag.job_id)

    def schedule_callback(self, time: float, callback: Callable[[], None]):
        """Run an arbitrary callback at a future time (fault/traffic injection)."""
        return self.events.push(
            time, EventKind.TIMER, callback=lambda _event: callback()
        )

    def schedule_fault(self, time: float, callback: Callable[[], None]):
        """Arm a fault callback: fires as a ``FAULT`` event (before arrivals
        and timers at the same instant) and attributes the resulting
        reschedule to the ``fault`` cause."""
        return self.events.push(
            time, EventKind.FAULT, callback=lambda _event: callback()
        )

    def inject_background_flow(self, flow: Flow, at_time: float) -> None:
        """Inject a standalone flow (background traffic) at a future time.

        Same-timestamp injections coalesce into one arrival event holding
        the whole batch (in registration order), so a 100k-flow warmup
        admits through one event instead of 100k heap entries. The batch
        is keyed by exact timestamp and sealed when its event fires;
        injections scheduled for that time afterwards open a fresh batch.
        """
        batch = self._pending_background.get(at_time)
        if batch is not None:
            batch.append(flow)
            return
        batch = [flow]
        self._pending_background[at_time] = batch

        def _inject() -> None:
            self._pending_background.pop(at_time, None)
            for queued in batch:
                self._inject_flow(queued, owner=None)

        self.schedule_callback(at_time, _inject)

    # ------------------------------------------------------------------
    # internals: task lifecycle
    # ------------------------------------------------------------------

    def _request_reschedule(self, cause: str) -> None:
        """Mark the scheduler stale, remembering why (for profiling)."""
        self._needs_reschedule = True
        self._pending_causes.add(cause)

    def _start_job(self, job_id: str) -> None:
        dag = self._dags[job_id]
        if self.obs is not None:
            self.obs.on_job_arrival(job_id, self.now)
        self._tasks_left[job_id] = len(dag)
        for task in dag.tasks():
            key = (job_id, task.task_id)
            self._pending_deps[key] = len(task.deps)
        for root in dag.roots():
            self._task_ready(dag, dag.task(root))

    def _task_ready(self, dag: TaskDag, task: Task) -> None:
        if task.kind is TaskKind.COMPUTE:
            device = self.devices[task.device]
            device.enqueue(task)
            self._try_start_device(device)
        elif task.kind is TaskKind.COMM:
            key = (dag.job_id, task.task_id)
            self._comm_outstanding[key] = len(task.flows)
            # Inject in arrangement order so the head flow (index 0) pins
            # the reference time before its followers are observed.
            for flow in sorted(task.flows, key=lambda f: (f.index_in_group, f.flow_id)):
                self._flow_owner[flow.flow_id] = key
                self._inject_flow(flow, owner=key)
        else:  # barrier
            self._complete_task(dag, task)

    def _inject_flow(self, flow: Flow, owner: Optional[Tuple[str, str]]) -> None:
        state = self.network.inject(flow, self.now)
        self._delta_injected.append(flow.flow_id)
        group = self.echelonflows.get(flow.group_id) if flow.group_id else None
        if group is not None:
            group.observe_flow_start(flow, self.now)
            if group.reference_time is not None:
                state.ideal_finish_time = group.ideal_finish_time_of(flow)
                # A freshly-pinned reference also dates earlier members:
                # exactly the group's undated states, tracked per group.
                undated = self._undated.pop(flow.group_id, None)
                if not self.incremental:
                    # Legacy cost model: find them by scanning all actives
                    # (metadata-only, so no drain materialization).
                    for other in self.network.iter_active():
                        if (
                            other.flow.group_id == flow.group_id
                            and other.ideal_finish_time is None
                        ):
                            other.ideal_finish_time = group.ideal_finish_time_of(
                                other.flow
                            )
                elif undated:
                    for other in undated:
                        if other.ideal_finish_time is None:
                            other.ideal_finish_time = group.ideal_finish_time_of(
                                other.flow
                            )
            else:
                self._undated.setdefault(flow.group_id, []).append(state)
        if self.obs is not None:
            self.obs.on_flow_injected(flow, self.now)
        if self.check is not None:
            self.check.on_flow_injected(state, self.now)
        self._request_reschedule("arrival")

    def _try_start_device(self, device: Device) -> None:
        # Fill every free slot (one pass suffices: start_next returns None
        # once slots or queue are exhausted).
        while True:
            started = device.start_next(self.now)
            if started is None:
                return
            task, finish_time = started
            self.events.push(finish_time, EventKind.COMPUTE_DONE, payload=task)

    def _complete_task(self, dag: TaskDag, task: Task) -> None:
        job_id = dag.job_id
        self.trace.task_events.append(
            TaskEvent(
                task_id=task.task_id,
                kind=task.kind.value,
                time=self.now,
                job_id=job_id,
            )
        )
        if self.obs is not None:
            self.obs.on_task_complete(task, self.now)
        if self.check is not None:
            self.check.on_task_complete(dag, task, self.now)
        self._tasks_left[job_id] -= 1
        if self._tasks_left[job_id] == 0:
            self._completed_jobs.append(job_id)
            if self.obs is not None:
                self.obs.on_job_completed(job_id, self.now)
            for callback in self.job_completion_callbacks:
                callback(job_id)
        for successor_id in dag.successors(task.task_id):
            key = (job_id, successor_id)
            self._pending_deps[key] -= 1
            if self._pending_deps[key] == 0:
                self._task_ready(dag, dag.task(successor_id))

    def _on_compute_done(self, task: Task) -> None:
        device = self.devices[task.device]
        device.finish_task(task.task_id, self.now, job_id=task.job_id)
        span = ComputeSpan(
            task_id=task.task_id,
            device=task.device,
            start=self.now - task.duration,
            end=self.now,
            job_id=task.job_id,
            tag=task.tag,
        )
        self.trace.compute_spans.append(span)
        if self.obs is not None:
            self.obs.on_compute_span(span)
        self._complete_task(self._dags[task.job_id], task)
        self._try_start_device(device)
        self._request_reschedule("compute")

    def _arm_tick(self) -> None:
        if self._tick_armed or self.scheduling_interval is None:
            return
        self._tick_armed = True

        def _tick(_event) -> None:
            self._tick_armed = False
            self._request_reschedule("tick")

        self._tick_event = self.events.push(
            self.now + self.scheduling_interval, EventKind.TIMER, callback=_tick
        )

    def _cancel_tick(self) -> None:
        if self._tick_armed and getattr(self, "_tick_event", None) is not None:
            self._tick_event.cancelled = True
            self._tick_event = None
            self._tick_armed = False

    def _on_flow_finished(self, state: FlowState) -> None:
        flow = state.flow
        self._delta_departed.append(flow.flow_id)
        ideal = state.ideal_finish_time
        group = self.echelonflows.get(flow.group_id) if flow.group_id else None
        if group is not None and group.reference_time is not None:
            ideal = group.ideal_finish_time_of(flow)
        if flow.group_id is not None and state.ideal_finish_time is None:
            # Retired while still awaiting its group's reference time.
            undated = self._undated.get(flow.group_id)
            if undated is not None:
                try:
                    undated.remove(state)
                except ValueError:
                    pass
                if not undated:
                    del self._undated[flow.group_id]
        record = FlowRecord(
            flow=flow,
            start=state.start_time,
            finish=state.finish_time if state.finish_time is not None else self.now,
            ideal_finish=ideal,
        )
        self.trace.flow_records.append(record)
        if self.obs is not None:
            self.obs.on_flow_finished(record, self.now)
        if self.check is not None:
            self.check.on_flow_finished(state, record, self.now)
        owner = self._flow_owner.pop(flow.flow_id, None)
        if owner is not None:
            self._comm_outstanding[owner] -= 1
            if self._comm_outstanding[owner] == 0:
                job_id, task_id = owner
                dag = self._dags[job_id]
                self._complete_task(dag, dag.task(task_id))
        if self.scheduling_interval is None:
            # Per-event policy: departures trigger an immediate rerun.
            self._request_reschedule("departure")
        # Interval policy: the freed capacity waits for the next tick
        # (already armed by the last reschedule).

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------

    def _reschedule(self) -> None:
        cause = self._primary_cause()
        if self.incremental and self._view is not None:
            view = self._view.refresh(
                self.now, cause, self._delta_injected, self._delta_departed
            )
        else:
            view = SchedulerView(
                now=self.now,
                network=self.network,
                echelonflows=self.echelonflows,
                trigger_cause=cause,
                injected_flows=tuple(self._delta_injected),
                departed_flows=tuple(self._delta_departed),
            )
            if self.incremental:
                self._view = view
        self._delta_injected.clear()
        self._delta_departed.clear()
        rates = self.scheduler.allocate(view)
        if self.check is not None:
            self.check.on_allocation(view, rates)
        self.network.set_rates(rates)
        self._needs_reschedule = False
        self._pending_causes.clear()
        self.scheduler_invocations += 1
        if self.obs is not None:
            self.obs.on_reschedule(self.now, cause, self.network.active_count)
        if self.check is not None:
            self.check.on_rates_applied(view)
        if self.network.active_count:
            self._arm_tick()

    def _primary_cause(self) -> str:
        """The highest-precedence pending cause (see _CAUSE_PRECEDENCE)."""
        if not self._pending_causes:
            return "unknown"
        return min(
            self._pending_causes,
            key=lambda c: _CAUSE_RANK.get(c, len(_CAUSE_PRECEDENCE)),
        )

    def run(self, until: float = float("inf"), max_rounds: int = 10_000_000) -> SimulationTrace:
        """Run to completion (or ``until``); returns the trace.

        Raises :class:`SimulationError` on deadlock: active flows exist but
        the scheduler assigns them all zero rate and no discrete event is
        pending.

        A run paused by ``until`` can be resumed by calling ``run`` again;
        end-of-run invariant checks (the sanitizer's ``on_run_end``) fire
        only when the run actually drains, so an ``until`` pause neither
        materializes lazy drain state nor perturbs the resumed run --
        pause/resume (and snapshot/fork at the pause point) is bit-exact.
        """
        self._in_run = True
        try:
            return self._run(until, max_rounds)
        finally:
            self._in_run = False

    def _run(self, until: float, max_rounds: int) -> SimulationTrace:
        rounds = 0
        paused = False
        while True:
            rounds += 1
            if rounds > max_rounds:
                raise SimulationError(f"exceeded {max_rounds} simulation rounds")

            if self._needs_reschedule and self.network.active_count:
                self._reschedule()

            next_event = self.events.peek_time()
            net_interval = self.network.earliest_finish_interval()
            next_network = self.now + net_interval
            next_time = min(next_event, next_network)

            if next_time == float("inf"):
                if self.network.active_count:
                    starving = [
                        str(s.flow) for s in self.network.active_states()
                    ]
                    raise SimulationError(
                        f"deadlock at t={self.now}: flows starving with zero "
                        f"rate and no pending events: {starving[:5]}"
                    )
                break
            if next_time > until:
                self.network.advance(until - self.now, self.now)
                self.now = until
                paused = True
                break

            # Advance the fluid model to the event time.
            finished_flows = self.network.advance(next_time - self.now, self.now)
            self.now = next_time
            for state in finished_flows:
                self._on_flow_finished(state)

            if self.batch_dispatch:
                due_events = self.events.pop_batch(self.now, TIME_EPS)
            else:
                due_events = self.events.pop_first_due(self.now, TIME_EPS)
            for event in due_events:
                if event.kind is EventKind.JOB_ARRIVAL:
                    self._start_job(event.payload)
                    self._request_reschedule("arrival")
                elif event.kind is EventKind.COMPUTE_DONE:
                    self._on_compute_done(event.payload)
                elif event.kind is EventKind.FAULT:
                    if event.callback is not None:
                        event.callback(event)
                    self._request_reschedule("fault")
                elif event.kind is EventKind.TIMER:
                    if event.callback is not None:
                        event.callback(event)
                    self._request_reschedule("timer")
            if self.obs is not None:
                self.obs.on_round(self.now, len(due_events), len(finished_flows))

            # An idle network does not need its tick any more; it re-arms
            # on the next injection's reschedule.
            if self.network.active_count == 0:
                self._cancel_tick()

            # Flows that finished exactly as a rate change landed. The
            # zero-length advance retires them via the finish index (or a
            # scan in reference mode) without draining anyone.
            for state in self.network.advance(0.0, self.now):
                self._on_flow_finished(state)

        self.trace.end_time = self.now
        if self.check is not None and not paused:
            self.check.on_run_end(self.trace)
        return self.trace

    # ------------------------------------------------------------------
    # snapshot / fork / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> "StateHandle":
        """Capture the full run state into a versioned, reusable handle.

        Only legal between ``run()`` calls -- pause a run at the desired
        instant with ``run(until=t)`` first. The handle is pristine (no
        live engine aliases it), so it can seed any number of
        :meth:`fork`/:meth:`restore` calls. See
        :mod:`repro.simulator.state` for the exact copy-on-write and
        bit-identity rules, and for what raises
        :class:`~repro.simulator.state.SnapshotError`.
        """
        from .state import capture

        self.state_version += 1
        return capture(self, version=self.state_version)

    def fork(self, handle: Optional["StateHandle"] = None) -> "Engine":
        """An independent engine resuming from ``handle`` (default: now).

        The fork owns private copies of all mutable state, a private
        flow-id allocator positioned past every parent id, and shares
        only immutable objects -- plus, deliberately, a wrapped
        :class:`~repro.scheduling.cache.MemoizingScheduler`'s fingerprint
        cache, so sibling forks warm-start one another. Instrumentation
        and job-completion callbacks are not carried over.
        """
        from .state import materialize

        if handle is None:
            handle = self.snapshot()
        return materialize(handle)

    def restore(self, handle: "StateHandle") -> "Engine":
        """Rewind *this* engine to a previously captured handle, in place.

        Equivalent to :meth:`fork` but reuses this object's identity;
        like a fork, the restored engine drops instrumentation and
        job-completion callbacks. The handle stays pristine and can be
        restored to again.
        """
        from .state import materialize

        materialize(handle, target=self)
        return self

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    @property
    def completed_jobs(self) -> List[str]:
        """Completed *workload* jobs, in completion order.

        Synthetic filler jobs (ids starting with ``_``, e.g. the
        ``_pause/...`` device-blockers from ``workloads.faults``) are
        excluded so fault experiments report clean JCT numbers; see
        :attr:`all_completed_jobs` for the unfiltered list.
        """
        return [j for j in self._completed_jobs if not j.startswith("_")]

    @property
    def all_completed_jobs(self) -> List[str]:
        """Every completed job, including synthetic ``_``-prefixed fillers."""
        return list(self._completed_jobs)

    def job_completion_time(self, job_id: str) -> float:
        """Completion time of a job: last task completion in its DAG.

        Backed by the trace's lazy per-job index, so repeated queries in
        analysis loops cost O(tasks of the job), not O(all task events).
        """
        events = self.trace.task_events_of_job(job_id)
        dag = self._dags[job_id]
        if len(events) != len(dag):
            raise SimulationError(
                f"job {job_id!r} has {len(dag) - len(events)} unfinished tasks"
            )
        return max(event.time for event in events)
