"""Event taxonomy and the simulator's priority queue.

The engine advances time between *discrete* events (task completions,
scheduled arrivals, injected faults); network flow completions are derived
from rates rather than queued, so they never go stale. Ties at the same
timestamp are broken by (priority, sequence) for full determinism.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional


class EventKind(enum.Enum):
    JOB_ARRIVAL = "job_arrival"
    COMPUTE_DONE = "compute_done"
    TIMER = "timer"
    FAULT = "fault"


#: Lower number processes first among same-time events. Compute completions
#: precede arrivals so a device freed at time t can pick up work arriving
#: at t within one scheduling round.
_KIND_PRIORITY = {
    EventKind.COMPUTE_DONE: 0,
    EventKind.FAULT: 1,
    EventKind.JOB_ARRIVAL: 2,
    EventKind.TIMER: 3,
}

@dataclass(order=True)
class Event:
    """One discrete event. Ordering key: (time, kind priority, sequence)."""

    time: float
    priority: int = field(compare=True)
    sequence: int = field(compare=True)
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)
    callback: Optional[Callable[["Event"], None]] = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """A heap of :class:`Event` with lazy cancellation.

    The tie-breaking sequence counter is *queue-scoped* (not
    process-global) so a queue's state is fully capturable: a snapshot
    records the live events plus ``next_sequence``, and a forked queue
    rebuilt from them reproduces the exact same (time, priority,
    sequence) ordering -- including between copied events (which keep
    their original sequence numbers) and events pushed after the fork
    (which always draw larger ones).
    """

    def __init__(self, next_sequence: int = 0) -> None:
        self._heap: List[Event] = []
        self._next_sequence = next_sequence

    @property
    def next_sequence(self) -> int:
        """The sequence number the next pushed event will receive."""
        return self._next_sequence

    def push(
        self,
        time: float,
        kind: EventKind,
        payload: Any = None,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        if time != time or time == float("inf"):
            raise ValueError(f"event time must be finite, got {time}")
        event = Event(
            time=time,
            priority=_KIND_PRIORITY[kind],
            sequence=self._next_sequence,
            kind=kind,
            payload=payload,
            callback=callback,
        )
        self._next_sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def push_restored(self, event: Event) -> Event:
        """Re-admit a previously captured event, keeping its sequence.

        Used by snapshot/fork/restore: the copied event's original
        (time, priority, sequence) key is preserved so tie-breaking in
        the resumed run matches the uninterrupted run bit for bit.
        """
        heapq.heappush(self._heap, event)
        return event

    def live_events(self) -> Iterator[Event]:
        """Iterate the non-cancelled events in heap (not sorted) order."""
        return (event for event in self._heap if not event.cancelled)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Time of the next live event, or ``inf`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else float("inf")

    def pop(self) -> Event:
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def pop_due(self, time: float, tolerance: float = 0.0) -> List[Event]:
        """Pop every live event with ``event.time <= time + tolerance``."""
        due: List[Event] = []
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0].time > time + tolerance:
                break
            due.append(heapq.heappop(self._heap))
        return due

    def pop_batch(self, time: float, tolerance: float = 0.0) -> List[Event]:
        """The full batch of events sharing the frontier timestamp.

        The engine's batched dispatch: every event due at ``time`` (within
        ``tolerance``) is popped in one call, in (kind priority, sequence)
        order -- faults before arrivals before timers -- so one scheduler
        invocation and one ``set_rates`` can absorb all simultaneous
        state changes. Semantically this is :meth:`pop_due`; the separate
        name documents the batching contract the engine relies on.
        """
        return self.pop_due(time, tolerance)

    def pop_first_due(self, time: float, tolerance: float = 0.0) -> List[Event]:
        """At most one due event: the legacy per-event dispatch mode.

        Returns a list (empty or singleton) so the engine's dispatch loop
        is shared with :meth:`pop_batch`. Kept for the batched-dispatch
        differential tests: processing same-timestamp events one at a
        time (with a scheduler invocation between each) must produce the
        identical trace as one batched round, just more invocations.
        """
        self._drop_cancelled()
        if self._heap and self._heap[0].time <= time + tolerance:
            return [heapq.heappop(self._heap)]
        return []

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        self._drop_cancelled()
        return bool(self._heap)
