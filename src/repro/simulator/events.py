"""Event taxonomy and the simulator's priority queue.

The engine advances time between *discrete* events (task completions,
scheduled arrivals, injected faults); network flow completions are derived
from rates rather than queued, so they never go stale. Ties at the same
timestamp are broken by (priority, sequence) for full determinism.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


class EventKind(enum.Enum):
    JOB_ARRIVAL = "job_arrival"
    COMPUTE_DONE = "compute_done"
    TIMER = "timer"
    FAULT = "fault"


#: Lower number processes first among same-time events. Compute completions
#: precede arrivals so a device freed at time t can pick up work arriving
#: at t within one scheduling round.
_KIND_PRIORITY = {
    EventKind.COMPUTE_DONE: 0,
    EventKind.FAULT: 1,
    EventKind.JOB_ARRIVAL: 2,
    EventKind.TIMER: 3,
}

_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """One discrete event. Ordering key: (time, kind priority, sequence)."""

    time: float
    priority: int = field(compare=True)
    sequence: int = field(compare=True)
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)
    callback: Optional[Callable[["Event"], None]] = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """A heap of :class:`Event` with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: List[Event] = []

    def push(
        self,
        time: float,
        kind: EventKind,
        payload: Any = None,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        if time != time or time == float("inf"):
            raise ValueError(f"event time must be finite, got {time}")
        event = Event(
            time=time,
            priority=_KIND_PRIORITY[kind],
            sequence=next(_sequence),
            kind=kind,
            payload=payload,
            callback=callback,
        )
        heapq.heappush(self._heap, event)
        return event

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Time of the next live event, or ``inf`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else float("inf")

    def pop(self) -> Event:
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def pop_due(self, time: float, tolerance: float = 0.0) -> List[Event]:
        """Pop every live event with ``event.time <= time + tolerance``."""
        due: List[Event] = []
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0].time > time + tolerance:
                break
            due.append(heapq.heappop(self._heap))
        return due

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        self._drop_cancelled()
        return bool(self._heap)
