"""The fluid-flow network model.

Active flows drain at scheduler-chosen rates between events. The model owns
per-flow :class:`~repro.core.flow.FlowState`, the pinned path of each flow,
and byte accounting; it validates that the scheduler's allocation respects
link capacities before accepting it.

The model is deliberately ignorant of *why* flows exist (jobs, EchelonFlows,
collectives) -- it exposes exactly what the paper's coordinator would see:
flow sizes, endpoints, paths, remaining bytes, and ideal finish times.

Incremental core
----------------

The hot path is O(changed flows) per event, not O(active flows):

* **Lazy drain.** Each flow carries a sync anchor (the last time its
  ``remaining`` was materialized). Advancing time only touches flows that
  finish now; everyone else drains implicitly along ``remaining - rate *
  elapsed`` and is materialized on demand (scheduler reads, rate changes,
  direct state access). The arithmetic is identical whichever mode finds
  the flows to touch, so the scan-based reference mode reproduces the
  incremental mode's traces bit for bit.
* **Finish-time heap.** Projected finish times are pushed into a lazily
  invalidated min-heap whenever a rate changes. ``earliest_finish_interval``
  and ``advance`` pop candidates instead of scanning; keys conservatively
  lower-bound the true finish (they are the epsilon-threshold crossing),
  and every candidate is re-checked with the exact per-flow arithmetic, so
  the heap only ever narrows *where* to look, never *what* is computed.
* **Residual accounting.** A :class:`~repro.simulator.allocation.LinkAccounting`
  tracks per-link load deltas as rates change, so the ``set_rates``
  feasibility gate inspects only the links whose load moved, lenient-mode
  scaling relaxes without rebuilding usage maps, and ``link_usage`` (the
  observer's sampling hook) is a read of maintained state.
* **Dirty-set rates.** ``set_rates`` applies only rates that actually
  changed; unchanged flows keep their anchors, heap entries, and link
  contributions untouched.

Constructing the model with ``incremental=False`` keeps the exact same
drain/retire/allocation semantics but finds work by full scans -- the
pre-refactor cost model. It exists for the equivalence tests and the
``bench_scale`` speedup report.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import bisect_left, insort
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.flow import Flow, FlowState
from ..core.units import EPS
from ..topology.graph import Link, Topology
from .allocation import DemandSet, FlowDemand, LinkAccounting, feasible

#: Relative slack used when popping heap candidates. Heap keys are float
#: projections of per-flow finish times; the slack absorbs rounding drift
#: between a key computed at anchor time and the exact per-flow arithmetic
#: re-evaluated now. Extra candidates cost a re-check and a re-push, never
#: a wrong answer.
_HEAP_SLACK = 1e-9

#: Rebuild the finish heap once stale (lazily invalidated) entries dominate.
_HEAP_COMPACT_FACTOR = 4
_HEAP_COMPACT_MIN = 64


class CapacityViolation(Exception):
    """The scheduler proposed rates exceeding a link capacity."""


#: Process-global source of capacity-mutation tokens. Each runtime
#: capacity change appends one globally-unique token to the mutating
#: model's ``capacity_lineage``, so two models that diverged from a
#: common snapshot (a fork and its parent) can never reach the same
#: lineage by mutating different links the same *number* of times --
#: the staleness hazard a bare epoch counter has. Tokens feed cache
#: keys only (MemoizingScheduler fingerprints), never results, so their
#: process-global order does not perturb determinism.
_capacity_token_counter = itertools.count(1)


class NetworkModel:
    """Tracks active flows and enforces link-capacity-respecting rates."""

    def __init__(
        self,
        topology: Topology,
        router,
        strict: bool = True,
        incremental: bool = True,
        vector="off",
    ) -> None:
        self.topology = topology
        self.router = router
        self.strict = strict
        #: ``False`` switches the scan-based reference data paths in; the
        #: semantics (and therefore traces) are identical either way.
        self.incremental = incremental
        #: Max-min kernel selection: ``"off"`` keeps the scalar kernel,
        #: ``"on"`` forces the numpy dense kernel, ``"auto"`` switches to
        #: it above :data:`~repro.simulator.vector.VECTOR_AUTO_THRESHOLD`
        #: active flows. All choices are bit-identical; the mode travels
        #: on the :class:`DemandSet` this model hands to schedulers.
        if vector is True:
            vector = "on"
        elif vector is False or vector is None:
            vector = "off"
        if vector not in ("off", "on", "auto"):
            raise ValueError(
                f"vector must be one of 'off', 'on', 'auto', got {vector!r}"
            )
        if vector == "on":
            from .vector import HAVE_NUMPY

            if not HAVE_NUMPY:
                raise RuntimeError(
                    "vector allocation mode requires numpy, which is not "
                    "installed; use allocation='incremental' instead"
                )
        self.vector_mode = vector
        self._active: Dict[int, FlowState] = {}
        self._paths: Dict[int, Tuple[Link, ...]] = {}
        self._completed: Dict[int, FlowState] = {}
        #: Total bytes delivered, for conservation checks.
        self.bytes_delivered = 0.0
        #: Optional observer (repro.obs Instrumentation): notified with
        #: (now, dt, {Link: aggregate rate}) on every nonzero advance.
        #: ``None`` keeps the fluid loop free of accounting overhead.
        self.observer = None
        #: Bumped on every runtime capacity mutation; consumers that cache
        #: anything derived from capacities (e.g. MemoizingScheduler
        #: fingerprints) fold this in to invalidate across faults.
        self.capacity_epoch = 0
        #: Tuple of globally-unique tokens, one appended per capacity
        #: mutation. Inherited by forks, so a fork and its parent share a
        #: lineage prefix exactly as long as they share capacity history;
        #: see :data:`_capacity_token_counter`.
        self.capacity_lineage: Tuple[int, ...] = ()

        # -- incremental state ------------------------------------------
        #: The model's own clock: the latest time seen by inject/advance.
        self._now = 0.0
        #: flow id -> time its ``remaining`` was last materialized.
        self._anchor: Dict[int, float] = {}
        #: Latest time every active flow is known to be materialized at;
        #: lets back-to-back scheduler reads in one round skip the scan.
        self._synced_at = float("-inf")
        #: Active flow ids in ascending order (the canonical iteration
        #: order everywhere a scan used to call ``sorted``).
        self._order: List[int] = []
        #: flow id -> unit-weight FlowDemand built once at inject time.
        self._demands: Dict[int, FlowDemand] = {}
        #: Structural revision of the active flow set: bumped on every
        #: inject/retire/reroute. Keys the cached :class:`DemandSet` (and
        #: through it the vector kernel's dense incidence interning).
        self._demands_rev = 0
        self._demands_cache: Optional[Tuple[int, DemandSet]] = None
        #: Always-current per-link load/membership bookkeeping.
        self.accounting = LinkAccounting()
        #: Min-heap of (finish key, flow id, token); stale entries carry
        #: an outdated token and are dropped when popped.
        self._finish_heap: List[Tuple[float, int, int]] = []
        self._heap_token: Dict[int, int] = {}
        #: EchelonFlow buckets: group id -> (sorted fid list, state list).
        self._group_fids: Dict[Optional[str], List[int]] = {}
        self._group_states: Dict[Optional[str], List[FlowState]] = {}

    # ------------------------------------------------------------------
    # snapshot/fork support
    # ------------------------------------------------------------------

    def fork(self) -> "NetworkModel":
        """A fully independent copy of the model's run state.

        Copy-on-write at the object level: immutable heavy objects --
        :class:`~repro.core.flow.Flow` descriptions, retired
        :class:`~repro.core.flow.FlowState` (never mutated after
        ``_retire``), frozen demands' link tuples -- are shared by
        reference; everything mutable is copied. The topology is cloned
        (fresh :class:`Link` objects, since fault injection mutates
        ``Link.capacity`` in place) and every link reference -- pinned
        paths, demands, residual accounting, the router's caches -- is
        translated onto the clone.

        Exactness rules that make forked-and-resumed runs bit-identical
        to uninterrupted ones:

        * lazily-drained flows are *not* materialized: raw ``remaining``
          and drain anchors are copied as-is, so later materialization
          performs the identical float arithmetic;
        * the finish heap, its tokens, and the residual accounting's
          float accumulators are copied verbatim, never recomputed;
        * active :class:`FlowState` objects are duplicated field-for-field
          (the parent keeps mutating its own), and the group buckets are
          rebuilt to point at the duplicates.

        The observer is *not* carried over: instrumentation either
        detaches or is re-attached explicitly by the engine fork.
        """
        topology = self.topology.clone()
        if hasattr(self.router, "fork"):
            router = self.router.fork(topology)
        else:
            # Custom router: deepcopy with the topology identity pre-seeded
            # so its internal link references land on the clone's objects.
            import copy

            memo: Dict[int, object] = {id(self.topology): topology}
            for key, link in self.topology._links.items():
                memo[id(link)] = topology.link(*key)
            router = copy.deepcopy(self.router, memo)

        twin = NetworkModel(
            topology,
            router,
            strict=self.strict,
            incremental=self.incremental,
            vector=self.vector_mode,
        )
        twin.capacity_epoch = self.capacity_epoch
        twin.capacity_lineage = self.capacity_lineage
        twin.bytes_delivered = self.bytes_delivered
        twin._now = self._now
        twin._synced_at = self._synced_at
        twin._order = list(self._order)
        twin._anchor = dict(self._anchor)
        #: Retired states are immutable from retirement on; share them.
        twin._completed = dict(self._completed)
        twin._active = {
            fid: FlowState(
                flow=state.flow,
                start_time=state.start_time,
                remaining=state.remaining,
                rate=state.rate,
                finish_time=state.finish_time,
                ideal_finish_time=state.ideal_finish_time,
            )
            for fid, state in self._active.items()
        }
        translate = topology.link
        twin._paths = {
            fid: tuple(translate(link.src, link.dst) for link in path)
            for fid, path in self._paths.items()
        }
        twin._demands = {
            fid: FlowDemand(flow_id=fid, path=twin._paths[fid])
            for fid in self._demands
        }
        link_map = {key: translate(*key) for key in self.accounting.links}
        twin.accounting = self.accounting.clone(link_map)
        twin._finish_heap = list(self._finish_heap)
        twin._heap_token = dict(self._heap_token)
        twin._group_fids = {
            gid: list(fids) for gid, fids in self._group_fids.items()
        }
        twin._group_states = {
            gid: [twin._active[fid] for fid in fids]
            for gid, fids in self._group_fids.items()
        }
        return twin

    # ------------------------------------------------------------------
    # flow lifecycle
    # ------------------------------------------------------------------

    def inject(
        self, flow: Flow, now: float, path: Optional[Tuple[Link, ...]] = None
    ) -> FlowState:
        """Admit a flow at time ``now``; its path is pinned immediately.

        ``path`` overrides route computation -- the differential twin oracle
        uses it to replay a run with the primary's pinned (possibly
        fault-rerouted) paths rather than re-deriving routes.
        """
        flow_id = flow.flow_id
        if flow_id in self._active or flow_id in self._completed:
            raise ValueError(f"flow {flow_id} already injected")
        if path is None:
            path = self.router.path(flow.src, flow.dst, flow_id)
        state = FlowState(flow=flow, start_time=now, remaining=flow.size)
        self._active[flow_id] = state
        self._demands_rev += 1
        self._paths[flow_id] = path
        self._demands[flow_id] = FlowDemand(flow_id=flow_id, path=path)
        self._anchor[flow_id] = now
        if now > self._now:
            self._now = now
        insort(self._order, flow_id)
        self.accounting.watch(flow_id, path)
        self._bucket_add(flow.group_id, flow_id, state)
        if self.observer is not None:
            self.observer.on_flow_admitted(flow, path, now)
        return state

    def _retire(self, state: FlowState, finish_time: float) -> None:
        """Move a drained flow from the active set to the completed set."""
        flow_id = state.flow.flow_id
        old_rate = state.rate
        state.finish_time = finish_time
        state.rate = 0.0
        self.accounting.unwatch(flow_id, self._paths[flow_id], old_rate)
        self._heap_token[flow_id] = self._heap_token.get(flow_id, 0) + 1
        self._demands_rev += 1
        del self._active[flow_id]
        del self._anchor[flow_id]
        index = bisect_left(self._order, flow_id)
        del self._order[index]
        self._bucket_remove(state.flow.group_id, flow_id)
        self._completed[flow_id] = state

    # -- group buckets --------------------------------------------------

    def _bucket_add(
        self, group_id: Optional[str], flow_id: int, state: FlowState
    ) -> None:
        fids = self._group_fids.setdefault(group_id, [])
        states = self._group_states.setdefault(group_id, [])
        index = bisect_left(fids, flow_id)
        fids.insert(index, flow_id)
        states.insert(index, state)

    def _bucket_remove(self, group_id: Optional[str], flow_id: int) -> None:
        fids = self._group_fids[group_id]
        index = bisect_left(fids, flow_id)
        del fids[index]
        del self._group_states[group_id][index]
        if not fids:
            del self._group_fids[group_id]
            del self._group_states[group_id]

    def group_buckets(self) -> List[Tuple[Optional[str], List[FlowState]]]:
        """Active flows bucketed by group id, each bucket fid-sorted.

        Buckets are the engine-maintained lists themselves (do not mutate);
        they are returned sorted by group id with the ungrouped (``None``)
        bucket last, the order every group-aware scheduler normalizes to.
        """
        self.sync_active()
        return [
            (group_id, self._group_states[group_id])
            for group_id in sorted(
                self._group_fids, key=lambda g: (g is None, g or "")
            )
        ]

    # -- lazy drain -----------------------------------------------------

    def _sync_flow(self, flow_id: int, t: float) -> None:
        """Materialize a flow's ``remaining`` at time ``t``."""
        anchor = self._anchor[flow_id]
        if t <= anchor:
            return
        state = self._active[flow_id]
        rate = state.rate
        if rate > 0.0:
            before = state.remaining
            after = before - rate * (t - anchor)
            if after < 0.0:
                after = 0.0
            state.remaining = after
            self.bytes_delivered += before - after
        self._anchor[flow_id] = t

    def sync_active(self, t: Optional[float] = None) -> None:
        """Materialize every active flow's ``remaining`` (scheduler reads)."""
        if t is None:
            t = self._now
        elif t > self._now:
            self._now = t
        if t <= self._synced_at:
            # Every anchor is already at or past t: nothing would drain.
            return
        for flow_id in self._order:
            self._sync_flow(flow_id, t)
        self._synced_at = t

    def _projected_remaining(self, state: FlowState, anchor: float, t: float) -> float:
        """``remaining`` the flow would have at ``t`` -- no mutation."""
        rate = state.rate
        if rate <= 0.0 or t <= anchor:
            return state.remaining
        after = state.remaining - rate * (t - anchor)
        return after if after > 0.0 else 0.0

    def _finish_threshold(self, flow: Flow) -> float:
        return flow.finish_epsilon

    def _time_to_finish(self, state: FlowState, anchor: float) -> float:
        """Interval until the flow drains to zero at its current rate."""
        remaining = self._projected_remaining(state, anchor, self._now)
        if remaining <= self._finish_threshold(state.flow):
            return 0.0
        if state.rate <= EPS:
            return float("inf")
        return remaining / state.rate

    # -- finish heap ----------------------------------------------------

    def _push_finish(self, flow_id: int, state: FlowState) -> None:
        """(Re)key a flow's heap entry after a rate change."""
        token = self._heap_token.get(flow_id, 0) + 1
        self._heap_token[flow_id] = token
        anchor = self._anchor[flow_id]
        slack = state.remaining - self._finish_threshold(state.flow)
        if state.rate > EPS:
            key = anchor + slack / state.rate
        elif slack <= 0.0:
            # Zero-rate but already drained below threshold (e.g. paused
            # right at the finish line): retire-able immediately.
            key = anchor
        else:
            return
        heapq.heappush(self._finish_heap, (key, flow_id, token))
        if len(self._finish_heap) > max(
            _HEAP_COMPACT_MIN, _HEAP_COMPACT_FACTOR * len(self._active)
        ):
            self._compact_heap()

    def _compact_heap(self) -> None:
        tokens = self._heap_token
        active = self._active
        self._finish_heap = [
            entry
            for entry in self._finish_heap
            if entry[1] in active and tokens.get(entry[1]) == entry[2]
        ]
        heapq.heapify(self._finish_heap)

    def _pop_candidates(self, horizon: float) -> List[Tuple[float, int, int]]:
        """Pop live heap entries keyed at or before ``horizon`` (+slack)."""
        heap = self._finish_heap
        tokens = self._heap_token
        active = self._active
        bound = horizon + _HEAP_SLACK * max(1.0, abs(horizon))
        candidates: List[Tuple[float, int, int]] = []
        while heap:
            key, flow_id, token = heap[0]
            if flow_id not in active or tokens.get(flow_id) != token:
                heapq.heappop(heap)
                continue
            if key > bound:
                break
            candidates.append(heapq.heappop(heap))
        return candidates

    # ------------------------------------------------------------------
    # read API
    # ------------------------------------------------------------------

    def active_states(self) -> List[FlowState]:
        """Unfinished flows, sorted by flow id for determinism."""
        self.sync_active()
        active = self._active
        return [active[fid] for fid in self._order]

    def iter_active(self) -> Iterator[FlowState]:
        """Iterate active states (fid order) without materializing drains.

        For metadata-only consumers (group ids, deadlines); anyone reading
        ``remaining`` should go through :meth:`active_states` or
        :meth:`state` so lazily-drained bytes are materialized first.
        """
        active = self._active
        return (active[fid] for fid in self._order)

    def state(self, flow_id: int) -> FlowState:
        if flow_id in self._active:
            self._sync_flow(flow_id, self._now)
            return self._active[flow_id]
        return self._completed[flow_id]

    def path(self, flow_id: int) -> Tuple[Link, ...]:
        return self._paths[flow_id]

    def demand(self, flow_id: int, weight: float = 1.0) -> FlowDemand:
        if weight == 1.0:
            return self._demands[flow_id]
        return FlowDemand(flow_id=flow_id, path=self._paths[flow_id], weight=weight)

    def _vector_active(self) -> bool:
        """Does the current kernel decision land on the vector path?"""
        mode = self.vector_mode
        if mode == "off":
            return False
        from .vector import HAVE_NUMPY, VECTOR_AUTO_THRESHOLD

        if not HAVE_NUMPY:
            return False
        if mode == "on":
            return True
        return len(self._active) >= VECTOR_AUTO_THRESHOLD

    def demands(self) -> DemandSet:
        """Unit-weight demands of every active flow, fid-ascending.

        Returns a :class:`DemandSet` cached per structural revision, so
        back-to-back scheduler reads within a round reuse both the list
        and -- in vector mode -- the dense incidence interning built on
        first kernel dispatch. The kernel hint is stamped at build time
        from :attr:`vector_mode` (and, in ``auto`` mode, the active flow
        count, which only changes when the revision does).
        """
        rev = self._demands_rev
        cache = self._demands_cache
        if cache is not None and cache[0] == rev:
            return cache[1]
        demands = self._demands
        demand_set = DemandSet(
            (demands[fid] for fid in self._order),
            use_vector=self._vector_active(),
        )
        self._demands_cache = (rev, demand_set)
        return demand_set

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def completed_states(self) -> List[FlowState]:
        return [self._completed[fid] for fid in sorted(self._completed)]

    # ------------------------------------------------------------------
    # rates and time
    # ------------------------------------------------------------------

    def set_rates(self, rates: Mapping[int, float]) -> None:
        """Apply a rate allocation; unlisted active flows idle at rate 0.

        Only flows whose rate actually changes are touched: each is
        drained to the present at its old rate, re-keyed in the finish
        heap, and has its per-link contributions shifted. In ``strict``
        mode an infeasible allocation raises :class:`CapacityViolation`;
        otherwise rates are scaled down on each oversubscribed link
        (modelling switch fair-queueing backpressure).

        When the allocation arrives as a
        :class:`~repro.simulator.vector.VectorAllocation` still aligned
        to this model's live flow set, the whole application -- change
        detection, the delta feasibility gate, residual accounting, and
        the finish-heap rebuild -- runs through the array bulk path
        (:meth:`_set_rates_bulk`); the per-flow state mutations it
        performs are identical to this scalar path's.
        """
        if self.incremental and self._set_rates_bulk(rates):
            return
        changed: List[Tuple[int, FlowState, float]] = []
        for flow_id, state in self._active.items():
            rate = rates.get(flow_id, 0.0)
            if rate < 0:
                raise ValueError(f"negative rate for flow {flow_id}: {rate}")
            if rate != state.rate:
                changed.append((flow_id, state, rate))

        if self.incremental:
            ok = self._feasible_changed(changed)
        else:
            clean = {fid: rates.get(fid, 0.0) for fid in self._active}
            ok = feasible(self.demands(), clean, tolerance=1e-6)
        if not ok:
            if self.strict:
                raise CapacityViolation(
                    "scheduler allocation violates link capacities"
                )
            clean = {fid: rates.get(fid, 0.0) for fid in self._active}
            clean = self._scale_to_capacity(clean)
            changed = [
                (fid, state, clean[fid])
                for fid, state in self._active.items()
                if clean[fid] != state.rate
            ]

        apply_delta = self.accounting.apply
        for flow_id, state, rate in changed:
            self._sync_flow(flow_id, self._now)
            old = state.rate
            state.rate = rate
            apply_delta(self._paths[flow_id], old, rate)
            self._push_finish(flow_id, state)
        if self.observer is not None and changed:
            self.observer.on_rates_applied(self._now, changed)

    def _set_rates_bulk(self, rates) -> bool:
        """Array fast path of :meth:`set_rates`; ``False`` = fall back.

        Handles allocations arriving as a
        :class:`~repro.simulator.vector.VectorAllocation` whose dense
        incidence is still the one cached for the current structural
        revision -- which guarantees row ``i`` is the ``i``-th active
        flow in fid order. Change detection, the delta feasibility gate,
        and the per-link residual-accounting aggregates become array
        reductions; the remaining python loop touches only changed flows
        and performs the same per-flow mutations as the scalar path
        (sync, rate store as a python float, heap token bump). Heap
        entries are batch-appended and re-heapified once -- heap pops
        follow the total (key, fid, token) order, so internal layout
        differences never change what is popped.

        Infeasible allocations raise in strict mode exactly like the
        scalar path; in lenient mode the method backs off (returns
        ``False``) so the scalar rescale handles them.
        """
        from .vector import HAVE_NUMPY, VectorAllocation

        if not HAVE_NUMPY or not isinstance(rates, VectorAllocation):
            return False
        cache = self._demands_cache
        if (
            cache is None
            or cache[0] != self._demands_rev
            or rates.incidence is not cache[1]._incidence
        ):
            return False
        import numpy as np

        inc = rates.incidence
        order = self._order
        new = rates.array
        if inc.n_flows != len(order):
            return False
        if (new < 0.0).any():
            row = int(np.nonzero(new < 0.0)[0][0])
            raise ValueError(
                f"negative rate for flow {int(inc.fids[row])}: {new[row]!r}"
            )
        active = self._active
        states = [active[fid] for fid in order]
        old = np.fromiter(
            (state.rate for state in states), dtype=np.float64, count=len(states)
        )
        changed_mask = new != old
        if not changed_mask.any():
            return True
        delta = new - old
        links = inc.links
        link_delta = np.bincount(
            inc.cols, weights=delta[inc.rows], minlength=inc.n_links
        )
        moved = link_delta != 0.0
        if moved.any():
            loads = self.accounting.loads
            capacities = self.accounting.capacities
            moved_idx = np.nonzero(moved)[0].tolist()
            load_arr = np.fromiter(
                (loads[links[j].key] for j in moved_idx),
                dtype=np.float64,
                count=len(moved_idx),
            )
            cap_arr = np.fromiter(
                (capacities[links[j].key] for j in moved_idx),
                dtype=np.float64,
                count=len(moved_idx),
            )
            tol = 1e-6
            if (
                (load_arr + link_delta[moved]) > cap_arr * (1.0 + tol) + tol
            ).any():
                if self.strict:
                    raise CapacityViolation(
                        "scheduler allocation violates link capacities"
                    )
                return False

        now = self._now
        need_sync = self._synced_at < now
        tokens = self._heap_token
        anchors = self._anchor
        observer = self.observer
        changed_records: Optional[List[Tuple[int, FlowState, float]]] = (
            [] if observer is not None else None
        )
        new_list = new.tolist()
        entries: List[Tuple[float, int, int]] = []
        for i in np.nonzero(changed_mask)[0].tolist():
            fid = order[i]
            state = states[i]
            if need_sync:
                self._sync_flow(fid, now)
            rate = new_list[i]
            state.rate = rate
            token = tokens.get(fid, 0) + 1
            tokens[fid] = token
            slack = state.remaining - state.flow.finish_epsilon
            if rate > EPS:
                entries.append((anchors[fid] + slack / rate, fid, token))
            elif slack <= 0.0:
                entries.append((anchors[fid], fid, token))
            if changed_records is not None:
                changed_records.append((fid, state, rate))
        heap = self._finish_heap
        heap.extend(entries)
        heapq.heapify(heap)
        if len(heap) > max(
            _HEAP_COMPACT_MIN, _HEAP_COMPACT_FACTOR * len(active)
        ):
            self._compact_heap()

        step = (new > 0.0).astype(np.float64) - (old > 0.0).astype(np.float64)
        nz_delta = np.bincount(
            inc.cols, weights=step[inc.rows], minlength=inc.n_links
        )
        link_delta_list = link_delta.tolist()
        nz_list = nz_delta.tolist()
        link_deltas: Dict[Tuple[str, str], float] = {}
        nz_steps: Dict[Tuple[str, str], int] = {}
        for j, link in enumerate(links):
            moved_load = link_delta_list[j]
            if moved_load != 0.0:
                link_deltas[link.key] = moved_load
            moved_count = nz_list[j]
            if moved_count:
                nz_steps[link.key] = int(moved_count)
        self.accounting.apply_bulk(link_deltas, nz_steps)
        if changed_records:
            observer.on_rates_applied(now, changed_records)
        return True

    def _feasible_changed(
        self, changed: Sequence[Tuple[int, FlowState, float]]
    ) -> bool:
        """Delta feasibility: examine only links whose load would move."""
        if not changed:
            return True
        deltas: Dict[Tuple[str, str], float] = {}
        for flow_id, state, rate in changed:
            delta = rate - state.rate
            for link in self._paths[flow_id]:
                key = link.key
                deltas[key] = deltas.get(key, 0.0) + delta
        return self.accounting.feasible_with_deltas(deltas, tolerance=1e-6)

    def validate_rates(self, rates: Mapping[int, float]) -> bool:
        """Would :meth:`set_rates` accept this allocation? No mutation.

        Used by :class:`repro.faults.ResilientScheduler` to pre-screen an
        inner scheduler's allocation before the engine commits it. Same
        delta-based cost profile as the ``set_rates`` gate.
        """
        changed: List[Tuple[int, FlowState, float]] = []
        for flow_id, state in self._active.items():
            rate = rates.get(flow_id, 0.0)
            if rate < 0:
                return False
            if rate != state.rate:
                changed.append((flow_id, state, rate))
        if self.incremental:
            return self._feasible_changed(changed)
        clean = {fid: rates.get(fid, 0.0) for fid in self._active}
        return feasible(self.demands(), clean, tolerance=1e-6)

    def _scale_to_capacity(self, rates: Dict[int, float]) -> Dict[int, float]:
        """Scale rates down uniformly per saturated link until feasible.

        The usage map is built once and relaxed in place; each pass finds
        the worst link by scanning links (not flows x path) and rescales
        only the flows crossing it, courtesy of the accounting's
        flows-per-link index. Per-pass usage corrections are accumulated
        per link in (flow, path position) order and applied once -- the
        same pinned reduction order as the max-min kernels, so a vector
        replay of the relaxation agrees float for float. The worst-link
        loop itself stays scalar: each pass depends on the previous
        one's rescale, an inherently sequential recurrence.
        """
        scaled = dict(rates)
        capacities = self.accounting.capacities
        flows_on = self.accounting.flows_on
        usage: Dict[Tuple[str, str], float] = {}
        for flow_id, rate in scaled.items():
            for link in self._paths[flow_id]:
                key = link.key
                usage[key] = usage.get(key, 0.0) + rate
        for _ in range(len(self._active) + 1):
            worst_ratio = 1.0
            worst_key: Optional[Tuple[str, str]] = None
            for key in sorted(usage):
                used = usage[key]
                capacity = capacities[key]
                if used > capacity * (1 + 1e-9):
                    ratio = capacity / used
                    if ratio < worst_ratio:
                        worst_ratio, worst_key = ratio, key
            if worst_key is None:
                return scaled
            corrections: Dict[Tuple[str, str], float] = {}
            for flow_id in sorted(flows_on[worst_key]):
                old = scaled[flow_id]
                new = old * worst_ratio
                scaled[flow_id] = new
                for link in self._paths[flow_id]:
                    key = link.key
                    corrections[key] = corrections.get(key, 0.0) + (new - old)
            for key, correction in corrections.items():
                usage[key] += correction
        return scaled

    # ------------------------------------------------------------------
    # runtime faults: capacity mutation and rerouting
    # ------------------------------------------------------------------

    def set_link_capacity(self, key: Tuple[str, str], capacity: float) -> float:
        """Mutate one link's capacity mid-run (fault injection / repair).

        Returns the previous capacity. Cost is O(flows crossing the link):
        the topology link object is mutated in place (every dynamic
        ``link.capacity`` read tracks it), the residual accounting's cached
        capacity is refreshed, and -- on a shrink below the link's current
        load -- the in-flight flows crossing it are scaled down
        proportionally (to zero when the link is downed) so the standing
        allocation stays feasible. That invariant is what lets the
        ``set_rates`` delta-feasibility gate keep trusting untouched links.
        The caller (fault injector / engine) is responsible for triggering
        a reschedule so the scheduler can react.
        """
        src, dst = key
        link = self.topology.link(src, dst)
        previous = link.capacity
        self.topology.set_link_capacity(src, dst, capacity)
        self.capacity_epoch += 1
        self.capacity_lineage = self.capacity_lineage + (
            next(_capacity_token_counter),
        )
        if key in self.accounting.capacities:
            self.accounting.capacities[key] = capacity
        load = self.accounting.loads.get(key, 0.0)
        if load > capacity * (1.0 + 1e-9) + 1e-12:
            ratio = 0.0 if capacity <= 0.0 else capacity / load
            changed: List[Tuple[int, FlowState, float]] = []
            for flow_id in sorted(self.accounting.flows_on.get(key, ())):
                state = self._active[flow_id]
                if state.rate <= 0.0:
                    continue
                self._sync_flow(flow_id, self._now)
                old = state.rate
                new = old * ratio
                state.rate = new
                self.accounting.apply(self._paths[flow_id], old, new)
                self._push_finish(flow_id, state)
                changed.append((flow_id, state, new))
            if self.observer is not None and changed:
                self.observer.on_rates_applied(self._now, changed)
        return previous

    def reroute_flows(self, keys) -> Tuple[List[int], List[int]]:
        """Migrate active flows crossing any link in ``keys`` to new paths.

        The router (whose blocked-link set the fault injector maintains)
        recomputes each affected flow's path; remaining bytes are preserved
        and the flow restarts at rate 0 on the new path, to be re-allocated
        by the fault-caused reschedule. Flows with no alternative route are
        left stranded on their old path (stalled until a restore). Returns
        ``(migrated, stranded)`` flow-id lists.
        """
        keyset = {tuple(k) for k in keys}
        affected = sorted(
            {
                fid
                for key in keyset
                for fid in self.accounting.flows_on.get(key, ())
            }
        )
        migrated: List[int] = []
        stranded: List[int] = []
        from ..topology.routing import RoutingError

        for flow_id in affected:
            state = self._active[flow_id]
            flow = state.flow
            old_path = self._paths[flow_id]
            try:
                new_path = self.router.path(flow.src, flow.dst, flow_id)
            except RoutingError:
                stranded.append(flow_id)
                continue
            if new_path == old_path:
                stranded.append(flow_id)
                continue
            self._sync_flow(flow_id, self._now)
            old_rate = state.rate
            self.accounting.unwatch(flow_id, old_path, old_rate)
            state.rate = 0.0
            self._paths[flow_id] = new_path
            self._demands[flow_id] = FlowDemand(flow_id=flow_id, path=new_path)
            self._demands_rev += 1
            self.accounting.watch(flow_id, new_path)
            self._push_finish(flow_id, state)
            migrated.append(flow_id)
            if self.observer is not None:
                notify = getattr(self.observer, "on_flow_rerouted", None)
                if notify is not None:
                    notify(flow_id, old_path, new_path, self._now)
        return migrated, stranded

    def verify_accounting(self, tolerance: float = 1e-6) -> List[Dict]:
        """Audit the residual accounting against a from-scratch recompute.

        Rebuilds per-link loads, nonzero-rate counts, and membership sets
        by walking every active flow's path, then diffs them against the
        incrementally-maintained :class:`LinkAccounting`. Loads are float
        accumulators, so they are compared with ``tolerance`` scaled by
        capacity; memberships and counts are exact. Returns one problem
        record per drifted link (empty = clean); the ``repro.check``
        sanitizer turns these into violations.
        """
        expected_loads: Dict[Tuple[str, str], float] = {}
        expected_nonzero: Dict[Tuple[str, str], int] = {}
        expected_flows: Dict[Tuple[str, str], set] = {}
        for flow_id in self._order:
            rate = self._active[flow_id].rate
            for link in self._paths[flow_id]:
                key = link.key
                expected_loads[key] = expected_loads.get(key, 0.0) + rate
                expected_flows.setdefault(key, set()).add(flow_id)
                if rate > 0.0:
                    expected_nonzero[key] = expected_nonzero.get(key, 0) + 1
        problems: List[Dict] = []
        for key in sorted(self.accounting.loads):
            capacity = self.accounting.capacities[key]
            allowance = tolerance * max(1.0, capacity)
            have_load = self.accounting.loads[key]
            want_load = expected_loads.get(key, 0.0)
            if abs(have_load - want_load) > allowance:
                problems.append(
                    {
                        "link": key,
                        "kind": "load",
                        "accounted": have_load,
                        "recomputed": want_load,
                    }
                )
            have_members = self.accounting.flows_on[key]
            want_members = expected_flows.get(key, set())
            if have_members != want_members:
                problems.append(
                    {
                        "link": key,
                        "kind": "membership",
                        "accounted": sorted(have_members),
                        "recomputed": sorted(want_members),
                    }
                )
            have_count = self.accounting.nonzero[key]
            want_count = expected_nonzero.get(key, 0)
            if have_count != want_count:
                problems.append(
                    {
                        "link": key,
                        "kind": "nonzero_count",
                        "accounted": have_count,
                        "recomputed": want_count,
                    }
                )
        return problems

    def link_capacities(self) -> Dict[Tuple[str, str], float]:
        """Capacity per link key, for every link any flow has crossed.

        Maintained by the residual accounting (a superset of the links
        under the currently-active flows), so schedulers seeding their
        capacity maps no longer walk every active path. Treat as
        read-only: copy before mutating into a residual map.
        """
        return self.accounting.capacities

    def link_usage(self) -> Dict[Link, float]:
        """Aggregate allocated rate per link across the active flows.

        Only links carrying at least one nonzero-rate flow appear; the
        engine's observer turns this into the utilization timeline. Reads
        the maintained residual accounting -- O(links), not O(flows).
        """
        return self.accounting.usage()

    def earliest_finish_interval(self) -> float:
        """Time until the first active flow completes at current rates."""
        active = self._active
        anchors = self._anchor
        if not self.incremental:
            horizon = float("inf")
            for flow_id in self._order:
                interval = self._time_to_finish(active[flow_id], anchors[flow_id])
                if interval < horizon:
                    horizon = interval
            return horizon

        heap = self._finish_heap
        tokens = self._heap_token
        best = float("inf")
        popped: List[Tuple[float, int, int]] = []
        while heap:
            key, flow_id, token = heap[0]
            if flow_id not in active or tokens.get(flow_id) != token:
                heapq.heappop(heap)
                continue
            if key > self._now + best + _HEAP_SLACK * max(
                1.0, abs(self._now) + (best if best != float("inf") else 0.0)
            ):
                break
            popped.append(heapq.heappop(heap))
            interval = self._time_to_finish(active[flow_id], anchors[flow_id])
            if interval < best:
                best = interval
        for entry in popped:
            heapq.heappush(heap, entry)
        return best

    def advance(self, dt: float, now: float) -> List[FlowState]:
        """Advance time by ``dt`` and retire flows that finish by then.

        Returns the newly-finished flow states (sorted by flow id); their
        ``finish_time`` is stamped ``now + dt``. Unfinished flows are not
        touched -- they drain lazily and materialize on the next read.
        """
        if dt < -EPS:
            raise ValueError(f"cannot advance time by {dt}")
        dt = max(0.0, dt)
        if self.observer is not None and dt > 0.0 and self._active:
            self.observer.on_network_advance(now, dt, self.link_usage())
        finish_time = now + dt
        if finish_time < self._now:
            finish_time = self._now
        finished: List[FlowState] = []
        active = self._active
        anchors = self._anchor

        if self.incremental:
            repush: List[Tuple[float, int, int]] = []
            for entry in self._pop_candidates(finish_time):
                flow_id = entry[1]
                state = active[flow_id]
                remaining = self._projected_remaining(
                    state, anchors[flow_id], finish_time
                )
                if remaining <= self._finish_threshold(state.flow):
                    finished.append(state)
                else:
                    repush.append(entry)
            for entry in repush:
                heapq.heappush(self._finish_heap, entry)
        else:
            for flow_id in self._order:
                state = active[flow_id]
                remaining = self._projected_remaining(
                    state, anchors[flow_id], finish_time
                )
                if remaining <= self._finish_threshold(state.flow):
                    finished.append(state)

        self._now = finish_time
        finished.sort(key=lambda s: s.flow.flow_id)
        for state in finished:
            self._sync_flow(state.flow.flow_id, finish_time)
            self._retire(state, finish_time)
        return finished

    # ------------------------------------------------------------------
    # port capacities (big-switch view for Varys/MADD)
    # ------------------------------------------------------------------

    def egress_capacities(self) -> Dict[str, float]:
        return {h: self.topology.host_egress_capacity(h) for h in self.topology.hosts}

    def ingress_capacities(self) -> Dict[str, float]:
        return {h: self.topology.host_ingress_capacity(h) for h in self.topology.hosts}
