"""The fluid-flow network model.

Active flows drain at scheduler-chosen rates between events. The model owns
per-flow :class:`~repro.core.flow.FlowState`, the pinned path of each flow,
and byte accounting; it validates that the scheduler's allocation respects
link capacities before accepting it.

The model is deliberately ignorant of *why* flows exist (jobs, EchelonFlows,
collectives) -- it exposes exactly what the paper's coordinator would see:
flow sizes, endpoints, paths, remaining bytes, and ideal finish times.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.flow import Flow, FlowState
from ..core.units import EPS
from ..topology.graph import Link, Topology
from .allocation import FlowDemand, feasible


class CapacityViolation(Exception):
    """The scheduler proposed rates exceeding a link capacity."""


class NetworkModel:
    """Tracks active flows and enforces link-capacity-respecting rates."""

    def __init__(
        self,
        topology: Topology,
        router,
        strict: bool = True,
    ) -> None:
        self.topology = topology
        self.router = router
        self.strict = strict
        self._active: Dict[int, FlowState] = {}
        self._paths: Dict[int, Tuple[Link, ...]] = {}
        self._completed: Dict[int, FlowState] = {}
        #: Total bytes delivered, for conservation checks.
        self.bytes_delivered = 0.0
        #: Optional observer (repro.obs Instrumentation): notified with
        #: (now, dt, {Link: aggregate rate}) on every nonzero advance.
        #: ``None`` keeps the fluid loop free of accounting overhead.
        self.observer = None

    # ------------------------------------------------------------------
    # flow lifecycle
    # ------------------------------------------------------------------

    def inject(self, flow: Flow, now: float) -> FlowState:
        """Admit a flow at time ``now``; its path is pinned immediately."""
        if flow.flow_id in self._active or flow.flow_id in self._completed:
            raise ValueError(f"flow {flow.flow_id} already injected")
        path = self.router.path(flow.src, flow.dst, flow.flow_id)
        state = FlowState(flow=flow, start_time=now, remaining=flow.size)
        self._active[flow.flow_id] = state
        self._paths[flow.flow_id] = path
        return state

    def active_states(self) -> List[FlowState]:
        """Unfinished flows, sorted by flow id for determinism."""
        return [self._active[fid] for fid in sorted(self._active)]

    def state(self, flow_id: int) -> FlowState:
        if flow_id in self._active:
            return self._active[flow_id]
        return self._completed[flow_id]

    def path(self, flow_id: int) -> Tuple[Link, ...]:
        return self._paths[flow_id]

    def demand(self, flow_id: int, weight: float = 1.0) -> FlowDemand:
        return FlowDemand(flow_id=flow_id, path=self._paths[flow_id], weight=weight)

    def demands(self) -> List[FlowDemand]:
        return [self.demand(fid) for fid in sorted(self._active)]

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def completed_states(self) -> List[FlowState]:
        return [self._completed[fid] for fid in sorted(self._completed)]

    # ------------------------------------------------------------------
    # rates and time
    # ------------------------------------------------------------------

    def set_rates(self, rates: Mapping[int, float]) -> None:
        """Apply a rate allocation; unlisted active flows idle at rate 0.

        In ``strict`` mode an infeasible allocation raises
        :class:`CapacityViolation`; otherwise rates are scaled down on each
        oversubscribed link (modelling switch fair-queueing backpressure).
        """
        demands = self.demands()
        clean: Dict[int, float] = {}
        for flow_id in self._active:
            rate = rates.get(flow_id, 0.0)
            if rate < 0:
                raise ValueError(f"negative rate for flow {flow_id}: {rate}")
            clean[flow_id] = rate
        if not feasible(demands, clean, tolerance=1e-6):
            if self.strict:
                raise CapacityViolation(
                    "scheduler allocation violates link capacities"
                )
            clean = self._scale_to_capacity(clean)
        for flow_id, rate in clean.items():
            self._active[flow_id].rate = rate

    def _scale_to_capacity(self, rates: Dict[int, float]) -> Dict[int, float]:
        """Scale rates down uniformly per saturated link until feasible."""
        scaled = dict(rates)
        for _ in range(len(self._active) + 1):
            usage: Dict[Tuple[str, str], float] = {}
            for flow_id, rate in scaled.items():
                for link in self._paths[flow_id]:
                    usage[link.key] = usage.get(link.key, 0.0) + rate
            worst_ratio = 1.0
            worst_key: Optional[Tuple[str, str]] = None
            for flow_id in scaled:
                for link in self._paths[flow_id]:
                    used = usage[link.key]
                    if used > link.capacity * (1 + 1e-9):
                        ratio = link.capacity / used
                        if ratio < worst_ratio:
                            worst_ratio, worst_key = ratio, link.key
            if worst_key is None:
                return scaled
            for flow_id in scaled:
                if any(link.key == worst_key for link in self._paths[flow_id]):
                    scaled[flow_id] *= worst_ratio
        return scaled

    def link_usage(self) -> Dict[Link, float]:
        """Aggregate allocated rate per link across the active flows.

        Only links carrying at least one nonzero-rate flow appear; the
        engine's observer turns this into the utilization timeline.
        """
        usage: Dict[Link, float] = {}
        for flow_id, state in self._active.items():
            rate = state.rate
            if rate <= 0.0:
                continue
            for link in self._paths[flow_id]:
                usage[link] = usage.get(link, 0.0) + rate
        return usage

    def earliest_finish_interval(self) -> float:
        """Time until the first active flow completes at current rates."""
        horizon = float("inf")
        for state in self._active.values():
            horizon = min(horizon, state.time_to_finish())
        return horizon

    def advance(self, dt: float, now: float) -> List[FlowState]:
        """Drain all flows for ``dt`` and retire finished ones.

        Returns the newly-finished flow states (sorted by flow id); their
        ``finish_time`` is stamped ``now + dt``.
        """
        if dt < -EPS:
            raise ValueError(f"cannot advance time by {dt}")
        dt = max(0.0, dt)
        if self.observer is not None and dt > 0.0 and self._active:
            self.observer.on_network_advance(now, dt, self.link_usage())
        finish_time = now + dt
        finished: List[FlowState] = []
        for flow_id in sorted(self._active):
            state = self._active[flow_id]
            before = state.remaining
            state.advance(dt)
            self.bytes_delivered += before - state.remaining
            if state.finished:
                state.finish_time = finish_time
                state.rate = 0.0
                finished.append(state)
        for state in finished:
            del self._active[state.flow.flow_id]
            self._completed[state.flow.flow_id] = state
        return finished

    # ------------------------------------------------------------------
    # port capacities (big-switch view for Varys/MADD)
    # ------------------------------------------------------------------

    def egress_capacities(self) -> Dict[str, float]:
        return {h: self.topology.host_egress_capacity(h) for h in self.topology.hosts}

    def ingress_capacities(self) -> Dict[str, float]:
        return {h: self.topology.host_ingress_capacity(h) for h in self.topology.hosts}
