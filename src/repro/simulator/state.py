"""Snapshot/fork/restore across the engine spine.

Every piece of mutable run state an :class:`~repro.simulator.engine.Engine`
owns is captured here into an explicit, versioned :class:`EngineState`:
the fluid network (via :meth:`NetworkModel.fork`), the scheduler stack
(via the ``Scheduler.fork`` protocol), devices, EchelonFlow observation
state, the event queue, trace prefixes, per-task bookkeeping, the
sanitizer, pending fault events, and the engine-scoped flow-id allocator.

The contract, proven by ``tests/test_whatif.py``:

* **Pristine handles.** ``snapshot`` copies live state *into* the handle;
  ``fork``/``restore`` copy *out of* it. A handle is never aliased by a
  running engine, so one handle can seed any number of forks.
* **Bit-identical resumption.** A forked (or restored) engine resumed to
  completion produces the exact same trace -- float for float, tie-break
  for tie-break -- as the uninterrupted parent. The copy rules that make
  this hold: lazily-drained flows are never materialized at capture
  (raw ``remaining`` + drain anchors travel as-is), heap keys and
  residual accounting floats are copied verbatim, and the queue- and
  device-scoped tie-break counters resume from their captured values so
  copied entries keep their sequence numbers while new entries always
  draw larger ones.
* **Copy-on-write for heavy state.** Immutable objects -- ``Flow`` and
  ``Task`` descriptions, frozen trace records, retired flow states,
  ``TaskDag`` structures -- are shared by reference across parent, handle,
  and every fork; only the mutable containers and live ``FlowState``
  objects are duplicated.

What does *not* travel (documented detachment):

* ``obs`` instrumentation and ``job_completion_callbacks`` are dropped --
  their closures observe the parent run; forks re-attach their own.
* Pending ``TIMER``/``FAULT`` events with arbitrary callbacks raise
  :class:`SnapshotError`: a closure captured against the parent engine
  cannot be replayed against a fork. Two kinds of callback events *are*
  understood and re-armed cleanly: the engine's own scheduling-interval
  tick (recognized by identity, re-armed at its absolute time with its
  original sequence number) and a :class:`~repro.faults.FaultInjector`'s
  armed fault events (re-bound to a forked injector entry-for-entry).

Snapshots may only be taken between ``run()`` calls (pause a run with
``engine.run(until=t)`` first); capturing mid-run raises
:class:`SnapshotError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.flow import FlowIdAllocator
from .engine import Engine
from .events import _KIND_PRIORITY, Event, EventKind, EventQueue
from .trace import SimulationTrace


class SnapshotError(Exception):
    """The engine's state cannot be captured (or re-materialized)."""


@dataclass
class EngineState:
    """The full captured run state of one engine, at one instant.

    Built by :func:`capture`; turned back into a runnable engine by
    :func:`materialize`. Fields hold *pristine copies* (forked network,
    forked scheduler stack, list copies) that no live engine aliases.
    """

    now: float
    network: Any  # pristine NetworkModel fork
    scheduler: Any  # pristine Scheduler fork
    devices: Dict[str, Any]
    echelonflows: Dict[str, Any]
    #: (time, priority, sequence, kind, payload) per pending payload event.
    pending_events: List[Tuple[float, int, int, EventKind, Any]]
    #: The queue's tie-break counter at capture time.
    next_sequence: int
    #: (absolute time, sequence) of the armed scheduling-interval tick.
    tick: Optional[Tuple[float, int]]
    # Trace prefix (records shared; lists copied).
    compute_spans: List[Any]
    flow_records: List[Any]
    task_events: List[Any]
    trace_end_time: float
    # Per-task runtime bookkeeping.
    dags: Dict[str, Any]
    pending_deps: Dict[Tuple[str, str], int]
    comm_outstanding: Dict[Tuple[str, str], int]
    flow_owner: Dict[int, Tuple[str, str]]
    tasks_left: Dict[str, int]
    completed_jobs: List[str]
    # Scheduling-loop state.
    needs_reschedule: bool
    pending_causes: frozenset
    delta_injected: Tuple[int, ...]
    delta_departed: Tuple[int, ...]
    #: group id -> flow ids still awaiting an ideal finish time.
    undated: Dict[str, Tuple[int, ...]]
    scheduler_invocations: int
    scheduling_interval: Optional[float]
    incremental: bool
    device_slots: Any
    #: Engine-scoped flow-id allocator position at capture.
    flow_ids: FlowIdAllocator
    #: Pristine Sanitizer fork (unattached), or None.
    check: Any
    # Fault-injector state: the (immutable, shared) schedule, records of
    # already-applied events, and the not-yet-fired armed events as
    # (absolute time, sequence, FaultEvent).
    faults_schedule: Any = None
    faults_fired: List[Dict] = field(default_factory=list)
    faults_pending: List[Tuple[float, int, Any]] = field(default_factory=list)
    #: Resolved allocation mode ("auto"/"reference"/"incremental"/
    #: "vector"); the network fork carries the matching kernel mode.
    allocation: str = "auto"
    #: Event-dispatch mode: batched (default) or legacy per-event.
    batch_dispatch: bool = True


@dataclass(frozen=True)
class StateHandle:
    """A versioned, immutable reference to one captured :class:`EngineState`.

    ``version`` is the source engine's snapshot counter at capture;
    ``time`` the simulation instant the state represents. Handles are
    reusable: every :meth:`Engine.fork`/:meth:`Engine.restore` against
    the same handle yields the same state.
    """

    version: int
    time: float
    state: EngineState

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StateHandle(version={self.version}, time={self.time:g})"


# ----------------------------------------------------------------------
# capture: live engine -> pristine EngineState
# ----------------------------------------------------------------------


def _fork_scheduler(scheduler) -> Any:
    if hasattr(scheduler, "fork"):
        return scheduler.fork()
    import copy

    return copy.deepcopy(scheduler)


def _capture_events(engine) -> Tuple[
    List[Tuple[float, int, int, EventKind, Any]],
    Optional[Tuple[float, int]],
    List[Tuple[float, int, Any]],
]:
    """Classify the queue's live events into capturable categories."""
    payload_events: List[Tuple[float, int, int, EventKind, Any]] = []
    tick: Optional[Tuple[float, int]] = None
    fault_entries: List[Tuple[float, int, Any]] = []
    tick_event = getattr(engine, "_tick_event", None)
    injector = engine.faults
    armed = getattr(injector, "_armed", None) if injector is not None else None
    for event in engine.events.live_events():
        if tick_event is not None and event is tick_event:
            tick = (event.time, event.sequence)
            continue
        if event.callback is None:
            payload_events.append(
                (event.time, event.priority, event.sequence, event.kind, event.payload)
            )
            continue
        if armed:
            entry = armed.get(id(event))
            if entry is not None and entry[0] is event:
                fault_entries.append((event.time, event.sequence, entry[1]))
                continue
        raise SnapshotError(
            f"pending {event.kind.value} event at t={event.time:g} carries an "
            f"arbitrary callback closed over the parent engine; only the "
            f"scheduling tick and FaultInjector events can cross a snapshot "
            f"(background-flow and watch-loop timers cannot)"
        )
    payload_events.sort(key=lambda entry: entry[2])
    fault_entries.sort(key=lambda entry: entry[1])
    return payload_events, tick, fault_entries


def capture(engine, version: int) -> StateHandle:
    """Snapshot a live engine into a pristine, reusable handle."""
    if getattr(engine, "_in_run", False):
        raise SnapshotError(
            "snapshot() must be called between run() calls; pause the run "
            "with engine.run(until=t) first"
        )
    payload_events, tick, fault_entries = _capture_events(engine)
    injector = engine.faults
    trace = engine.trace
    state = EngineState(
        now=engine.now,
        network=engine.network.fork(),
        scheduler=_fork_scheduler(engine.scheduler),
        devices={name: dev.fork() for name, dev in engine.devices.items()},
        echelonflows={gid: ef.fork() for gid, ef in engine.echelonflows.items()},
        pending_events=payload_events,
        next_sequence=engine.events.next_sequence,
        tick=tick,
        compute_spans=list(trace.compute_spans),
        flow_records=list(trace.flow_records),
        task_events=list(trace.task_events),
        trace_end_time=trace.end_time,
        dags=dict(engine._dags),
        pending_deps=dict(engine._pending_deps),
        comm_outstanding=dict(engine._comm_outstanding),
        flow_owner=dict(engine._flow_owner),
        tasks_left=dict(engine._tasks_left),
        completed_jobs=list(engine._completed_jobs),
        needs_reschedule=engine._needs_reschedule,
        pending_causes=frozenset(engine._pending_causes),
        delta_injected=tuple(engine._delta_injected),
        delta_departed=tuple(engine._delta_departed),
        undated={
            gid: tuple(s.flow.flow_id for s in states)
            for gid, states in engine._undated.items()
        },
        scheduler_invocations=engine.scheduler_invocations,
        scheduling_interval=engine.scheduling_interval,
        incremental=engine.incremental,
        device_slots=(
            dict(engine._device_slots)
            if isinstance(engine._device_slots, dict)
            else engine._device_slots
        ),
        flow_ids=engine.flow_ids.clone(),
        check=engine.check.fork() if engine.check is not None else None,
        faults_schedule=injector.schedule if injector is not None else None,
        faults_fired=(
            [dict(record) for record in injector.fired]
            if injector is not None
            else []
        ),
        faults_pending=fault_entries,
        allocation=engine.allocation,
        batch_dispatch=engine.batch_dispatch,
    )
    return StateHandle(version=version, time=engine.now, state=state)


# ----------------------------------------------------------------------
# materialize: pristine EngineState -> runnable engine
# ----------------------------------------------------------------------


def _arm_restored_tick(engine, time: float, sequence: int) -> None:
    """Re-arm the scheduling-interval tick at its captured absolute time,
    preserving its original tie-break sequence number."""

    def _tick(_event) -> None:
        engine._tick_armed = False
        engine._request_reschedule("tick")

    event = Event(
        time=time,
        priority=_KIND_PRIORITY[EventKind.TIMER],
        sequence=sequence,
        kind=EventKind.TIMER,
        callback=_tick,
    )
    engine.events.push_restored(event)
    engine._tick_event = event
    engine._tick_armed = True


def _materialize_faults(state: EngineState, engine):
    """Rebuild a fault injector bound to ``engine``, with the already-fired
    history and the not-yet-fired events re-armed entry for entry."""
    if state.faults_schedule is None:
        return None
    # Deferred import: repro.faults sits on top of the simulator.
    from ..faults.injector import FaultInjector

    injector = FaultInjector.__new__(FaultInjector)
    injector.schedule = state.faults_schedule
    injector.engine = engine
    injector.fired = [dict(record) for record in state.faults_fired]
    injector._armed = {}
    for time, sequence, fault_event in state.faults_pending:
        event = Event(
            time=time,
            priority=_KIND_PRIORITY[EventKind.FAULT],
            sequence=sequence,
            kind=EventKind.FAULT,
            callback=lambda _ev, f=fault_event: injector._fire(f),
        )
        engine.events.push_restored(event)
        injector._armed[id(event)] = (event, fault_event)
    return injector


def materialize(handle: StateHandle, target: Optional[Engine] = None) -> Engine:
    """Build a runnable engine from a handle (``fork``), or rewind an
    existing one onto it in place (``restore`` passes ``target``).

    Instrumentation and job-completion callbacks do not survive: the
    materialized engine starts with ``obs=None`` and an empty callback
    list (see the module docstring).
    """
    state = handle.state
    if target is not None and getattr(target, "_in_run", False):
        raise SnapshotError("cannot restore() an engine while it is running")
    engine = target if target is not None else Engine.__new__(Engine)

    network = state.network.fork()
    engine.network = network
    engine.topology = network.topology
    engine.incremental = state.incremental
    engine.allocation = state.allocation
    engine.batch_dispatch = state.batch_dispatch
    engine.scheduler = _fork_scheduler(state.scheduler)
    engine.now = state.now

    engine.events = EventQueue(next_sequence=state.next_sequence)
    for time, priority, sequence, kind, payload in state.pending_events:
        engine.events.push_restored(
            Event(
                time=time,
                priority=priority,
                sequence=sequence,
                kind=kind,
                payload=payload,
            )
        )

    engine.devices = {name: dev.fork() for name, dev in state.devices.items()}
    engine._device_slots = (
        dict(state.device_slots)
        if isinstance(state.device_slots, dict)
        else state.device_slots
    )
    engine.echelonflows = {
        gid: ef.fork() for gid, ef in state.echelonflows.items()
    }

    trace = SimulationTrace(
        compute_spans=list(state.compute_spans),
        flow_records=list(state.flow_records),
        task_events=list(state.task_events),
    )
    trace.end_time = state.trace_end_time
    engine.trace = trace

    engine._dags = dict(state.dags)
    engine._pending_deps = dict(state.pending_deps)
    engine._comm_outstanding = dict(state.comm_outstanding)
    engine._flow_owner = dict(state.flow_owner)
    engine._tasks_left = dict(state.tasks_left)
    engine._completed_jobs = list(state.completed_jobs)
    engine._needs_reschedule = state.needs_reschedule
    engine._pending_causes = set(state.pending_causes)
    engine._view = None
    engine._delta_injected = list(state.delta_injected)
    engine._delta_departed = list(state.delta_departed)
    # The undated index must point at *this* engine's state objects.
    engine._undated = {
        gid: [network._active[fid] for fid in fids if fid in network._active]
        for gid, fids in state.undated.items()
    }

    engine.obs = None
    engine.check = state.check.fork() if state.check is not None else None
    if engine.check is not None:
        engine.check.attach(engine)
    layer = engine.scheduler
    seen = set()
    while layer is not None and id(layer) not in seen:
        seen.add(id(layer))
        hook = getattr(layer, "on_attached", None)
        if hook is not None:
            hook(engine)
        layer = getattr(layer, "inner", None)
    engine.faults = _materialize_faults(state, engine)

    engine.scheduling_interval = state.scheduling_interval
    engine._tick_armed = False
    engine._tick_event = None
    if state.tick is not None:
        _arm_restored_tick(engine, *state.tick)
    engine.scheduler_invocations = state.scheduler_invocations
    engine.job_completion_callbacks = []
    engine.flow_ids = state.flow_ids.clone()
    engine._in_run = False
    if target is None:
        engine.state_version = 0
    return engine
