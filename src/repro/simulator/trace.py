"""Trace records emitted by the engine for analysis and rendering."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.flow import Flow


@dataclass(frozen=True)
class ComputeSpan:
    """One compute task execution on a device."""

    task_id: str
    device: str
    start: float
    end: float
    job_id: Optional[str]
    tag: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FlowRecord:
    """One delivered flow, with its scheduling outcome."""

    flow: Flow
    start: float
    finish: float
    ideal_finish: Optional[float]

    @property
    def completion_time(self) -> float:
        return self.finish - self.start

    @property
    def tardiness(self) -> Optional[float]:
        if self.ideal_finish is None:
            return None
        return self.finish - self.ideal_finish


@dataclass(frozen=True)
class TaskEvent:
    """Completion of any task (compute, comm, or barrier)."""

    task_id: str
    kind: str
    time: float
    job_id: Optional[str]


@dataclass
class SimulationTrace:
    """Everything a run produced, in arrival order.

    The accessor methods are backed by lazily-built indexes: each index
    remembers how many records it has absorbed and folds in only the
    suffix appended since its last use, so repeated lookups in analysis
    and benchmark loops are O(1) amortized instead of re-scanning the
    full record lists. Appending through the public lists (as the engine
    does) needs no invalidation hook; replacing a list wholesale resets
    the affected index.
    """

    compute_spans: List[ComputeSpan] = field(default_factory=list)
    flow_records: List[FlowRecord] = field(default_factory=list)
    task_events: List[TaskEvent] = field(default_factory=list)
    end_time: float = 0.0
    # Lazy indexes: {key: records} plus a high-water mark of absorbed
    # entries. Excluded from init/repr/compare -- pure caches.
    _task_index: Dict[str, float] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _tasks_by_job: Dict[Optional[str], List[TaskEvent]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _task_indexed: int = field(default=0, init=False, repr=False, compare=False)
    _task_tail: Optional[TaskEvent] = field(
        default=None, init=False, repr=False, compare=False
    )
    _flows_by_group: Dict[Optional[str], List[FlowRecord]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _flows_by_job: Dict[Optional[str], List[FlowRecord]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _flows_indexed: int = field(default=0, init=False, repr=False, compare=False)
    _flow_tail: Optional[FlowRecord] = field(
        default=None, init=False, repr=False, compare=False
    )
    _spans_by_device: Dict[str, List[ComputeSpan]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _spans_by_job: Dict[Optional[str], List[ComputeSpan]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _spans_indexed: int = field(default=0, init=False, repr=False, compare=False)
    _span_tail: Optional[ComputeSpan] = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- index maintenance ---------------------------------------------

    def _index_stale(self, records: List, indexed: int, tail) -> bool:
        """True when ``records`` is not an append-extension of the indexed
        prefix: shorter than the high-water mark, or its element at the
        mark's tail position is no longer the object we last absorbed."""
        if indexed > len(records):
            return True
        return indexed > 0 and records[indexed - 1] is not tail

    def _sync_flow_index(self) -> None:
        records = self.flow_records
        if self._index_stale(records, self._flows_indexed, self._flow_tail):
            self._flows_by_group.clear()
            self._flows_by_job.clear()
            self._flows_indexed = 0
        for record in records[self._flows_indexed :]:
            self._flows_by_group.setdefault(record.flow.group_id, []).append(record)
            self._flows_by_job.setdefault(record.flow.job_id, []).append(record)
        self._flows_indexed = len(records)
        self._flow_tail = records[-1] if records else None

    def _sync_span_index(self) -> None:
        spans = self.compute_spans
        if self._index_stale(spans, self._spans_indexed, self._span_tail):
            self._spans_by_device.clear()
            self._spans_by_job.clear()
            self._spans_indexed = 0
        for span in spans[self._spans_indexed :]:
            self._spans_by_device.setdefault(span.device, []).append(span)
            self._spans_by_job.setdefault(span.job_id, []).append(span)
        self._spans_indexed = len(spans)
        self._span_tail = spans[-1] if spans else None

    def _sync_task_index(self) -> None:
        events = self.task_events
        if self._index_stale(events, self._task_indexed, self._task_tail):
            self._task_index.clear()
            self._tasks_by_job.clear()
            self._task_indexed = 0
        for event in events[self._task_indexed :]:
            # First completion wins, matching the original linear scan.
            self._task_index.setdefault(event.task_id, event.time)
            self._tasks_by_job.setdefault(event.job_id, []).append(event)
        self._task_indexed = len(events)
        self._task_tail = events[-1] if events else None

    # -- accessors ------------------------------------------------------

    def flows_of_group(self, group_id: str) -> List[FlowRecord]:
        self._sync_flow_index()
        return list(self._flows_by_group.get(group_id, ()))

    def flows_of_job(self, job_id: str) -> List[FlowRecord]:
        self._sync_flow_index()
        return list(self._flows_by_job.get(job_id, ()))

    def spans_of_device(self, device: str) -> List[ComputeSpan]:
        self._sync_span_index()
        return list(self._spans_by_device.get(device, ()))

    def spans_of_job(self, job_id: str) -> List[ComputeSpan]:
        self._sync_span_index()
        return list(self._spans_by_job.get(job_id, ()))

    def task_events_of_job(self, job_id: Optional[str]) -> List[TaskEvent]:
        """Task completions belonging to one job, in completion order."""
        self._sync_task_index()
        return list(self._tasks_by_job.get(job_id, ()))

    def task_completion(self, task_id: str) -> float:
        self._sync_task_index()
        try:
            return self._task_index[task_id]
        except KeyError:
            raise KeyError(f"task {task_id!r} never completed in this trace")

    def last_compute_end(self, job_id: Optional[str] = None) -> float:
        spans = self.compute_spans
        if job_id is not None:
            spans = [s for s in spans if s.job_id == job_id]
        return max((s.end for s in spans), default=0.0)

    def actual_finish_times(self) -> Dict[int, float]:
        """flow_id -> finish time, the input to tardiness evaluation."""
        return {r.flow.flow_id: r.finish for r in self.flow_records}


def trace_digest(trace: SimulationTrace) -> str:
    """SHA-256 over every record of a trace, in emission order.

    Two runs that produced the same spans, flow records, task events,
    and end time -- byte for byte on their ``repr``-stable fields --
    hash identically, which is the bit-identity check the control-plane
    chaos suite (and any future differential harness) asserts. Floats
    are hashed via ``repr`` (shortest round-trip form), so identical
    IEEE values digest identically across processes.
    """
    hasher = hashlib.sha256()

    def feed(*parts: object) -> None:
        hasher.update("|".join(repr(p) for p in parts).encode())
        hasher.update(b"\n")

    for span in trace.compute_spans:
        feed("span", span.task_id, span.device, span.start, span.end,
             span.job_id, span.tag)
    for record in trace.flow_records:
        flow = record.flow
        feed("flow", flow.flow_id, flow.src, flow.dst, flow.size,
             flow.group_id, flow.job_id, record.start, record.finish,
             record.ideal_finish)
    for event in trace.task_events:
        feed("task", event.task_id, event.kind, event.time, event.job_id)
    feed("end", trace.end_time)
    return hasher.hexdigest()
