"""Trace records emitted by the engine for analysis and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.flow import Flow


@dataclass(frozen=True)
class ComputeSpan:
    """One compute task execution on a device."""

    task_id: str
    device: str
    start: float
    end: float
    job_id: Optional[str]
    tag: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FlowRecord:
    """One delivered flow, with its scheduling outcome."""

    flow: Flow
    start: float
    finish: float
    ideal_finish: Optional[float]

    @property
    def completion_time(self) -> float:
        return self.finish - self.start

    @property
    def tardiness(self) -> Optional[float]:
        if self.ideal_finish is None:
            return None
        return self.finish - self.ideal_finish


@dataclass(frozen=True)
class TaskEvent:
    """Completion of any task (compute, comm, or barrier)."""

    task_id: str
    kind: str
    time: float
    job_id: Optional[str]


@dataclass
class SimulationTrace:
    """Everything a run produced, in arrival order."""

    compute_spans: List[ComputeSpan] = field(default_factory=list)
    flow_records: List[FlowRecord] = field(default_factory=list)
    task_events: List[TaskEvent] = field(default_factory=list)
    end_time: float = 0.0

    def flows_of_group(self, group_id: str) -> List[FlowRecord]:
        return [r for r in self.flow_records if r.flow.group_id == group_id]

    def flows_of_job(self, job_id: str) -> List[FlowRecord]:
        return [r for r in self.flow_records if r.flow.job_id == job_id]

    def spans_of_device(self, device: str) -> List[ComputeSpan]:
        return [s for s in self.compute_spans if s.device == device]

    def spans_of_job(self, job_id: str) -> List[ComputeSpan]:
        return [s for s in self.compute_spans if s.job_id == job_id]

    def task_completion(self, task_id: str) -> float:
        for event in self.task_events:
            if event.task_id == task_id:
                return event.time
        raise KeyError(f"task {task_id!r} never completed in this trace")

    def last_compute_end(self, job_id: Optional[str] = None) -> float:
        spans = self.compute_spans
        if job_id is not None:
            spans = [s for s in spans if s.job_id == job_id]
        return max((s.end for s in spans), default=0.0)

    def actual_finish_times(self) -> Dict[int, float]:
        """flow_id -> finish time, the input to tardiness evaluation."""
        return {r.flow.flow_id: r.finish for r in self.flow_records}
