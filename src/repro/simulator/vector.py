"""Dense-array (numpy) kernels for the allocation hot path.

The scalar progressive-filling kernel in :mod:`repro.simulator.allocation`
costs O(flows x path length) python bytecode per water-filling round. At
100k+ concurrent flows that loop *is* the simulation. This module interns
flow ids and links into dense index arrays -- flow -> row, link -> column,
with the (flow, link) incidence stored as parallel ``rows``/``cols``
arrays in CSR-entry order -- and re-expresses every round as a handful of
numpy array operations with a saturation loop over links.

Bit-identity contract
---------------------

The vector kernel is *proven bit-identical* to the scalar one (see
``tests/test_check_allocation_properties.py``), not merely close. The
scalar and vector paths are written against one shared reduction order:

* Per-link weight sums and per-link consumption are accumulated in
  **incidence-entry order** -- demands in first-occurrence order, path
  positions within a demand in path order. ``np.bincount`` accumulates
  its weights sequentially in exactly that entry order (a plain C loop,
  no pairwise splitting), and the scalar kernel accumulates its dicts in
  the same (flow, path position) order, so the partial sums agree float
  for float.
* Frozen flows participate in the vector sums with weight exactly
  ``0.0``. Adding ``+0.0`` terms to a partial sum of non-negative values
  is an exact no-op in IEEE arithmetic, so skipping frozen flows (scalar)
  and zero-weighting them (vector) produce the same bits.
* The water-level rise is a ``min`` over per-link quotients and per-flow
  cap headrooms; ``min`` is order-independent for non-NaN floats, and
  both kernels form the identical quotients from identical operands.
* Residual capacities are decremented once per round by the round's
  per-link consumption sum, then clamped at zero -- the scalar kernel is
  structured the same way (one subtraction per link per round), so the
  float association matches by construction.

Everything degrades gracefully without numpy: :data:`HAVE_NUMPY` gates
every dispatch site, and the scalar kernels remain the single source of
semantics.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via HAVE_NUMPY monkeypatching
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None
    HAVE_NUMPY = False

from ..core.units import EPS

#: Active-flow count at which ``allocation="auto"`` engines switch the
#: max-min kernel from scalar to vector. Below it the interning overhead
#: (array builds, dict lookups) outweighs the loop savings; above it the
#: scalar per-flow rounds dominate the run. The two paths are
#: bit-identical, so the crossover only affects speed, never results.
VECTOR_AUTO_THRESHOLD = 2048


class DenseIncidence:
    """Flow/link interning of one demand set into dense index arrays.

    Rows are demands in first-occurrence order (duplicate flow ids keep
    the first row, last demand's content -- mirroring the scalar kernel's
    ``{d.flow_id: d for d in demands}`` dedupe). Columns are links in
    first-touch order. The (flow, link) incidence is two parallel int
    arrays ``rows``/``cols`` whose entry order -- demand order, then path
    position -- is the canonical reduction order both kernels share.

    ``Link`` objects are held by reference and their capacities re-read
    per kernel call, so runtime capacity mutation (fault injection) never
    stales an incidence; only structural changes (inject/retire/reroute)
    require a rebuild, which the network's revision-keyed cache handles.
    """

    __slots__ = (
        "demands",
        "fids",
        "row_of",
        "links",
        "col_of",
        "rows",
        "cols",
        "weights",
        "caps",
        "capped_rows",
        "n_flows",
        "n_links",
    )

    def __init__(self, demands: Sequence) -> None:
        deduped: List = list(demands)
        row_of: Dict[int, int] = {
            demand.flow_id: row for row, demand in enumerate(deduped)
        }
        if len(row_of) != len(deduped):
            # Rare duplicate-fid path (ad-hoc demand lists only; network
            # demand sets are keyed by live flow): first row, last content.
            row_of = {}
            merged: List = []
            for demand in deduped:
                row = row_of.get(demand.flow_id)
                if row is None:
                    row_of[demand.flow_id] = len(merged)
                    merged.append(demand)
                else:
                    merged[row] = demand
            deduped = merged
        self.demands = deduped
        self.row_of = row_of
        self.n_flows = len(deduped)

        links: List = []
        col_of: Dict[Tuple[str, str], int] = {}
        rows: List[int] = []
        cols: List[int] = []
        intern_col = col_of.setdefault
        for row, demand in enumerate(deduped):
            path = demand.path
            rows.extend([row] * len(path))
            for link in path:
                col = intern_col(link.key, len(links))
                if col == len(links):
                    links.append(link)
                cols.append(col)
        self.links = links
        self.col_of = col_of
        self.n_links = len(links)

        self.fids = np.array([d.flow_id for d in deduped], dtype=np.int64)
        self.rows = np.asarray(rows, dtype=np.intp)
        self.cols = np.asarray(cols, dtype=np.intp)
        self.weights = np.array([d.weight for d in deduped], dtype=np.float64)
        self.caps = np.array(
            [float("inf") if d.cap is None else d.cap for d in deduped],
            dtype=np.float64,
        )
        self.capped_rows = np.nonzero(np.isfinite(self.caps))[0]

    def link_capacities_array(
        self, available: Optional[Mapping[Tuple[str, str], float]] = None
    ) -> "np.ndarray":
        """Per-column capacities, re-read live from the Link objects.

        ``available`` overrides individual links (the scalar kernel's
        ``available`` mapping); links absent from it fall back to their
        current capacity, exactly like the scalar setdefault pass.
        """
        caps = np.fromiter(
            (link.capacity for link in self.links),
            dtype=np.float64,
            count=self.n_links,
        )
        if available:
            for key, value in available.items():
                col = self.col_of.get(key)
                if col is not None:
                    caps[col] = value
        return caps


class VectorAllocation(MappingABC):
    """A rate allocation backed by a dense array, aligned to an incidence.

    Quacks like the ``Dict[int, float]`` every scalar consumer expects
    (``get``/``items``/iteration yield python floats), while the network's
    bulk ``set_rates`` path grabs the raw array without any per-flow dict
    traffic when the incidence still matches its live flow set.
    """

    __slots__ = ("incidence", "array", "_floats")

    def __init__(self, incidence: DenseIncidence, array) -> None:
        self.incidence = incidence
        self.array = array
        #: Lazily materialized python-float view (tolist is exact).
        self._floats: Optional[List[float]] = None

    def _values(self) -> List[float]:
        if self._floats is None:
            self._floats = self.array.tolist()
        return self._floats

    def __getitem__(self, flow_id: int) -> float:
        return self._values()[self.incidence.row_of[flow_id]]

    def get(self, flow_id: int, default: float = None) -> float:
        row = self.incidence.row_of.get(flow_id)
        if row is None:
            return default
        return self._values()[row]

    def __iter__(self) -> Iterator[int]:
        return iter(self.incidence.row_of)

    def __len__(self) -> int:
        return self.incidence.n_flows

    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self.incidence.row_of

    def items(self):
        return zip(self.incidence.fids.tolist(), self._values())

    def keys(self):
        return self.incidence.row_of.keys()

    def values(self):
        return self._values()

    def copy(self) -> Dict[int, float]:
        """A plain-dict copy (python floats throughout)."""
        return dict(self.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorAllocation({self.incidence.n_flows} flows)"


def max_min_fair_vector(
    incidence: DenseIncidence,
    available: Optional[Mapping[Tuple[str, str], float]] = None,
) -> VectorAllocation:
    """Weighted max-min fair rates, vectorized; bit-identical to scalar.

    The saturation loop runs over *links*: each round computes the
    water-level rise from per-link residuals and weight sums (one
    ``bincount`` each), applies it to every unfrozen flow at once, and
    freezes the flows that hit a saturated link or their cap. The
    reduction order matches the scalar kernel's exactly (module
    docstring), so the returned rates agree bit for bit.
    """
    n = incidence.n_flows
    rows = incidence.rows
    cols = incidence.cols
    n_links = incidence.n_links

    remaining = incidence.link_capacities_array(available)
    rates = np.zeros(n, dtype=np.float64)
    weights = incidence.weights
    #: Live weights: zeroed as flows freeze. The zero entries keep the
    #: bincount sums bit-identical to the scalar kernel's skip-the-frozen
    #: accumulation (exact +0.0 terms).
    live = weights.copy()
    active = np.ones(n, dtype=bool)
    caps = incidence.caps
    capped_rows = incidence.capped_rows

    while active.any():
        entry_w = live[rows]
        link_weight = np.bincount(cols, weights=entry_w, minlength=n_links)
        constrained = link_weight > 0.0
        rise = float("inf")
        if constrained.any():
            rise = float(
                np.min(remaining[constrained] / link_weight[constrained])
            )
        act_capped = capped_rows[active[capped_rows]]
        if act_capped.size:
            heads = (caps[act_capped] - rates[act_capped]) / weights[act_capped]
            rise = min(rise, float(np.min(heads)))
        if rise == float("inf"):
            raise RuntimeError("unbounded max-min allocation (no constraints)")
        rise = max(0.0, rise)

        rates = rates + rise * live
        consumed = np.bincount(cols, weights=rise * entry_w, minlength=n_links)
        residual = remaining - consumed
        remaining = np.where(residual > 0.0, residual, 0.0)

        link_full = remaining <= EPS
        full_entries = link_full[cols]
        on_full = np.zeros(n, dtype=bool)
        if full_entries.any():
            on_full = np.bincount(rows[full_entries], minlength=n) > 0
        at_cap = np.zeros(n, dtype=bool)
        if act_capped.size:
            at_cap[act_capped] = rates[act_capped] >= caps[act_capped] - EPS
        newly = active & (on_full | at_cap)
        if not newly.any():
            # Numerical corner: force-freeze the lowest active flow id,
            # matching the scalar kernel's ``min(active)``.
            act_idx = np.nonzero(active)[0]
            newly = np.zeros(n, dtype=bool)
            newly[act_idx[np.argmin(incidence.fids[act_idx])]] = True
        active &= ~newly
        live[newly] = 0.0

    return VectorAllocation(incidence, rates)


def feasible_vector(
    incidence: DenseIncidence,
    rates: Mapping[int, float],
    tolerance: float = 1e-6,
) -> bool:
    """Array form of :func:`repro.simulator.allocation.feasible`.

    Feasibility is a tolerance-gated boolean, so summation association is
    immaterial here (unlike the max-min kernel); the semantics -- missing
    flows idle at 0, per-flow caps, per-link capacity with relative plus
    absolute slack -- match the scalar check exactly.
    """
    if isinstance(rates, VectorAllocation) and rates.incidence is incidence:
        arr = rates.array
    else:
        arr = np.fromiter(
            (rates.get(d.flow_id, 0.0) for d in incidence.demands),
            dtype=np.float64,
            count=incidence.n_flows,
        )
    if (arr < -tolerance).any():
        return False
    capped = incidence.capped_rows
    if capped.size and (arr[capped] > incidence.caps[capped] + tolerance).any():
        return False
    usage = np.bincount(
        incidence.cols, weights=arr[incidence.rows], minlength=incidence.n_links
    )
    caps = incidence.link_capacities_array()
    return not (usage > caps * (1.0 + tolerance) + tolerance).any()
