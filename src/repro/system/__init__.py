"""The Fig. 7 system sketch: agents, coordinator, and queue enforcement."""

from .agent import EchelonFlowAgent
from .backend import QueueEnforcedScheduler, allocation_error, quantize_to_queue
from .coordinator import CoordinatedScheduler, Coordinator
from .framework import ClusterRun, FrameworkInstance, run_cluster
from .messages import (
    ArrangementDescriptor,
    ArrangementKind,
    BandwidthAllocation,
    EchelonFlowRequest,
    FlowInfo,
    QueueAssignment,
)
from .runtime import (
    ControlPlaneRuntime,
    ControlPlaneScheduler,
    RpcChannel,
    RpcSpec,
    RuntimeAgent,
    run_chaos_suite,
    run_control_cluster,
)

__all__ = [
    "EchelonFlowAgent",
    "Coordinator",
    "CoordinatedScheduler",
    "QueueEnforcedScheduler",
    "quantize_to_queue",
    "allocation_error",
    "FrameworkInstance",
    "ClusterRun",
    "run_cluster",
    "ArrangementDescriptor",
    "ArrangementKind",
    "EchelonFlowRequest",
    "FlowInfo",
    "BandwidthAllocation",
    "QueueAssignment",
    "ControlPlaneRuntime",
    "ControlPlaneScheduler",
    "RuntimeAgent",
    "RpcChannel",
    "RpcSpec",
    "run_control_cluster",
    "run_chaos_suite",
]
