"""The EchelonFlow Agent: a shim between frameworks and backends (Fig. 7).

Inspired by ByteScheduler, the agent sits under the DDLT framework: it
receives EchelonFlow registrations through the EchelonFlow API, forwards
them to the coordinator, and enforces the returned allocations by placing
flow data into weighted priority queues of the message-passing backend.

One agent serves one framework instance (one job); a cluster run has many
agents sharing one coordinator, which is how EchelonFlow coordinates
*across* jobs where prior DDLT schedulers optimized each job alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.echelonflow import EchelonFlow
from ..core.flow import Flow
from .backend import quantize_to_queue, queue_weight
from .coordinator import Coordinator
from .messages import (
    ArrangementDescriptor,
    EchelonFlowRequest,
    FlowInfo,
    QueueAssignment,
)


class EchelonFlowAgent:
    """Per-framework shim exposing the EchelonFlow API."""

    def __init__(
        self,
        framework: str,
        coordinator: Coordinator,
        num_queues: int = 8,
    ) -> None:
        self.framework = framework
        self.coordinator = coordinator
        self.num_queues = num_queues
        self.registered: Dict[str, EchelonFlow] = {}
        self.enqueue_log: List[QueueAssignment] = []

    # -- EchelonFlow API (called by the framework adapter) --------------

    def report_echelonflow(self, echelonflow: EchelonFlow) -> EchelonFlow:
        """Report one EchelonFlow: arrangement + per-flow size/src/dst.

        Returns the coordinator-side EchelonFlow object that scheduling
        will consult. The framework keeps emitting flows tagged with the
        group id; no further coordination calls are needed per flow.
        """
        if echelonflow.ef_id in self.registered:
            raise ValueError(
                f"agent {self.framework!r} already reported {echelonflow.ef_id!r}"
            )
        flows = tuple(
            FlowInfo(
                flow_id=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                size=flow.size,
                index_in_group=flow.index_in_group,
            )
            for flow in echelonflow.flows
        )
        request = EchelonFlowRequest(
            ef_id=echelonflow.ef_id,
            job_id=echelonflow.job_id or self.framework,
            framework=self.framework,
            arrangement=ArrangementDescriptor.from_arrangement(
                echelonflow.arrangement, echelonflow.index_count
            ),
            flows=flows,
        )
        registered = self.coordinator.register(request)
        # The coordinator's object must see the same member flows the
        # framework will emit.
        for flow in echelonflow.flows:
            registered.add_flow(flow)
        self.registered[echelonflow.ef_id] = registered
        return registered

    # -- enforcement (called when allocations arrive) --------------------

    def enqueue(self, flow: Flow, rate: float, egress_capacity: float) -> QueueAssignment:
        """Place a flow's data into the priority queue matching its rate."""
        share = rate / egress_capacity if egress_capacity > 0 else 0.0
        queue = quantize_to_queue(share, self.num_queues)
        assignment = QueueAssignment(
            flow_id=flow.flow_id,
            host=flow.src,
            queue=queue,
            weight=queue_weight(queue),
        )
        self.enqueue_log.append(assignment)
        return assignment
