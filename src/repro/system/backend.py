"""Schedule enforcement through weighted priority queues (Section 5).

"The agent stores flow data into priority queues based on their allocated
bandwidth, and calls message-passing backends through weighted sharing of
network bandwidth among the queues." Real switches expose a handful of
queues (typically 8), so the coordinator's continuous rates must be
quantized -- this module measures exactly that quantization.

:class:`QueueEnforcedScheduler` wraps any coordinator algorithm: it takes
the ideal allocation, buckets each flow into one of ``num_queues`` per-host
queues by its share of the host's egress capacity, and re-derives achieved
rates by weighted max-min sharing with the queue weights. With
``num_queues`` large the enforcement converges to the ideal allocation;
bench E11 quantifies the gap at realistic queue counts.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..core.units import EPS
from ..simulator.allocation import FlowDemand, max_min_fair
from ..scheduling.base import Scheduler, SchedulerView
from .messages import QueueAssignment


def quantize_to_queue(share: float, num_queues: int) -> int:
    """Map a rate share in [0, 1] to a queue index (0 = lowest priority).

    Queues are geometrically spaced: queue ``q`` covers shares around
    ``2^(q - num_queues)``, matching the exponential weight ladders used by
    practical WFQ configurations.
    """
    if num_queues < 1:
        raise ValueError(f"need at least one queue, got {num_queues}")
    if share <= 0:
        return 0
    level = num_queues - 1 + math.floor(math.log2(min(1.0, share)) + 0.5)
    return max(0, min(num_queues - 1, level))


def queue_weight(queue: int) -> float:
    """Exponential weight ladder: queue q gets weight 2^q."""
    return float(2 ** queue)


class QueueEnforcedScheduler(Scheduler):
    """Enforce an inner scheduler's allocation via per-host WFQ queues."""

    name = "queue-enforced"
    #: Enforcement re-derives rates by weighted max-min over the full
    #: link capacities, so the result is work-conserving even when the
    #: inner ideal allocation is not (queues cannot hold capacity idle).
    work_conserving = True

    def __init__(self, inner: Scheduler, num_queues: int = 8) -> None:
        if num_queues < 1:
            raise ValueError(f"need at least one queue, got {num_queues}")
        self.inner = inner
        self.num_queues = num_queues
        #: Assignment log for inspection (bench E11).
        self.assignments: List[QueueAssignment] = []

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        ideal = self.inner.allocate(view)
        states = view.active_states()
        if not states:
            return {}
        demands: List[FlowDemand] = []
        round_assignments: List[QueueAssignment] = []
        for state in states:
            flow_id = state.flow.flow_id
            host = state.flow.src
            egress = view.network.topology.host_egress_capacity(host)
            share = ideal.get(flow_id, 0.0) / egress if egress > 0 else 0.0
            queue = quantize_to_queue(share, self.num_queues)
            weight = queue_weight(queue)
            round_assignments.append(
                QueueAssignment(flow_id=flow_id, host=host, queue=queue, weight=weight)
            )
            demands.append(view.demand_of(state, weight=weight))
        self.assignments = round_assignments
        # Weighted sharing among the queues: flows granted (near-)zero by
        # the ideal schedule sit in queue 0 with minimal weight rather than
        # being dropped -- queues cannot express an exact zero.
        return max_min_fair(demands)


def allocation_error(
    ideal: Dict[int, float], enforced: Dict[int, float]
) -> Tuple[float, float]:
    """(mean, max) relative rate error of enforcement vs the ideal.

    Flows with (near-)zero ideal rate are excluded: WFQ queues cannot
    starve a flow entirely, so those flows' error is unbounded by design.
    """
    errors: List[float] = []
    for flow_id, target in ideal.items():
        if target <= EPS:
            continue
        achieved = enforced.get(flow_id, 0.0)
        errors.append(abs(achieved - target) / target)
    if not errors:
        return 0.0, 0.0
    return sum(errors) / len(errors), max(errors)
