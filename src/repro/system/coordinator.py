"""The cluster-wide Coordinator of Fig. 7.

Receives EchelonFlow requests from agents, maintains the registry of live
EchelonFlows, and computes bandwidth allocations with a pluggable heuristic
(the adapted MADD by default). "Such algorithms would rerun per
EchelonFlow arrival/departure or per scheduling interval" -- in simulation
the engine triggers exactly those reruns; the coordinator additionally
counts them so scalability benches can report scheduling-invocation costs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.echelonflow import EchelonFlow
from ..scheduling.base import Scheduler, SchedulerView
from ..scheduling.echelon_madd import EchelonMaddScheduler
from .messages import BandwidthAllocation, EchelonFlowRequest


class Coordinator:
    """Registers EchelonFlows and computes cluster-wide allocations."""

    def __init__(
        self, algorithm: Optional[Scheduler] = None, registry=None
    ) -> None:
        """``registry`` is an optional
        :class:`repro.obs.registry.MetricsRegistry`; when provided the
        coordinator publishes its invocation counts there as
        ``coordinator_invocations_total{cause=...}``."""
        self.algorithm = algorithm or EchelonMaddScheduler()
        self.echelonflows: Dict[str, EchelonFlow] = {}
        self.request_log: List[EchelonFlowRequest] = []
        self.allocation_log: List[BandwidthAllocation] = []
        self.invocations = 0
        #: Reruns per trigger cause, the Section 5 cost accounting.
        self.invocations_by_cause: Dict[str, int] = {}
        self.registry = registry

    # -- the agent-facing RPC surface ----------------------------------

    def register(self, request: EchelonFlowRequest) -> EchelonFlow:
        """Handle an EchelonFlow request: build and register the group."""
        if request.ef_id in self.echelonflows:
            raise ValueError(f"EchelonFlow {request.ef_id!r} already registered")
        echelonflow = EchelonFlow(
            request.ef_id, request.arrangement.build(), job_id=request.job_id
        )
        self.request_log.append(request)
        self.echelonflows[request.ef_id] = echelonflow
        return echelonflow

    def deregister(self, ef_id: str) -> None:
        self.echelonflows.pop(ef_id, None)

    # -- the engine-facing scheduling surface ---------------------------

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        self.invocations += 1
        cause = getattr(view, "trigger_cause", None) or "unknown"
        self.invocations_by_cause[cause] = (
            self.invocations_by_cause.get(cause, 0) + 1
        )
        if self.registry is not None:
            self.registry.counter(
                "coordinator_invocations_total", cause=cause
            ).inc()
        rates = self.algorithm.allocate(view)
        self.allocation_log.append(
            BandwidthAllocation(issued_at=view.now, rates=dict(rates))
        )
        return rates


class CoordinatedScheduler(Scheduler):
    """Adapter presenting a :class:`Coordinator` as an engine scheduler.

    The coordinator's own EchelonFlow registry (populated by agent
    requests) overrides the engine-side registry, demonstrating that the
    control plane of Fig. 7 carries all information scheduling needs.
    """

    name = "coordinated"

    def __init__(self, coordinator: Coordinator) -> None:
        self.coordinator = coordinator

    @property
    def work_conserving(self) -> bool:
        """Inherited from the coordinator's scheduling heuristic."""
        return getattr(self.coordinator.algorithm, "work_conserving", False)

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        merged = dict(view.echelonflows)
        merged.update(self.coordinator.echelonflows)
        coordinator_view = SchedulerView(
            now=view.now,
            network=view.network,
            echelonflows=merged,
            trigger_cause=view.trigger_cause,
            injected_flows=view.injected_flows,
            departed_flows=view.departed_flows,
        )
        return self.coordinator.allocate(coordinator_view)
