"""Framework adapters: wiring training jobs through the agent stack.

In the sketch, "for each training instance, the framework breaks down the
workflow into EchelonFlows ... based on the training paradigm used". Our
paradigm builders already produce that breakdown; the adapter here plays
the framework role: it reports every EchelonFlow through its agent (rather
than registering directly with the engine) and then launches the job.

:func:`run_cluster` is the whole Fig. 7 loop in one call: N frameworks,
N agents, one coordinator, one shared network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..simulator.engine import Engine
from ..simulator.trace import SimulationTrace
from ..topology.graph import Topology
from ..workloads.job import BuiltJob
from .agent import EchelonFlowAgent
from .backend import QueueEnforcedScheduler
from .coordinator import CoordinatedScheduler, Coordinator


@dataclass
class FrameworkInstance:
    """One training framework (job) attached to an agent."""

    job: BuiltJob
    agent: EchelonFlowAgent
    arrival_time: float = 0.0

    def launch(self, engine: Engine) -> None:
        """Report EchelonFlows via the agent, then submit the DAG.

        The coordinator-side EchelonFlow objects (returned by the agent)
        are also registered with the engine: the engine plays the role of
        the framework runtime that observes head-flow starts and pins
        reference times, which is what makes the coordinator's arrangement
        deadlines live. Without this the coordinator would schedule
        against unpinned references -- i.e. no deadlines at all.
        """
        registered = [
            self.agent.report_echelonflow(echelonflow)
            for echelonflow in self.job.echelonflows
        ]
        engine.submit(
            self.job.dag, at_time=self.arrival_time, echelonflows=tuple(registered)
        )


@dataclass
class ClusterRun:
    """Results of a full system run."""

    trace: SimulationTrace
    coordinator: Coordinator
    engine: Engine
    frameworks: List[FrameworkInstance]

    def job_completion_times(self) -> Dict[str, float]:
        return {
            fw.job.job_id: self.engine.job_completion_time(fw.job.job_id)
            - fw.arrival_time
            for fw in self.frameworks
        }


def run_cluster(
    topology: Topology,
    jobs: Sequence[Tuple[BuiltJob, float]],
    coordinator: Optional[Coordinator] = None,
    enforce_with_queues: bool = False,
    num_queues: int = 8,
) -> ClusterRun:
    """Run jobs through the full agent/coordinator/backend stack.

    ``jobs`` is a list of (built job, arrival time). With
    ``enforce_with_queues`` the coordinator's allocation passes through the
    WFQ quantization of Section 5 before reaching the network.
    """
    coordinator = coordinator or Coordinator()
    scheduler = CoordinatedScheduler(coordinator)
    if enforce_with_queues:
        scheduler = QueueEnforcedScheduler(scheduler, num_queues=num_queues)
    engine = Engine(topology, scheduler)
    frameworks: List[FrameworkInstance] = []
    for job, arrival in jobs:
        agent = EchelonFlowAgent(framework=job.job_id, coordinator=coordinator)
        instance = FrameworkInstance(job=job, agent=agent, arrival_time=arrival)
        instance.launch(engine)
        frameworks.append(instance)
    trace = engine.run()
    return ClusterRun(
        trace=trace, coordinator=coordinator, engine=engine, frameworks=frameworks
    )
