"""Wire records exchanged between frameworks, agents, and the coordinator.

Fig. 7: for each EchelonFlow, the framework reports "the arrangement
function and per-flow information (the size, source, and destination) to
the agent via a library of EchelonFlow APIs"; the agent forwards
EchelonFlow requests to the coordinator, which answers with bandwidth
allocations. These dataclasses are those messages, kept serializable
(plain data, no object references) as a real RPC layer would require.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class ArrangementKind(enum.Enum):
    """Wire encoding of the arrangement function families of Section 4."""

    COFLOW = "coflow"  # Eq. 5
    STAGGERED = "staggered"  # Eq. 6
    PHASED = "phased"  # Eq. 7
    TABLED = "tabled"  # profiled general shape


@dataclass(frozen=True)
class ArrangementDescriptor:
    """A serializable arrangement function."""

    kind: ArrangementKind
    #: STAGGERED: [T]; PHASED: [layers, T_fwd, T_bwd]; TABLED: offsets.
    parameters: Tuple[float, ...] = ()

    def build(self):
        """Materialize the core arrangement object."""
        from ..core.arrangement import (
            CoflowArrangement,
            PhasedArrangement,
            StaggeredArrangement,
            TabledArrangement,
        )

        if self.kind is ArrangementKind.COFLOW:
            return CoflowArrangement()
        if self.kind is ArrangementKind.STAGGERED:
            (distance,) = self.parameters
            return StaggeredArrangement(distance=distance)
        if self.kind is ArrangementKind.PHASED:
            layers, t_fwd, t_bwd = self.parameters
            return PhasedArrangement(
                layers=int(layers), forward_distance=t_fwd, backward_distance=t_bwd
            )
        return TabledArrangement(self.parameters)

    @classmethod
    def from_arrangement(cls, arrangement, count: int) -> "ArrangementDescriptor":
        """Encode a core arrangement object for the wire."""
        from ..core.arrangement import (
            CoflowArrangement,
            PhasedArrangement,
            StaggeredArrangement,
        )

        if isinstance(arrangement, CoflowArrangement):
            return cls(ArrangementKind.COFLOW)
        if isinstance(arrangement, StaggeredArrangement):
            return cls(ArrangementKind.STAGGERED, (arrangement.distance,))
        if isinstance(arrangement, PhasedArrangement):
            return cls(
                ArrangementKind.PHASED,
                (
                    float(arrangement.layers),
                    arrangement.forward_distance,
                    arrangement.backward_distance,
                ),
            )
        offsets = tuple(arrangement.offset(j) for j in range(count))
        return cls(ArrangementKind.TABLED, offsets)


@dataclass(frozen=True)
class FlowInfo:
    """Per-flow information the framework reports: size, src, dst."""

    flow_id: int
    src: str
    dst: str
    size: float
    index_in_group: int


@dataclass(frozen=True)
class EchelonFlowRequest:
    """Agent -> Coordinator: please schedule this EchelonFlow."""

    ef_id: str
    job_id: str
    framework: str
    arrangement: ArrangementDescriptor
    flows: Tuple[FlowInfo, ...]


@dataclass(frozen=True)
class BandwidthAllocation:
    """Coordinator -> Agent: rates to enforce, by flow id."""

    issued_at: float
    rates: Dict[int, float] = field(default_factory=dict)


@dataclass(frozen=True)
class QueueAssignment:
    """Agent -> backend: which priority queue each flow's data enters."""

    flow_id: int
    host: str
    queue: int
    weight: float
