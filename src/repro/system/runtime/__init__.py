"""Fault-tolerant control-plane runtime (lossy RPC, failover, degradation).

See :mod:`repro.system.runtime.runtime` for the service model and
:mod:`repro.system.runtime.chaos` for the scored chaos suite.
"""

from .chaos import (
    ChaosScenario,
    ControlClusterRun,
    SCENARIO_NAMES,
    SMOKE_SCENARIOS,
    build_chaos_scenarios,
    format_chaos_table,
    run_chaos_suite,
    run_control_cluster,
)
from .rpc import RpcChannel, RpcSpec, RpcSpecError, Verdict, parse_rpc_spec
from .runtime import ControlPlaneRuntime, ControlPlaneScheduler, RuntimeAgent

__all__ = [
    "RpcChannel",
    "RpcSpec",
    "RpcSpecError",
    "Verdict",
    "parse_rpc_spec",
    "ControlPlaneRuntime",
    "ControlPlaneScheduler",
    "RuntimeAgent",
    "ControlClusterRun",
    "ChaosScenario",
    "SCENARIO_NAMES",
    "SMOKE_SCENARIOS",
    "build_chaos_scenarios",
    "run_control_cluster",
    "run_chaos_suite",
    "format_chaos_table",
]
