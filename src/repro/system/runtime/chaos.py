"""The control-plane chaos suite: scored crash/partition/noise scenarios.

Runs a fixed three-job cluster workload through the fault-tolerant
runtime under every control-plane failure mode and grades the outcome:

* **completion** -- every job finishes in every scenario (quarantine and
  degraded-mode scheduling keep serving flows; nothing stalls);
* **bounded inflation** -- each job's JCT inflates at most
  ``inflation_bound``x over the fault-free baseline;
* **bit-identity** -- the identity-channel baseline produces a SHA-256
  trace digest equal to the direct in-process path
  (:func:`repro.system.run_cluster`): the runtime adds *zero* behaviour
  when nothing can fail;
* **determinism** -- every scenario run twice per ``(spec, seed)``
  digests identically (live == replay).

``repro system chaos`` drives this from the CLI; the ``control-plane``
CI job runs it under ``REPRO_CHECK=strict`` and uploads the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...core import FlowIdAllocator, use_flow_id_allocator
from ...core.units import gbps, megabytes
from ...simulator.engine import Engine
from ...simulator.trace import SimulationTrace, trace_digest
from ...topology import big_switch
from ...topology.graph import Topology
from ...workloads import build_dp_allreduce, build_fsdp, build_tp_megatron
from ...workloads.job import BuiltJob
from ...workloads.model import uniform_model
from ..coordinator import Coordinator
from ..framework import FrameworkInstance, run_cluster
from .runtime import ControlPlaneRuntime, ControlPlaneScheduler


@dataclass
class ControlClusterRun:
    """Results of one run through the control-plane runtime."""

    trace: SimulationTrace
    runtime: ControlPlaneRuntime
    engine: Engine
    frameworks: List[FrameworkInstance]

    @property
    def coordinator(self) -> Coordinator:
        return self.runtime.coordinator

    def job_completion_times(self) -> Dict[str, float]:
        return {
            fw.job.job_id: self.engine.job_completion_time(fw.job.job_id)
            - fw.arrival_time
            for fw in self.frameworks
        }


def run_control_cluster(
    topology: Topology,
    jobs: Sequence[Tuple[BuiltJob, float]],
    runtime: Optional[ControlPlaneRuntime] = None,
    rpc: Optional[object] = None,
    seed: Optional[int] = None,
    faults=None,
    sanitizer=None,
    instrumentation=None,
) -> ControlClusterRun:
    """Run jobs through the fault-tolerant Fig. 7 stack.

    The control-plane analogue of :func:`repro.system.run_cluster`:
    one :class:`RuntimeAgent` per job, one shared coordinator, all
    traffic over the runtime's RPC channel. ``rpc``/``seed`` build a
    default runtime when none is given.
    """
    runtime = runtime or ControlPlaneRuntime(rpc=rpc, seed=seed)
    scheduler = ControlPlaneScheduler(runtime)
    engine = Engine(
        topology,
        scheduler,
        faults=faults,
        sanitizer=sanitizer,
        instrumentation=instrumentation,
    )
    frameworks: List[FrameworkInstance] = []
    for job, arrival in jobs:
        agent = runtime.spawn_agent(job.job_id)
        instance = FrameworkInstance(job=job, agent=agent, arrival_time=arrival)
        instance.launch(engine)
        frameworks.append(instance)
    trace = engine.run()
    return ControlClusterRun(
        trace=trace, runtime=runtime, engine=engine, frameworks=frameworks
    )


# ----------------------------------------------------------------------
# the scored scenario suite
# ----------------------------------------------------------------------

#: Scenario names in suite order; ``--smoke`` keeps the starred core.
SCENARIO_NAMES = (
    "baseline",
    "crash_agent",
    "crash_coordinator",
    "partition_control",
    "rpc_noise",
    "lossy_channel",
)
SMOKE_SCENARIOS = ("baseline", "crash_coordinator", "rpc_noise")

#: The crash/partition scenarios hit the agent that owns the first job.
_TARGET_JOB = "job-dp"


@dataclass(frozen=True)
class ChaosScenario:
    """One control-plane chaos experiment."""

    name: str
    #: Fault spec string (control-plane grammar), None for fault-free.
    faults: Optional[str]
    #: Base RPC channel spec ("off" = identity until a fault degrades it).
    rpc: str = "off"


def _model():
    return uniform_model(
        "chaos",
        4,
        param_bytes_per_layer=megabytes(16),
        activation_bytes=megabytes(8),
        forward_time=0.004,
    )


def _jobs() -> List[Tuple[BuiltJob, float]]:
    """Three staggered jobs, disjoint + overlapping host sets."""
    model = _model()
    return [
        (
            build_dp_allreduce(
                _TARGET_JOB,
                model,
                [f"h{i}" for i in range(4)],
                bucket_bytes=megabytes(8),
            ),
            0.0,
        ),
        (build_fsdp("job-fsdp", model, [f"h{i}" for i in range(4, 8)]), 0.02),
        (build_tp_megatron("job-tp", model, ["h0", "h2", "h4", "h6"]), 0.04),
    ]


def _topology() -> Topology:
    return big_switch(8, gbps(10))


def build_chaos_scenarios(
    makespan: float, names: Optional[Sequence[str]] = None
) -> List[ChaosScenario]:
    """The scenario list, timed as fractions of the baseline makespan."""
    t = makespan
    catalogue = {
        "baseline": ChaosScenario("baseline", None),
        "crash_agent": ChaosScenario(
            "crash_agent",
            f"crash_agent@{0.2 * t:.6g}+{0.3 * t:.6g},agent={_TARGET_JOB}",
        ),
        "crash_coordinator": ChaosScenario(
            "crash_coordinator",
            f"crash_coordinator@{0.25 * t:.6g}+{0.1 * t:.6g}",
        ),
        "partition_control": ChaosScenario(
            "partition_control",
            f"partition_control@{0.2 * t:.6g}+{0.15 * t:.6g}",
        ),
        "rpc_noise": ChaosScenario(
            "rpc_noise",
            f"rpc_noise@{0.1 * t:.6g},drop=0.1,delay={0.003 * t:.6g},"
            f"timeout={0.003 * t:.6g},backoff={0.001 * t:.6g}",
        ),
        "lossy_channel": ChaosScenario(
            "lossy_channel",
            None,
            rpc=f"drop=0.1,delay={0.003 * t:.6g},timeout={0.003 * t:.6g},"
            f"backoff={0.001 * t:.6g}",
        ),
    }
    names = tuple(names) if names is not None else SCENARIO_NAMES
    return [catalogue[name] for name in names]


def _run_scenario(
    scenario: ChaosScenario, seed: int, makespan: float, sanitizer=None
) -> ControlClusterRun:
    """One fresh, reproducible run: private flow ids, fresh jobs.

    Runtime liveness knobs scale with the workload clock (leases in
    absolute seconds would outlive this sub-second workload entirely).
    """
    runtime = ControlPlaneRuntime(
        rpc=scenario.rpc,
        seed=seed,
        lease=0.05 * makespan,
        heartbeat=0.01 * makespan,
    )
    with use_flow_id_allocator(FlowIdAllocator()):
        return run_control_cluster(
            _topology(),
            _jobs(),
            runtime=runtime,
            faults=scenario.faults,
            sanitizer=sanitizer,
        )


def _direct_baseline() -> Tuple[Dict[str, float], str]:
    """The in-process reference path (run_cluster), for bit-identity."""
    with use_flow_id_allocator(FlowIdAllocator()):
        run = run_cluster(_topology(), _jobs())
    return run.job_completion_times(), trace_digest(run.trace)


def run_chaos_suite(
    smoke: bool = False,
    seed: int = 0,
    inflation_bound: float = 1.5,
    sanitizer=None,
    names: Optional[Sequence[str]] = None,
) -> Dict:
    """Run and score the suite; returns a JSON-able report.

    ``report["ok"]`` aggregates every check: per-scenario completion,
    JCT inflation <= ``inflation_bound``, two-run determinism, and the
    identity-channel bit-identity against the direct in-process path.
    """
    direct_jcts, direct_digest = _direct_baseline()
    makespan = max(direct_jcts.values())
    if names is None:
        names = SMOKE_SCENARIOS if smoke else SCENARIO_NAMES
    scenarios = build_chaos_scenarios(makespan, names)
    rows: List[Dict] = []
    ok = True
    for scenario in scenarios:
        run = _run_scenario(scenario, seed, makespan, sanitizer=sanitizer)
        digest = trace_digest(run.trace)
        rerun_digest = trace_digest(_run_scenario(scenario, seed, makespan).trace)
        jcts = run.job_completion_times()
        completed = sorted(run.engine.completed_jobs)
        all_done = set(completed) == set(direct_jcts)
        inflation = max(
            (jcts[job] / direct_jcts[job] for job in jcts if direct_jcts[job] > 0),
            default=1.0,
        )
        deterministic = digest == rerun_digest
        row = {
            "scenario": scenario.name,
            "faults": scenario.faults,
            "rpc": scenario.rpc,
            "mode": run.runtime.report()["mode"],
            "completed": len(completed),
            "all_jobs_completed": all_done,
            "jct": {job: round(value, 6) for job, value in sorted(jcts.items())},
            "max_inflation": round(inflation, 4),
            "inflation_ok": inflation <= inflation_bound,
            "deterministic": deterministic,
            "digest": digest,
            "runtime": run.runtime.report(),
        }
        if scenario.name == "baseline":
            row["bit_identical"] = digest == direct_digest
            ok = ok and row["bit_identical"]
        ok = ok and all_done and row["inflation_ok"] and deterministic
        rows.append(row)
    return {
        "suite": "control-plane-chaos",
        "seed": seed,
        "inflation_bound": inflation_bound,
        "direct_digest": direct_digest,
        "baseline_jct": {j: round(v, 6) for j, v in sorted(direct_jcts.items())},
        "scenarios": rows,
        "ok": ok,
    }


def format_chaos_table(report: Dict) -> str:
    """Human-readable scenario table for the CLI and CI artifact."""
    lines = [
        f"control-plane chaos suite (seed={report['seed']}, "
        f"inflation bound {report['inflation_bound']:g}x)",
        f"{'scenario':<20} {'mode':<8} {'jobs':<6} {'max JCT x':<10} "
        f"{'determ.':<8} {'verdict':<8}",
    ]
    for row in report["scenarios"]:
        verdict = (
            row["all_jobs_completed"]
            and row["inflation_ok"]
            and row["deterministic"]
            and row.get("bit_identical", True)
        )
        extra = ""
        if "bit_identical" in row:
            extra = (
                " (bit-identical)" if row["bit_identical"]
                else " (DIGEST MISMATCH)"
            )
        lines.append(
            f"{row['scenario']:<20} {row['mode']:<8} "
            f"{row['completed']:<6} {row['max_inflation']:<10.3f} "
            f"{'yes' if row['deterministic'] else 'NO':<8} "
            f"{'pass' if verdict else 'FAIL':<8}{extra}"
        )
    lines.append(f"overall: {'ok' if report['ok'] else 'FAILED'}")
    return "\n".join(lines)
